//! The hybrid initial-view approach (basic property 3 of the
//! introduction): processors in *P₀* start in the default initial view;
//! everyone else starts with an *undefined* view (⊥) and must be
//! discovered and brought in by the membership protocol. This exercises
//! the ⊥ paths of both layers: `VS-machine` ignores sends at ⊥, and a
//! `VStoTO` processor starting at ⊥ has no `highprimary` until its first
//! establishment.

use pgcs::ioa::Runner;
use pgcs::model::{Majority, ProcId};
use pgcs::spec::adversary::SystemAdversary;
use pgcs::spec::cause::check_trace;
use pgcs::spec::completion::complete_and_replay;
use pgcs::spec::invariants::install_invariants;
use pgcs::spec::simulation::install_simulation_check;
use pgcs::spec::system::VsToToSystem;
use pgcs::spec::to_trace::check_to_trace;
use pgcs::vsimpl::{Stack, StackConfig};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Implementation stack: p3 starts outside P₀ = {p0,p1,p2}, gets
/// discovered by probing, joins the group, and receives the full history
/// (including values confirmed before it joined) through the state
/// exchange.
#[test]
fn outsider_joins_and_catches_up() {
    let n = 4u32;
    let p0: BTreeSet<ProcId> = ProcId::range(3);
    let mut cfg = StackConfig::standard(n, 5, 71);
    cfg.p0 = p0.clone();
    cfg.quorums = Arc::new(Majority::new(3)); // quorums over the founders
    let pi = cfg.pi;
    let mut stack = Stack::new(cfg);
    // Traffic among the founders before p3 is discovered.
    for i in 0..5u64 {
        stack.schedule_bcast(10 + i * 10, ProcId((i % 3) as u32));
    }
    stack.run_until(400 * pi);
    // p3 must have been pulled in by the probe/merge machinery…
    let v3 = stack.view_of(ProcId(3)).expect("p3 must install a view");
    assert_eq!(v3.set, ProcId::range(4), "p3 must end in the full group: {v3}");
    // …and received the entire pre-join history.
    assert_eq!(stack.delivered(ProcId(3)).len(), 5, "late joiner must catch up on all history");
    let d0 = stack.delivered(ProcId(0)).to_vec();
    assert_eq!(stack.delivered(ProcId(3)), &d0[..]);
    // Full safety checks with the reduced P₀.
    let to = check_to_trace(&stack.to_obs().untimed());
    assert!(to.ok(), "{:?}", to.violations.first());
    let actions = stack.vs_actions();
    let cause = check_trace(&actions, &p0);
    assert!(cause.ok(), "{:?}", cause.violations.first());
    complete_and_replay(&actions, ProcId::range(4), p0)
        .unwrap_or_else(|(i, e)| panic!("VS inclusion at event {i}: {e}"));
}

/// A submission at a ⊥-view processor stays in `delay` until the first
/// view arrives, then flows normally — nothing is lost.
#[test]
fn value_submitted_at_bottom_waits_for_first_view() {
    let n = 3u32;
    let p0: BTreeSet<ProcId> = ProcId::range(2);
    let mut cfg = StackConfig::standard(n, 5, 73);
    cfg.p0 = p0;
    cfg.quorums = Arc::new(Majority::new(2));
    let pi = cfg.pi;
    let mut stack = Stack::new(cfg);
    // p2 submits before it has any view.
    stack.schedule_bcast(1, ProcId(2));
    stack.run_until(400 * pi);
    for i in 0..n {
        assert_eq!(
            stack.delivered(ProcId(i)).len(),
            1,
            "p{i} must eventually deliver the ⊥-submitted value"
        );
    }
}

/// Abstract composed system with P₀ ⊂ P: the full invariant suite and the
/// simulation relation hold when some processors start at ⊥ (the
/// adversary's random views pull them in).
#[test]
fn spec_system_with_partial_p0_refines() {
    let procs = ProcId::range(4);
    let p0: BTreeSet<ProcId> = ProcId::range(2);
    for seed in 0..4 {
        let sys = VsToToSystem::new(procs.clone(), p0.clone(), Arc::new(Majority::new(4)));
        let mut runner = Runner::new(sys, SystemAdversary::default().with_view_prob(0.1), seed);
        install_invariants(&mut runner);
        let violations = install_simulation_check(&mut runner);
        runner.run(900).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(violations.borrow().is_empty(), "seed {seed}: {:?}", violations.borrow().first());
    }
}
