//! End-to-end integration: the full implementation stack against every
//! specification-level checker the repository has, on a battery of
//! failure scenarios.

use pgcs::harness::scenarios;
use pgcs::model::ProcId;
use pgcs::spec::cause::check_trace;
use pgcs::spec::completion::complete_and_replay;
use pgcs::spec::to_trace::check_to_trace;

/// Every scenario's client trace is a `TO-machine` trace, and its VS
/// interface trace satisfies Lemma 4.2 *and* is literally a trace of
/// `WeakVS-machine` (full trace inclusion via internal-action
/// reconstruction).
#[test]
fn battery_passes_all_specification_checkers() {
    for sc in scenarios::battery(1234) {
        let stack = sc.run();
        let name = sc.name;

        let to = check_to_trace(&stack.to_obs().untimed());
        assert!(to.ok(), "{name}: TO conformance: {:?}", to.violations.first());
        assert!(to.brcvs > 0, "{name}: nothing was delivered");

        let procs = ProcId::range(sc.config.n);
        let vs_actions = stack.vs_actions();
        let cause = check_trace(&vs_actions, &sc.config.p0);
        assert!(cause.ok(), "{name}: Lemma 4.2: {:?}", cause.violations.first());

        complete_and_replay(&vs_actions, procs, sc.config.p0.clone())
            .unwrap_or_else(|(i, e)| panic!("{name}: VS trace inclusion at event {i}: {e}"));
    }
}

/// The same battery across several seeds: determinism means identical
/// traces per seed, and distinct seeds explore different behaviours.
#[test]
fn battery_is_deterministic_per_seed() {
    let run_digest = |seed: u64| -> Vec<usize> {
        scenarios::battery(seed).iter().map(|sc| sc.run().to_obs().len()).collect()
    };
    assert_eq!(run_digest(42), run_digest(42));
}

/// Delivered prefixes agree pairwise in every scenario (the client-facing
/// consequence of the common total order).
#[test]
fn delivered_sequences_are_pairwise_prefixes() {
    for sc in scenarios::battery(77) {
        let stack = sc.run();
        let seqs: Vec<Vec<_>> =
            (0..sc.config.n).map(|i| stack.delivered(ProcId(i)).to_vec()).collect();
        for (i, a) in seqs.iter().enumerate() {
            for b in &seqs[i + 1..] {
                let ok = pgcs::model::seq::is_prefix(a, b) || pgcs::model::seq::is_prefix(b, a);
                assert!(ok, "{}: delivered sequences diverge", sc.name);
            }
        }
    }
}
