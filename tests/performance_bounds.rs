//! The conditional performance properties at full experiment size:
//! `VS-property(b, d, Q)` and `TO-property(b+d, d, Q)` with the
//! analytical bounds of Section 8, on partition, merge, and crash
//! scenarios.

use pgcs::harness::scenarios::{self, Scenario};
use pgcs::model::ProcId;
use pgcs::spec::properties::{check_to_property, check_vs_property, PropertyParams};
use pgcs::vsimpl::bounds;

fn assert_both_properties(sc: &Scenario) {
    let nq = sc.q.len();
    let cfg = &sc.config;
    let b = bounds::b(nq, cfg.delta, cfg.pi, cfg.mu);
    let d = bounds::d(nq, cfg.delta, cfg.pi);
    let stack = sc.run();
    let ambient = ProcId::range(cfg.n);

    let vs = check_vs_property(
        &stack.vs_obs(),
        &PropertyParams { b, d, q: sc.q.clone(), ambient: ambient.clone() },
    );
    assert!(vs.applicable, "{}: VS hypothesis never held", sc.name);
    assert!(
        vs.holds,
        "{}: VS-property failed (l'={} ≤ b={}? violations: {:?})",
        sc.name,
        vs.measured_l_prime,
        b,
        vs.violations.first()
    );

    let to = check_to_property(
        &stack.to_obs(),
        &PropertyParams { b: b + d, d, q: sc.q.clone(), ambient },
    );
    assert!(to.applicable, "{}: TO hypothesis never held", sc.name);
    assert!(
        to.holds,
        "{}: TO-property failed (l'={} ≤ b+d={}? violations: {:?})",
        sc.name,
        to.measured_l_prime,
        b + d,
        to.violations.first()
    );
    assert!(to.resolved > 0, "{}: no delivery obligations resolved", sc.name);
}

#[test]
fn partition_scenarios_meet_bounds() {
    assert_both_properties(&scenarios::partition(5, 3, 5, 15, 501));
    assert_both_properties(&scenarios::partition(7, 4, 5, 15, 502));
    assert_both_properties(&scenarios::partition(5, 3, 10, 10, 503));
}

#[test]
fn merge_scenarios_meet_bounds() {
    assert_both_properties(&scenarios::merge(4, 3, 5, 12, 601));
    assert_both_properties(&scenarios::merge(6, 4, 5, 12, 602));
}

#[test]
fn crash_scenarios_meet_bounds() {
    assert_both_properties(&scenarios::crash(4, 5, 12, 701));
    assert_both_properties(&scenarios::crash(5, 8, 12, 702));
}

#[test]
fn cascade_scenario_meets_bounds_after_final_heal() {
    assert_both_properties(&scenarios::cascade(5, 5, 15, 801));
}

/// The Figure 12 composition, checked as three facts about one trace:
/// `VS-property(b, d, Q)` holds, the `VStoTO-property` of Figure 11 holds
/// (its premises are VS's conclusions; its interval α‴ fits in d), and
/// therefore `TO-property(b+d, d, Q)` holds — Theorem 7.1 end to end.
#[test]
fn figure12_composition_on_one_trace() {
    use pgcs::vsimpl::{check_figure11, Figure11Params};
    for sc in [scenarios::partition(5, 3, 5, 12, 811), scenarios::merge(4, 3, 5, 12, 812)] {
        let nq = sc.q.len();
        let cfg = &sc.config;
        let b = bounds::b(nq, cfg.delta, cfg.pi, cfg.mu);
        let d = bounds::d(nq, cfg.delta, cfg.pi);
        let stack = sc.run();
        let ambient = ProcId::range(cfg.n);

        let vs = check_vs_property(
            &stack.vs_obs(),
            &PropertyParams { b, d, q: sc.q.clone(), ambient: ambient.clone() },
        );
        assert!(vs.applicable && vs.holds, "{}: VS link broken", sc.name);

        let f11 = check_figure11(
            stack.trace(),
            &Figure11Params { d, q: sc.q.clone(), ambient: ambient.clone() },
        );
        assert!(f11.premises_hold, "{}: {:?}", sc.name, f11.premise_failure);
        assert!(
            f11.holds,
            "{}: Figure 11 interval α‴ = {} exceeds d = {d}",
            sc.name, f11.measured_alpha3
        );

        let to = check_to_property(
            &stack.to_obs(),
            &PropertyParams { b: b + d, d, q: sc.q.clone(), ambient },
        );
        assert!(to.applicable && to.holds, "{}: TO conclusion broken", sc.name);
    }
}

/// The bounds really are bounds: an artificially tightened b must fail on
/// a merge (stabilization takes longer than a couple of δ).
#[test]
fn tightened_bounds_are_violated() {
    let sc = scenarios::merge(4, 3, 5, 10, 901);
    let cfg = &sc.config;
    let stack = sc.run();
    let vs = check_vs_property(
        &stack.vs_obs(),
        &PropertyParams {
            b: 1, // absurdly tight
            d: bounds::d(sc.q.len(), cfg.delta, cfg.pi),
            q: sc.q.clone(),
            ambient: ProcId::range(cfg.n),
        },
    );
    assert!(vs.applicable);
    assert!(!vs.holds, "a 1-tick stabilization bound cannot hold");
}
