//! Workload-shape coverage over the implementation stack: bursty, skewed
//! and random arrival patterns all deliver completely, in one order, with
//! latency statistics that make sense.

use pgcs::apps::{Workload, WorkloadKind};
use pgcs::spec::to_trace::check_to_trace;
use pgcs::vsimpl::stats::{stack_stats, TraceStats};
use pgcs::vsimpl::{Stack, StackConfig};

fn run_workload(kind: WorkloadKind, count: usize, seed: u64) -> (Stack, TraceStats) {
    let n = 3u32;
    let mut stack = Stack::new(StackConfig::standard(n, 5, seed));
    let pi = stack.config().pi;
    let w = Workload { kind, n, count, start: 4 * pi, mean_gap: 8, seed };
    let end = w.end_time();
    for (t, p, a) in w.schedule() {
        stack.schedule_value(t, p, a);
    }
    stack.run_until(end + 80 * pi);
    let stats = stack_stats(&stack);
    (stack, stats)
}

#[test]
fn every_workload_shape_delivers_completely() {
    for (kind, seed) in [
        (WorkloadKind::Uniform, 1u64),
        (WorkloadKind::Random, 2),
        (WorkloadKind::Bursty { burst: 7 }, 3),
        (WorkloadKind::Skewed, 4),
    ] {
        let count = 30;
        let (stack, stats) = run_workload(kind, count, seed);
        assert_eq!(stats.bcasts, count, "{kind:?}");
        assert_eq!(stats.brcvs, count * 3, "{kind:?}: incomplete delivery");
        assert_eq!(stats.delivery_latencies.len(), count, "{kind:?}");
        let to = check_to_trace(&stack.to_obs().untimed());
        assert!(to.ok(), "{kind:?}: {:?}", to.violations.first());
    }
}

#[test]
fn burst_traffic_rides_one_token_pass() {
    // A burst submitted back-to-back is picked up together: the spread of
    // its delivery latencies stays within roughly two token periods.
    let (_, stats) = run_workload(WorkloadKind::Bursty { burst: 10 }, 20, 9);
    let p100 = TraceStats::percentile(&stats.delivery_latencies, 100.0);
    let pi = 2 * 3 * 5; // standard π for n=3, δ=5
    assert!(p100 <= 4 * pi as u64, "worst-case burst latency {p100} exceeds 4π = {}", 4 * pi);
}

#[test]
fn stats_are_internally_consistent() {
    let (_, stats) = run_workload(WorkloadKind::Uniform, 25, 11);
    // First-delivery latency can never exceed full-delivery latency.
    let mean_first = TraceStats::mean(&stats.first_delivery_latencies);
    let mean_full = TraceStats::mean(&stats.delivery_latencies);
    assert!(mean_first <= mean_full, "{mean_first} > {mean_full}");
    assert_eq!(stats.newviews, 0);
    assert_eq!(stats.summaries_sent, 0, "no view change, no exchange");
}
