//! Property-based testing of the full stack: random partition scripts,
//! random workloads, and random protocol parameters must never violate
//! safety (TO-machine trace membership, Lemma 4.2, VS trace inclusion).

use pgcs::model::failure::FailureScript;
use pgcs::model::{ProcId, Time};
use pgcs::spec::cause::check_trace;
use pgcs::spec::completion::complete_and_replay;
use pgcs::spec::to_trace::check_to_trace;
use pgcs::vsimpl::{Stack, StackConfig};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A random sequence of partition/heal reconfigurations.
fn arb_script(n: u32, horizon: Time) -> impl Strategy<Value = FailureScript> {
    let group = prop::collection::vec(0..n, 0..=n as usize);
    prop::collection::vec((1..horizon, group), 0..4).prop_map(move |events| {
        let ambient = ProcId::range(n);
        let mut script = FailureScript::new();
        let mut times: Vec<_> = events;
        times.sort_by_key(|(t, _)| *t);
        for (t, members) in times {
            let left: BTreeSet<ProcId> = members.into_iter().map(ProcId).collect();
            let right: BTreeSet<ProcId> = ambient.difference(&left).copied().collect();
            if left.is_empty() || right.is_empty() {
                script.heal(t, &ambient);
            } else {
                script.partition(t, &[left, right], &ambient);
            }
        }
        script
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Arbitrary reconfiguration schedules and workloads preserve every
    /// safety property the specifications demand.
    #[test]
    fn random_partitions_preserve_safety(
        seed in 0u64..1_000,
        n in 3u32..=5,
        script in (3u32..=5).prop_flat_map(|n| arb_script(n, 4_000)).no_shrink(),
        sends in prop::collection::vec((0u64..4_000, 0u32..5), 1..12),
    ) {
        let mut stack = Stack::new(StackConfig::standard(n, 5, seed));
        stack.load_failures(&script);
        for (t, p) in sends {
            stack.schedule_bcast(t, ProcId(p % n));
        }
        stack.run_until(6_000);

        let to = check_to_trace(&stack.to_obs().untimed());
        prop_assert!(to.ok(), "TO: {:?}", to.violations.first());

        let actions = stack.vs_actions();
        let cause = check_trace(&actions, &ProcId::range(n));
        prop_assert!(cause.ok(), "cause: {:?}", cause.violations.first());

        let incl = complete_and_replay(&actions, ProcId::range(n), ProcId::range(n));
        prop_assert!(incl.is_ok(), "VS inclusion: {:?}", incl.err());
    }

    /// Random protocol parameters (δ, π, μ) keep the stable-group case
    /// live and safe.
    #[test]
    fn random_parameters_stay_live_and_safe(
        seed in 0u64..1_000,
        delta in 1u64..=12,
        pi_factor in 2u64..=5,
        mu_factor in 2u64..=8,
    ) {
        let n = 3u32;
        let mut cfg = StackConfig::standard(n, delta, seed);
        cfg.pi = pi_factor * n as Time * delta;
        cfg.mu = mu_factor * n as Time * delta;
        let pi = cfg.pi;
        let mut stack = Stack::new(cfg);
        for i in 0..5u64 {
            stack.schedule_bcast(4 * pi + i * delta.max(2), ProcId((i % 3) as u32));
        }
        stack.run_until(4 * pi + 100 * pi);
        for i in 0..n {
            prop_assert_eq!(
                stack.delivered(ProcId(i)).len(),
                5,
                "p{} missed deliveries", i
            );
        }
        let to = check_to_trace(&stack.to_obs().untimed());
        prop_assert!(to.ok(), "TO: {:?}", to.violations.first());
    }
}
