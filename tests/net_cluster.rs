//! Smoke test for the TCP stack through the façade crate: a small
//! loopback cluster forms its initial view, delivers a burst of client
//! operations in one total order, and its merged trace satisfies the
//! specification checkers — the same contract the simulator is held to.

use pgcs::model::{ProcId, Value};
use pgcs::net::cluster::{ClusterConfig, LoopbackCluster};
use pgcs::spec::cause::check_trace;
use pgcs::spec::to_trace::check_to_trace;
use pgcs::vsimpl::convert::{to_obs, vs_actions};
use std::time::{Duration, Instant};

#[test]
fn loopback_cluster_smoke() {
    let n = 3u32;
    let cluster = LoopbackCluster::start(ClusterConfig::patient(n)).expect("bind loopback");

    // Initial view over the full group at every node.
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        let formed =
            cluster.views().iter().all(|vs| vs.last().is_some_and(|v| v.size() == n as usize));
        if formed {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    for i in 0..24u64 {
        cluster.submit(ProcId((i % n as u64) as u32), Value::from_u64(i + 1));
    }
    assert!(
        cluster.await_deliveries(24, Duration::from_secs(30)),
        "deliveries timed out: {:?}",
        cluster.delivered().iter().map(|d| d.len()).collect::<Vec<_>>()
    );

    let delivered = cluster.delivered();
    for d in &delivered {
        assert_eq!(&delivered[0][..24], &d[..24], "total orders diverge");
    }

    let trace = cluster.stop();
    let to = check_to_trace(&to_obs(&trace).untimed());
    assert!(to.ok(), "TO checker failed: {:?}", to.violations.first());
    let cause = check_trace(&vs_actions(&trace), &ProcId::range(n));
    assert!(cause.ok(), "cause checker failed: {:?}", cause.violations.first());
}
