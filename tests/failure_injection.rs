//! Failure injection at the protocol's most delicate moments: crashes
//! during the state exchange, leader loss mid-rotation, flapping links,
//! and ugly (nondeterministically slow, lossy) periods. Safety must hold
//! unconditionally; liveness must return once the failure status
//! stabilizes, exactly as the conditional properties promise.

use pgcs::model::failure::FailureScript;
use pgcs::model::{ProcId, Status, Time};
use pgcs::spec::cause::check_trace;
use pgcs::spec::completion::complete_and_replay;
use pgcs::spec::to_trace::check_to_trace;
use pgcs::vsimpl::{Stack, StackConfig};
use std::collections::BTreeSet;

fn assert_safe(stack: &Stack, n: u32, what: &str) {
    let to = check_to_trace(&stack.to_obs().untimed());
    assert!(to.ok(), "{what}: TO violation: {:?}", to.violations.first());
    let actions = stack.vs_actions();
    let cause = check_trace(&actions, &ProcId::range(n));
    assert!(cause.ok(), "{what}: Lemma 4.2 violation: {:?}", cause.violations.first());
    complete_and_replay(&actions, ProcId::range(n), ProcId::range(n))
        .unwrap_or_else(|(i, e)| panic!("{what}: VS inclusion at event {i}: {e}"));
}

/// Crash a member exactly while the group is reforming (between the
/// partition and the point the new view would have settled), so its
/// state-exchange summary goes missing; the survivors must reform again
/// without it and continue.
#[test]
fn crash_during_state_exchange_recovers() {
    let n = 4u32;
    let mut stack = Stack::new(StackConfig::standard(n, 5, 31));
    let pi = stack.config().pi;
    let ambient = ProcId::range(n);
    let trio: BTreeSet<ProcId> = ProcId::range(3);
    let mut script = FailureScript::new();
    // Cut off p3, triggering reformation of {0,1,2}...
    script.partition(8 * pi, &[trio.clone(), [ProcId(3)].into()], &ambient);
    // ...and crash p1 a moment later, mid-exchange for most seeds.
    script.crash(8 * pi + stack.config().delta, ProcId(1));
    stack.load_failures(&script);
    for i in 0..6u64 {
        stack.schedule_bcast(8 * pi + 5 + i * 30, ProcId((i % 2) as u32 * 2)); // p0, p2
    }
    stack.run_until(8 * pi + 300 * pi);
    // p0 and p2 form a majority? No — {0,2} is 2 of 4: not a quorum, so
    // nothing new confirms; but all pre-crash confirmations and all
    // traces must still be safe.
    assert_safe(&stack, n, "crash during exchange");
    // Now recover p1: the trio is a majority again and must drain the
    // queued traffic.
    let mut script2 = FailureScript::new();
    script2.recover(stack.now() + 1, ProcId(1));
    stack.load_failures(&script2);
    stack.run_until(stack.now() + 300 * pi);
    assert_safe(&stack, n, "after recovery");
    for p in [ProcId(0), ProcId(1), ProcId(2)] {
        assert_eq!(
            stack.delivered(p).len(),
            6,
            "{p} must deliver all queued traffic after recovery"
        );
    }
}

/// Crash the ring leader (p0) while traffic is in flight: the token is
/// lost with it, the timeout reforms the view without p0, and the
/// remaining majority re-confirms everything.
#[test]
fn leader_crash_loses_token_but_not_data() {
    let n = 3u32;
    let mut stack = Stack::new(StackConfig::standard(n, 5, 17));
    let pi = stack.config().pi;
    let ambient = ProcId::range(n);
    let survivors: BTreeSet<ProcId> = [ProcId(1), ProcId(2)].into();
    // Traffic first, then kill the leader shortly after the messages go in.
    for i in 0..5u64 {
        stack.schedule_bcast(4 * pi + i * 3, ProcId(1));
    }
    let mut script = FailureScript::new();
    script.partition(4 * pi + 8, &[survivors.clone(), [ProcId(0)].into()], &ambient);
    stack.load_failures(&script);
    stack.run_until(4 * pi + 400 * pi);
    assert_safe(&stack, n, "leader crash");
    // The survivor pair is a majority of 3: everything confirms.
    for &p in &survivors {
        assert_eq!(stack.delivered(p).len(), 5, "{p} must deliver all 5");
    }
    for &p in &survivors {
        let v = stack.view_of(p).expect("view");
        assert_eq!(v.set, survivors);
    }
}

/// A link that flaps (bad ↔ good repeatedly) between two members delays
/// but never corrupts: safety holds throughout, and once the flapping
/// stops everything is delivered.
#[test]
fn flapping_link_is_only_a_delay() {
    let n = 3u32;
    let mut stack = Stack::new(StackConfig::standard(n, 5, 23));
    let pi = stack.config().pi;
    let mut script = FailureScript::new();
    for k in 0..6u64 {
        let t = 4 * pi + k * 2 * pi;
        let status = if k % 2 == 0 { Status::Bad } else { Status::Good };
        script.set_pair(t, ProcId(0), ProcId(1), status);
    }
    script.set_pair(4 * pi + 12 * pi, ProcId(0), ProcId(1), Status::Good);
    stack.load_failures(&script);
    for i in 0..6u64 {
        stack.schedule_bcast(4 * pi + i * pi, ProcId((i % 3) as u32));
    }
    stack.run_until(4 * pi + 500 * pi);
    assert_safe(&stack, n, "flapping link");
    for i in 0..n {
        assert_eq!(stack.delivered(ProcId(i)).len(), 6, "p{i} must catch up");
    }
}

/// An ugly period (slow, lossy processor and links) followed by
/// stabilization: safety throughout, full delivery afterwards.
#[test]
fn ugly_period_then_stabilization() {
    let n = 3u32;
    let mut stack = Stack::new(StackConfig::standard(n, 5, 29));
    let pi = stack.config().pi;
    let ambient = ProcId::range(n);
    let mut script = FailureScript::new();
    script.push(pgcs::model::FailureEvent::new(
        4 * pi,
        pgcs::model::Subject::Loc(ProcId(2)),
        Status::Ugly,
    ));
    script.set_pair(4 * pi, ProcId(0), ProcId(2), Status::Ugly);
    script.heal(30 * pi, &ambient);
    stack.load_failures(&script);
    for i in 0..6u64 {
        stack.schedule_bcast(4 * pi + 5 + i * 10, ProcId((i % 3) as u32));
    }
    stack.run_until(30 * pi + 400 * pi);
    assert_safe(&stack, n, "ugly period");
    for i in 0..n {
        assert_eq!(stack.delivered(ProcId(i)).len(), 6, "p{i} must catch up");
    }
}

/// Repeated rapid reconfigurations (every few token periods) with traffic
/// throughout: the adversarial-churn case the paper explicitly allows
/// ("arbitrary view changes during periods when the underlying network is
/// unstable"). Safety must never waver.
#[test]
fn rapid_reconfiguration_storm_is_safe() {
    let n = 5u32;
    let mut stack = Stack::new(StackConfig::standard(n, 5, 41));
    let pi = stack.config().pi;
    let ambient = ProcId::range(n);
    let mut script = FailureScript::new();
    let splits: [&[u32]; 5] = [&[0, 1, 2], &[0, 1, 2, 3], &[2, 3, 4], &[0, 4], &[0, 1, 2, 3, 4]];
    for (k, left) in splits.iter().enumerate() {
        let lhs: BTreeSet<ProcId> = left.iter().map(|&i| ProcId(i)).collect();
        let rhs: BTreeSet<ProcId> = ambient.difference(&lhs).copied().collect();
        let t = 4 * pi + k as Time * 3 * pi;
        if rhs.is_empty() {
            script.heal(t, &ambient);
        } else {
            script.partition(t, &[lhs, rhs], &ambient);
        }
    }
    stack.load_failures(&script);
    for i in 0..12u64 {
        stack.schedule_bcast(4 * pi + i * pi, ProcId((i % 5) as u32));
    }
    stack.run_until(4 * pi + 15 * pi + 400 * pi);
    assert_safe(&stack, n, "reconfiguration storm");
    // After the final heal everything converges and delivers.
    for i in 0..n {
        assert_eq!(stack.delivered(ProcId(i)).len(), 12, "p{i} must deliver all");
        assert_eq!(stack.view_of(ProcId(i)).expect("view").set, ambient);
    }
}
