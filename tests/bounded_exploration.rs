//! Bounded exhaustive model checking of the composed `VStoTO-system`:
//! for a tiny configuration, *every* reachable state up to a depth bound
//! satisfies the full invariant suite, and every transition satisfies the
//! simulation relation — not just states sampled by random schedules.

use pgcs::ioa::{explore, Automaton, ExploreLimits};
use pgcs::model::{Majority, ProcId, Value, View, ViewId};
use pgcs::spec::derived::DerivedState;
use pgcs::spec::invariants::check_all;
use pgcs::spec::system::{SysAction, SysState, VsToToSystem};
use std::sync::Arc;

fn tiny_system() -> VsToToSystem {
    let procs = ProcId::range(2);
    VsToToSystem::new(procs.clone(), procs, Arc::new(Majority::new(2)))
}

/// Adversary with a deterministic, finite proposal set: at most two
/// distinct client values (one per processor) and one extra view.
fn proposals(s: &SysState) -> Vec<SysAction> {
    let mut out = Vec::new();
    // One value per processor, submitted at most once each.
    for (i, p) in [ProcId(0), ProcId(1)].into_iter().enumerate() {
        let a = Value::from_u64(i as u64 + 1);
        let already = s.procs[&p].delay.iter().any(|v| *v == a)
            || s.procs[&p].content.values().any(|v| *v == a);
        if !already {
            out.push(SysAction::Bcast { p, a });
        }
    }
    // One adversarial view change: the pair view g1, then the solo view g2.
    let g1 = ViewId::new(1, ProcId(0));
    let g2 = ViewId::new(2, ProcId(1));
    if !s.vs.created_viewids().contains(&g1) {
        out.push(SysAction::CreateView(View::new(g1, ProcId::range(2))));
    } else if !s.vs.created_viewids().contains(&g2) {
        out.push(SysAction::CreateView(View::new(g2, [ProcId(1)].into())));
    }
    out
}

#[test]
fn every_reachable_state_satisfies_all_invariants() {
    let sys = tiny_system();
    let stats = explore(
        &sys,
        proposals,
        |s: &SysState| check_all(s, &DerivedState::new(s)),
        ExploreLimits { max_depth: 9, max_states: 150_000 },
    )
    .unwrap_or_else(|(path, e)| panic!("violation after {:?}: {e}", path));
    assert!(stats.states > 1_000, "exploration too shallow: {stats:?}");
}

#[test]
fn every_reachable_transition_respects_the_simulation() {
    use pgcs::spec::simulation::simulation_checker;
    let sys = tiny_system();
    let checker = simulation_checker(ProcId::range(2));
    checker.check_initial(&sys.initial()).expect("initial state");
    // Re-walk the frontier, checking each examined transition.
    let sys2 = tiny_system();
    let stats = explore(
        &sys,
        proposals,
        |s: &SysState| {
            // For each enabled action from s, check the simulated step.
            let mut actions = sys2.enabled(s);
            actions.extend(proposals(s).into_iter().filter(|a| sys2.is_enabled(s, a)));
            for a in actions {
                let post = sys2.step(s, &a);
                checker.check_step(s, &a, &post).map_err(|e| format!("simulating {a:?}: {e}"))?;
            }
            Ok(())
        },
        ExploreLimits { max_depth: 8, max_states: 40_000 },
    )
    .unwrap_or_else(|(path, e)| panic!("violation after {:?}: {e}", path));
    assert!(stats.transitions > 2_000, "too few transitions: {stats:?}");
}
