//! Long-running refinement checks on the abstract composed system: the
//! invariant suite and the simulation relation together, across quorum
//! systems and adversary intensities.

use pgcs::ioa::Runner;
use pgcs::model::{Explicit, Majority, ProcId, QuorumSystem, Weighted};
use pgcs::spec::adversary::SystemAdversary;
use pgcs::spec::invariants::install_invariants;
use pgcs::spec::simulation::install_simulation_check;
use pgcs::spec::system::VsToToSystem;
use std::sync::Arc;

fn refine(n: u32, quorums: Arc<dyn QuorumSystem>, adv: SystemAdversary, seed: u64, steps: usize) {
    let procs = ProcId::range(n);
    let sys = VsToToSystem::new(procs.clone(), procs, quorums);
    let mut runner = Runner::new(sys, adv, seed);
    install_invariants(&mut runner);
    let violations = install_simulation_check(&mut runner);
    runner.run(steps).unwrap_or_else(|e| panic!("invariant violated: {e}"));
    let v = violations.borrow();
    assert!(v.is_empty(), "simulation violated: {:?}", v.first());
}

#[test]
fn majority_quorums_long_run() {
    for seed in 0..3 {
        refine(3, Arc::new(Majority::new(3)), SystemAdversary::default(), seed, 1_500);
    }
}

#[test]
fn four_processors_heavy_churn() {
    refine(
        4,
        Arc::new(Majority::new(4)),
        SystemAdversary::default().with_view_prob(0.25),
        11,
        1_200,
    );
}

#[test]
fn explicit_quorum_system() {
    let q = Explicit::new(vec![
        [ProcId(0), ProcId(1)].into(),
        [ProcId(1), ProcId(2)].into(),
        [ProcId(0), ProcId(2)].into(),
    ])
    .expect("valid quorums");
    refine(3, Arc::new(q), SystemAdversary::default(), 5, 1_500);
}

#[test]
fn weighted_quorum_system() {
    let q = Weighted::new([(ProcId(0), 3), (ProcId(1), 1), (ProcId(2), 1), (ProcId(3), 1)]);
    refine(4, Arc::new(q), SystemAdversary::default(), 9, 1_200);
}

#[test]
fn quiescing_run_confirms_everything_outstanding() {
    use pgcs::spec::system::SysAction;
    let procs = ProcId::range(3);
    let sys = VsToToSystem::new(procs.clone(), procs, Arc::new(Majority::new(3)));
    // Churn then settle; submissions stop at step 600.
    let adv = SystemAdversary::quiescing(300, 600);
    let mut runner = Runner::new(sys, adv, 21);
    install_invariants(&mut runner);
    let violations = install_simulation_check(&mut runner);
    let exec = runner.run(6_000).expect("invariants hold");
    assert!(violations.borrow().is_empty());
    // After settling, whatever was labelled in the final (primary, full)
    // view must eventually be delivered to everyone. Count deliveries to
    // each destination: they should be equal once quiescent.
    let mut per_dst = std::collections::BTreeMap::new();
    for a in exec.actions() {
        if let SysAction::Brcv { dst, .. } = a {
            *per_dst.entry(*dst).or_insert(0usize) += 1;
        }
    }
    // The final state must have every processor caught up to the common
    // confirmed prefix (scheduler fairness over 6000 steps).
    let s = exec.final_state();
    let confirms: Vec<u64> = s.procs.values().map(|p| p.nextconfirm).collect();
    let reports: Vec<u64> = s.procs.values().map(|p| p.nextreport).collect();
    assert_eq!(confirms.iter().max(), confirms.iter().min(), "confirm divergence {confirms:?}");
    assert_eq!(reports.iter().max(), reports.iter().min(), "report divergence {reports:?}");
}
