//! Offline drop-in subset of the `bytes` crate: an immutable,
//! cheaply-cloneable byte buffer backed by `Arc<[u8]>`.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of contiguous memory.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Creates `Bytes` from a static slice without copying semantics
    /// concerns (contents are still copied into the shared buffer).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrows the contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_and_compares() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(&a[..], b"hello");
        assert_eq!(a.len(), 5);
        assert!(Bytes::new().is_empty());
        assert!(a < Bytes::copy_from_slice(b"world"));
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
    }
}
