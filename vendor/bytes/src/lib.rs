//! Offline drop-in subset of the `bytes` crate: an immutable,
//! cheaply-cloneable byte buffer backed by `Arc<[u8]>`.
//!
//! A `Bytes` is a *view* `[start, end)` into a shared backing
//! allocation, so [`Bytes::slice`] is O(1) and allocation-free: many
//! values decoded out of one network frame can all share the frame's
//! single buffer. Equality, ordering, and hashing are defined over the
//! viewed contents only, so a sliced `Bytes` behaves exactly like an
//! owned copy of the same bytes.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, Range};
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of contiguous memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::wrap(Arc::from(&[][..]))
    }

    fn wrap(data: Arc<[u8]>) -> Self {
        let end = data.len();
        Bytes { data, start: 0, end }
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::wrap(Arc::from(data))
    }

    /// Creates `Bytes` from a static slice without copying semantics
    /// concerns (contents are still copied into the shared buffer).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::wrap(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Borrows the contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// An O(1) sub-view of `self` sharing the same backing allocation;
    /// `range` is relative to this view.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted, matching slice
    /// indexing.
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(range.start <= range.end, "slice range inverted");
        assert!(range.end <= self.len(), "slice range out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with `<[u8] as Hash>` for the `Borrow<[u8]>` impl.
        self.as_slice().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::wrap(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_and_compares() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(&a[..], b"hello");
        assert_eq!(a.len(), 5);
        assert!(Bytes::new().is_empty());
        assert!(a < Bytes::copy_from_slice(b"world"));
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
    }

    #[test]
    fn slice_shares_the_backing_allocation() {
        let a = Bytes::copy_from_slice(b"hello world");
        let hello = a.slice(0..5);
        let world = a.slice(6..11);
        assert_eq!(&hello[..], b"hello");
        assert_eq!(&world[..], b"world");
        // Same allocation: the sub-view's pointer sits inside `a`.
        assert_eq!(world.as_ref().as_ptr(), a.as_ref()[6..].as_ptr());
        // Sub-views of sub-views are relative to the view.
        assert_eq!(&world.slice(1..3)[..], b"or");
        assert!(a.slice(5..5).is_empty());
    }

    #[test]
    fn sliced_views_compare_by_contents() {
        let a = Bytes::copy_from_slice(b"xabcx");
        let owned = Bytes::copy_from_slice(b"abc");
        let view = a.slice(1..4);
        assert_eq!(view, owned);
        assert_eq!(view.cmp(&owned), std::cmp::Ordering::Equal);
        use std::collections::hash_map::DefaultHasher;
        let digest = |b: &Bytes| {
            let mut h = DefaultHasher::new();
            b.hash(&mut h);
            h.finish()
        };
        assert_eq!(digest(&view), digest(&owned));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_bounds_are_checked() {
        let _ = Bytes::copy_from_slice(b"abc").slice(1..5);
    }
}
