//! Offline drop-in subset of the `crossbeam` crate: multi-producer
//! channels (`bounded` / `unbounded`) built on `std::sync::mpsc`.
//! Unlike std, the same [`channel::Sender`] type serves both flavors,
//! matching crossbeam's unified channel API.

#![forbid(unsafe_code)]

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::RecvTimeoutError;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The sending half of a channel; cloneable, works for both
    /// bounded and unbounded channels.
    pub enum Sender<T> {
        /// Backed by an unbounded std channel.
        Unbounded(mpsc::Sender<T>),
        /// Backed by a rendezvous-or-buffered std sync channel.
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(tx) => Sender::Unbounded(tx.clone()),
                Sender::Bounded(tx) => Sender::Bounded(tx.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking if a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                Sender::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Returns a message if one is ready, without blocking.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }

        /// Iterates over messages until all senders disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 2);
    }

    #[test]
    fn bounded_roundtrip_and_timeout() {
        let (tx, rx) = bounded::<&str>(4);
        tx.send("a").unwrap();
        assert_eq!(rx.recv().unwrap(), "a");
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(0).is_err());
    }
}
