//! Offline drop-in subset of `parking_lot`: `Mutex` and `RwLock` with
//! non-poisoning APIs, implemented over `std::sync`. Poisoned std locks
//! are recovered via `into_inner`, matching parking_lot's behavior of
//! not propagating poison.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
