//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! Implements the surface this workspace uses — `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — over a simple
//! wall-clock harness: each benchmark is warmed up, calibrated to a
//! target measurement window, and reported as median ns/iter across a
//! handful of samples. No statistics engine, plotting, or HTML reports.
//!
//! CLI compatibility: ignores unknown flags (so `cargo bench` extra
//! args don't break it), honors a substring filter argument, `--quick`
//! for a short measurement window, and runs a single iteration per
//! bench under `--test` (what `cargo test --benches` passes).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimizer from
/// deleting the computation of its argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How thoroughly to measure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Normal measurement windows.
    Full,
    /// Short windows (`--quick`): good enough for smoke comparisons.
    Quick,
    /// One iteration per bench (`--test`): just check it runs.
    Test,
}

impl Mode {
    fn measure_window(self) -> Duration {
        match self {
            Mode::Full => Duration::from_millis(300),
            Mode::Quick => Duration::from_millis(40),
            Mode::Test => Duration::ZERO,
        }
    }

    fn samples(self) -> usize {
        match self {
            Mode::Full => 5,
            Mode::Quick => 3,
            Mode::Test => 1,
        }
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
    total_iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly and records its median per-call time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call, also used to calibrate the batch size.
        let t0 = Instant::now();
        black_box(f());
        let first = t0.elapsed().max(Duration::from_nanos(1));
        if self.mode == Mode::Test {
            self.ns_per_iter = first.as_nanos() as f64;
            self.total_iters = 1;
            return;
        }

        let window = self.mode.measure_window();
        let per_sample = (window.as_nanos() / first.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut samples = Vec::with_capacity(self.mode.samples());
        let mut total = 0u64;
        for _ in 0..self.mode.samples() {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            let elapsed = t.elapsed().as_nanos() as f64;
            samples.push(elapsed / per_sample as f64);
            total += per_sample;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
        self.total_iters = total;
    }
}

/// A benchmark identifier such as `group/param` or `name/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Just the parameter (the group name supplies the prefix).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { mode: Mode::Full, filter: None }
    }
}

impl Criterion {
    /// Applies `cargo bench` command-line arguments: a bare string is a
    /// substring filter, `--quick` / `--test` select shorter modes, and
    /// every other flag is accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => self.mode = Mode::Quick,
                "--test" => self.mode = Mode::Test,
                // Flags with a value we must consume.
                "--save-baseline" | "--baseline" | "--load-baseline" | "--measurement-time"
                | "--warm-up-time" | "--sample-size" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher { mode: self.mode, ns_per_iter: 0.0, total_iters: 0 };
        f(&mut b);
        let (value, unit) = humanize_ns(b.ns_per_iter);
        println!("{id:<50} time: {value:>10.2} {unit}/iter  ({} iters)", b.total_iters);
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, |b| f(b));
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

fn humanize_ns(ns: f64) -> (f64, &'static str) {
    if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; the stub harness sizes
    /// samples from the mode instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for criterion compatibility; ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` with `input`, labeled `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Benchmarks `f`, labeled `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b));
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Declares a function `$name(c: &mut Criterion)` that runs `$target(c)`
/// for each listed target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` running each listed group with CLI-configured settings.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { mode: Mode::Quick, ns_per_iter: 0.0, total_iters: 0 };
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.ns_per_iter > 0.0);
        assert!(b.total_iters > 0);
    }

    #[test]
    fn group_and_function_apis_compose() {
        let mut c = Criterion { mode: Mode::Test, filter: None };
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &n| b.iter(|| n * 2));
        g.bench_with_input(BenchmarkId::new("sub", 4), &4, |b, &n| b.iter(|| n * 2));
        g.finish();
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion { mode: Mode::Test, filter: Some("match_me".into()) };
        let mut ran = false;
        c.bench_function("other", |b| {
            ran = true;
            b.iter(|| 0)
        });
        assert!(!ran);
    }

    #[test]
    fn humanize_picks_sensible_units() {
        assert_eq!(humanize_ns(12.0).1, "ns");
        assert_eq!(humanize_ns(1.2e4).1, "µs");
        assert_eq!(humanize_ns(3.4e7).1, "ms");
        assert_eq!(humanize_ns(2.0e9).1, "s");
    }
}
