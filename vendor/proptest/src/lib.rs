//! Offline drop-in subset of the `proptest` API.
//!
//! Supports the surface this workspace's property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `no_shrink`,
//! integer and float range strategies, tuple strategies,
//! `prop::collection::{vec, btree_set, btree_map}`, `prop::option::of`,
//! and `any::<T>()`. No shrinking: a failing case reports the test name
//! and assertion message; seeds are derived deterministically from the
//! test name, so failures reproduce exactly on re-run.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies while generating a test case.
pub struct TestRng(SmallRng);

impl TestRng {
    fn from_name(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    fn rng(&mut self) -> &mut SmallRng {
        &mut self.0
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the case is a genuine counterexample.
    Fail(String),
    /// `prop_assume!` filtered the case out; generate another.
    Reject(String),
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (filtered) case with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Runner configuration, constructible with struct-update syntax
/// (`ProptestConfig { cases: 24, ..ProptestConfig::default() }`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // PROPTEST_CASES mirrors upstream's env override.
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
        ProptestConfig { cases, max_global_rejects: 4096 }
    }
}

/// Alias matching upstream's `test_runner::Config` path.
pub mod test_runner {
    pub use crate::{ProptestConfig as Config, TestCaseError, TestRng};
}

/// Drives one property test: generates cases until `config.cases` pass,
/// panicking on the first failure. Called by the `proptest!` macro.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "{name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {accepted} failed: {msg}")
            }
        }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Disables shrinking. The stub never shrinks, so this is identity.
    fn no_shrink(self) -> Self
    where
        Self: Sized,
    {
        self
    }

    /// Boxes the strategy (for heterogeneous collections of strategies).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit: f64 = rng.rng().gen();
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait ArbitraryValue: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        use rand::RngCore;
        rng.rng().next_u64()
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        use rand::RngCore;
        rng.rng().next_u32()
    }
}

impl ArbitraryValue for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        use rand::RngCore;
        rng.rng().next_u32() as u8
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng().gen_bool(0.5)
    }
}

/// See [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// A collection size specification (`0..4`, `1..=8`, or an exact size).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        rng.rng().gen_range(self.lo..=self.hi)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.draw(rng);
            let mut out = BTreeSet::new();
            // Duplicate draws collapse; retry a bounded number of times so
            // a small element domain cannot loop forever. The minimum size
            // is still honored whenever the domain allows it, because the
            // first `target` distinct draws all land.
            let mut attempts = 0;
            while out.len() < target && attempts < target * 20 + 20 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// A `BTreeSet` of `size` distinct elements drawn from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = self.size.draw(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 20 + 20 {
                out.insert(self.keys.generate(rng), self.values.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// A `BTreeMap` of `size` entries with keys/values from the given
    /// strategies.
    pub fn btree_map<K: Strategy, V: Strategy>(
        keys: K,
        values: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { keys, values, size: size.into() }
    }
}

/// Option strategies (`prop::option::*`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// See [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.rng().gen_bool(0.5) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// `None` or `Some(value)` with equal probability.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

/// Everything a property test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// Mirrors upstream's `prop` module re-export.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Fails the current case (without panicking the generator loop
/// machinery) if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {:?} != {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}: {:?} != {:?}", format!($($fmt)*), l, r
            )));
        }
    }};
}

/// Rejects the current case (a fresh one is generated) if `cond` is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that generates inputs and runs the body until
/// the configured number of cases pass.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_proptest(config, stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    let case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    case()
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let x = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (1usize..=9).generate(&mut rng);
            assert!((1..=9).contains(&y));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn collections_honor_sizes() {
        let mut rng = crate::TestRng::from_name("collections");
        for _ in 0..200 {
            let v = prop::collection::vec(0u32..100, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let s = prop::collection::btree_set(0u32..1000, 1..8).generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 8);
            let m = prop::collection::btree_map(0u32..1000, 0u64..5, 1..5).generate(&mut rng);
            assert!(!m.is_empty() && m.len() < 5);
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = crate::TestRng::from_name("maps");
        let s = (0u32..5).prop_map(|x| x * 10);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 10, 0);
        }
        let fm = (1u32..4).prop_flat_map(|n| prop::collection::vec(0u32..10, n as usize));
        for _ in 0..100 {
            let v = fm.generate(&mut rng);
            assert!((1..4).contains(&(v.len() as u32)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 50, ..ProptestConfig::default() })]

        /// The macro itself: patterns, assume, assert, tuples, sets.
        #[test]
        fn macro_end_to_end(
            a in 0u64..100,
            (lo, hi) in (0u32..50, 50u32..100),
            set in prop::collection::btree_set(0u32..20, 0..=10usize),
        ) {
            prop_assume!(a != 13);
            prop_assert!(lo < hi, "{lo} vs {hi}");
            prop_assert_eq!(set.iter().copied().collect::<BTreeSet<_>>(), set);
            prop_assert!(a < 100);
        }
    }
}
