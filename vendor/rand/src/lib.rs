//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the small slice of `rand` it actually uses: the [`RngCore`] /
//! [`SeedableRng`] traits and the [`Rng`] extension methods
//! `gen_range` / `gen_bool` / `gen`. Algorithms follow the upstream
//! conventions (`seed_from_u64` via SplitMix64, Lemire-style widening
//! multiply with rejection for uniform integers, 53-bit mantissa floats),
//! so seeded runs are stable and statistically uniform; exact bit
//! compatibility with upstream `rand` is *not* guaranteed and no recorded
//! artifact in this repository depends on it.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// (the same convention as `rand_core`).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A type that can be sampled uniformly from a half-open or inclusive
/// range (the subset of `rand`'s `SampleUniform` this workspace needs).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Uniform `u64` in `[0, span)` (`span > 0`) by widening multiply with
/// rejection of the biased low region.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire's method: multiply a random u64 by span; the high word is
    // uniform once values whose low word falls under the bias threshold
    // are rejected.
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u64) - (low as u64);
                low + (uniform_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                low + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

impl SampleUniform for i64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: i64, high: i64) -> i64 {
        assert!(low < high, "gen_range: empty range");
        let span = high.wrapping_sub(low) as u64;
        low.wrapping_add(uniform_u64(rng, span) as i64)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: i64, high: i64) -> i64 {
        assert!(low <= high, "gen_range: empty range");
        let span = (high.wrapping_sub(low) as u64).wrapping_add(1);
        if span == 0 {
            return rng.next_u64() as i64;
        }
        low.wrapping_add(uniform_u64(rng, span) as i64)
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples the range uniformly.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait StandardSample {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        if p >= 1.0 {
            // Consume one draw for stream parity with the p < 1 branch.
            let _ = self.next_u64();
            return true;
        }
        // Compare 64 random bits against p scaled to the u64 domain.
        let threshold = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < threshold
    }

    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Submodule mirroring `rand::rngs` for the types this workspace names.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast non-cryptographic PRNG (xoshiro256++), used where
    /// upstream code would reach for `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // Avoid the all-zero state, which xoshiro cannot leave.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
            let z: u64 = rng.gen_range(5..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn f64_samples_are_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        let mut rng = SmallRng::seed_from_u64(6);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0..10u32);
        assert!(x < 10);
    }
}
