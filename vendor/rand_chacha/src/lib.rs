//! Offline drop-in subset of the `rand_chacha` 0.3 API.
//!
//! Provides [`ChaCha8Rng`]: a deterministic RNG driven by the ChaCha
//! stream cipher with 8 rounds, seedable from 32 bytes (or a `u64` via
//! `SeedableRng::seed_from_u64`). The keystream follows RFC 7539 block
//! layout; exact bit compatibility with upstream `rand_chacha` is not
//! guaranteed and nothing in this repository depends on it — only on
//! determinism for a fixed seed.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha-based deterministic RNG with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word index in `buf`; 16 means "buffer exhausted".
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants, key, 64-bit block counter, zero nonce.
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, buf: [0; 16], idx: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge, {same} collisions");
    }

    #[test]
    fn keystream_is_statistically_plausible() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let ones: u32 = (0..1_000).map(|_| rng.next_u64().count_ones()).sum();
        // Mean should be ~32_000 bits set out of 64_000.
        assert!((30_000..34_000).contains(&ones), "got {ones}");
    }

    #[test]
    fn works_through_rng_extension_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..1_000 {
            let x: usize = rng.gen_range(0..7);
            assert!(x < 7);
        }
    }

    #[test]
    fn works_as_dyn_rng_core() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let _ = dyn_rng.next_u64();
    }
}
