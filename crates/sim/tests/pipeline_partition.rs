//! Pipelined-token coverage: a submit burst dense enough to keep
//! several rounds in flight (`ProtoConfig::pipeline` tokens ahead of
//! the ack cursor), driven through a partition/merge cycle. The split
//! lands while the ring is mid-pipeline, so in-flight rounds die with
//! the view and their batches must survive into the merged view via
//! the VS state exchange — exactly the interaction the batched protocol
//! must not get wrong. Every checker (VS/TO conformance, b/d bound
//! monitors, convergence) stays green, and the run replays bit-for-bit.

use gcs_sim::{run, FaultOp, Scenario, ScheduledFault, ScheduledSubmit, SimConfig};

/// A hand-written scenario: 240 submissions at 8 per virtual
/// millisecond — far more than one rotation drains, forcing k-in-flight
/// batching — split across both sides of a partition that opens at
/// t=1500 and heals at t=2500, with traffic continuing on both sides
/// while it is open.
fn pipelined_partition_scenario(seed: u64) -> Scenario {
    let config =
        SimConfig { seed, submits: 240, active_ms: 6_000, fault_budget: 0, ..SimConfig::default() };
    let mut submits = Vec::new();
    for v in 1..=240u64 {
        // Three dense bursts: before the split, during it (hitting both
        // components), and after the merge.
        let at = match v {
            1..=120 => 100 + v / 8,
            121..=180 => 1_700 + (v - 120) / 8,
            _ => 2_800 + (v - 180) / 8,
        };
        submits.push(ScheduledSubmit { at, node: (v % 5) as u32, value: v });
    }
    submits.sort_by_key(|s| (s.at, s.value));
    let faults = vec![ScheduledFault {
        at: 1_500,
        op: FaultOp::Split { groups: vec![vec![0, 1, 2], vec![3, 4]], dur_ms: 1_000 },
    }];
    Scenario { config, submits, faults }
}

/// The burst pipeline survives the partition/merge cycle with every
/// checker green and nothing lost.
#[test]
fn k_in_flight_tokens_survive_partition_merge() {
    for seed in [5u64, 23, 71] {
        let report = run(&pipelined_partition_scenario(seed));
        assert!(report.ok(), "seed {seed} failed: {:?}", report.violations.first());
        assert_eq!(report.delivered, 240, "seed {seed} lost submissions");
        assert_eq!(report.faults_applied, 1);
        // The split and the heal each force at least one reformation.
        assert!(report.views_installed >= 2, "seed {seed}: no partition/merge views");
    }
}

/// The heavy-pipeline scenario is still deterministic: same scenario,
/// same digest.
#[test]
fn pipelined_partition_replay_is_deterministic() {
    let sc = pipelined_partition_scenario(5);
    let a = run(&sc);
    let b = run(&sc);
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.frames_sent, b.frames_sent);
    assert_eq!(a.violations, b.violations);
}
