//! The hostile-network corpus as a CI gate: every regime runs under
//! both detector policies, the acceptance comparison holds (adaptive
//! strictly fewer view changes on the pure-timing regimes, zero checker
//! or monitor violations everywhere), replay is bit-for-bit
//! deterministic at any worker count, and the committed scenario
//! fixtures in `tests/corpus/` stay in lockstep with the builders.

use gcs_harness::par_seeds_with;
use gcs_sim::{build_hostile, run, run_pair, HostileKind, Scenario};

/// Every corpus entry at the smoke seed passes the full acceptance
/// gate: zero violations under both policies, and strictly fewer view
/// changes under the adaptive detector on the strict (flap/bimodal)
/// kinds.
#[test]
fn corpus_passes_the_acceptance_gate() {
    for kind in HostileKind::ALL {
        let o = run_pair(kind, 0);
        assert!(
            o.pass(),
            "{} seed 0 failed: views fixed={} adaptive={}, violations {:?}",
            kind.name(),
            o.fixed.views_installed,
            o.adaptive.views_installed,
            o.violations().first(),
        );
    }
}

/// The flap regime is the detector's headline: fixed timeouts reform on
/// every down cycle while the warm accrual estimator rides the whole
/// storm out, and availability does not regress.
#[test]
fn flap_adaptive_rides_out_what_fixed_thrashes_on() {
    let o = run_pair(HostileKind::Flap, 0);
    assert!(o.fixed.views_installed >= 10, "fixed should thrash: {}", o.fixed.views_installed);
    assert!(
        o.adaptive.views_installed * 5 <= o.fixed.views_installed,
        "adaptive {} vs fixed {}: expected at least a 5x reduction",
        o.adaptive.views_installed,
        o.fixed.views_installed
    );
    assert!(o.adaptive.delivered_during_disturbance >= o.fixed.delivered_during_disturbance);
}

/// Seed-reproducibility audit: hostile runs — both policies — produce
/// identical digests at any worker count. The corpus perturbs delivery
/// schedules through the seeded RNG only, so the fan-out layer must not
/// introduce any nondeterminism.
#[test]
fn hostile_digests_are_invariant_under_worker_count() {
    let seeds: Vec<u64> = (0..4).collect();
    for kind in [HostileKind::Flap, HostileKind::Bimodal, HostileKind::SplitStorm] {
        for adaptive in [false, true] {
            let one = par_seeds_with(&seeds, 1, |s| run(&build_hostile(kind, s, adaptive)).digest);
            let eight =
                par_seeds_with(&seeds, 8, |s| run(&build_hostile(kind, s, adaptive)).digest);
            assert_eq!(one, eight, "{} adaptive={adaptive}", kind.name());
        }
    }
}

/// The same corpus entry replays bit-for-bit under both policies:
/// equal digests, violation sets, and frame counts across runs.
#[test]
fn hostile_replay_is_bit_for_bit_deterministic() {
    for adaptive in [false, true] {
        let sc = build_hostile(HostileKind::Churn, 1, adaptive);
        let a = run(&sc);
        let b = run(&sc);
        assert_eq!(a.digest, b.digest, "adaptive={adaptive}");
        assert_eq!(a.frames_sent, b.frames_sent);
        assert_eq!(a.violations, b.violations);
    }
}

/// The committed fixture artifacts replay clean under both policies and
/// match the builders byte-for-byte — a drifted builder or a bitrotted
/// fixture fails here, not in a nightly sweep.
#[test]
fn corpus_fixtures_replay_clean_and_match_builders() {
    for kind in [HostileKind::Flap, HostileKind::AsymSlow, HostileKind::Bimodal] {
        let path = format!("{}/tests/corpus/{}.scenario", env!("CARGO_MANIFEST_DIR"), kind.name());
        let text = std::fs::read_to_string(&path).expect("fixture exists");
        assert_eq!(
            text,
            build_hostile(kind, 0, false).render(),
            "{path} drifted from the builder; regenerate it"
        );

        let fixed = Scenario::parse(&text).expect("fixture parses");
        let report = run(&fixed);
        assert!(report.ok(), "{path} (fixed): {:?}", report.violations.first());

        let mut adaptive = fixed.clone();
        adaptive.config.adaptive_detector = true;
        let report = run(&adaptive);
        assert!(report.ok(), "{path} (adaptive): {:?}", report.violations.first());
    }
}

/// Availability accounting sanity: the disturbance metrics the corpus
/// gate reads are populated — every hostile run has a nonzero disturbed
/// span, and deliveries during disturbance never exceed total
/// deliveries.
#[test]
fn disturbance_accounting_is_populated() {
    for kind in HostileKind::ALL {
        let r = run(&build_hostile(kind, 0, true));
        assert!(r.disturbed_ms > 0, "{}: no disturbed span recorded", kind.name());
        assert!(
            r.delivered_during_disturbance <= r.delivered,
            "{}: {} delivered during disturbance out of {} total",
            kind.name(),
            r.delivered_during_disturbance,
            r.delivered
        );
    }
}
