//! Smoke, determinism, and monitor-boundary tests for the simulation
//! harness — every run drives the real `gcs-net` node runtime through
//! the full checker battery (VS/TO conformance, b/d bound monitors,
//! convergence).

use gcs_harness::par_seeds_with;
use gcs_sim::world::run_traced;
use gcs_sim::{run, FaultOp, Scenario, ScheduledFault, SimConfig};

fn config(seed: u64) -> SimConfig {
    SimConfig { seed, ..SimConfig::default() }
}

/// A spread of seeded schedules passes every checker: the paper's
/// safety specifications, the Section 8 bound monitors, and post-settle
/// convergence.
#[test]
fn seeded_schedules_pass_all_checkers() {
    for seed in 0..10 {
        let report = run(&Scenario::generate(&config(seed)));
        assert!(report.ok(), "seed {seed} failed: {:?}", report.violations.first());
        assert_eq!(report.delivered, 40, "seed {seed} lost submissions");
        assert!(report.faults_applied > 0, "seed {seed} scheduled no faults");
    }
}

/// The same scenario replays bit-for-bit: equal digests, equal
/// violation sets, equal frame counts.
#[test]
fn replay_is_bit_for_bit_deterministic() {
    let sc = Scenario::generate(&config(7));
    let a = run(&sc);
    let b = run(&sc);
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.frames_sent, b.frames_sent);
    assert_eq!(a.events, b.events);
    assert_eq!(a.violations, b.violations);
}

/// Digests are identical at any worker count: the fan-out layer only
/// schedules runs, it never perturbs them.
#[test]
fn digests_are_invariant_under_worker_count() {
    let seeds: Vec<u64> = (0..6).collect();
    let one = par_seeds_with(&seeds, 1, |s| run(&Scenario::generate(&config(s))));
    let eight = par_seeds_with(&seeds, 8, |s| run(&Scenario::generate(&config(s))));
    let d1: Vec<u64> = one.iter().map(|r| r.digest).collect();
    let d8: Vec<u64> = eight.iter().map(|r| r.digest).collect();
    assert_eq!(d1, d8);
}

/// The false-positive guard for the bound monitors (Theorems 8.1/8.2):
/// a clean run in which *every* frame takes exactly the configured
/// good-channel delay δ — the worst case the bounds are derived for —
/// must not trip either monitor. A monitor that fires here has its
/// deadline arithmetic wrong by at least one δ.
#[test]
fn boundary_delay_run_is_monitor_clean() {
    let cfg = SimConfig { seed: 1, fixed_delay: true, fault_budget: 0, ..SimConfig::default() };
    let report = run(&Scenario::generate(&cfg));
    assert!(report.ok(), "monitor fired on a clean boundary-delay run: {:?}", report.violations);
    assert_eq!(report.faults_applied, 0);
    assert_eq!(report.delivered, 40);
}

/// Same guard under faults: boundary delay plus a fault schedule still
/// passes, because the monitors excuse exactly the disturbed windows.
#[test]
fn boundary_delay_with_faults_is_monitor_clean() {
    let cfg = SimConfig { seed: 3, fixed_delay: true, ..SimConfig::default() };
    let report = run(&Scenario::generate(&cfg));
    assert!(report.ok(), "{:?}", report.violations.first());
    assert!(report.faults_applied > 0);
}

/// A hand-written scenario exercises every fault-operation kind in one
/// run and still converges.
#[test]
fn all_fault_kinds_in_one_run() {
    let cfg = config(11);
    let mut sc = Scenario::generate(&cfg);
    sc.faults = vec![
        ScheduledFault {
            at: 300,
            op: FaultOp::Split { groups: vec![vec![0, 1, 2], vec![3, 4]], dur_ms: 400 },
        },
        ScheduledFault { at: 900, op: FaultOp::SeverPair { p: 0, q: 1, dur_ms: 30 } },
        ScheduledFault { at: 1200, op: FaultOp::SeverOneWay { p: 2, q: 3, dur_ms: 20 } },
        ScheduledFault { at: 1500, op: FaultOp::Kick { p: 1, q: 4 } },
        ScheduledFault { at: 1900, op: FaultOp::Crash { p: 4, down_ms: 350 } },
        ScheduledFault { at: 2900, op: FaultOp::Stall { p: 2, dur_ms: 60 } },
        ScheduledFault { at: 3300, op: FaultOp::Dup { p: 0, q: 1 } },
    ];
    let report = run(&sc);
    assert!(report.ok(), "{:?}", report.violations.first());
    assert_eq!(report.faults_applied, 7);
}

/// The traced variant returns the observability stream the monitors
/// consumed: fault events appear for every scheduled operation and view
/// changes for every reformation.
#[test]
fn traced_run_exposes_fault_and_view_events() {
    use gcs_obs::EventKind;
    let sc = Scenario::generate(&config(2));
    let (report, events) = run_traced(&sc);
    assert!(report.ok(), "{:?}", report.violations.first());
    let faults = events.iter().filter(|e| matches!(e.kind, EventKind::Fault { .. })).count();
    let views = events.iter().filter(|e| matches!(e.kind, EventKind::ViewChange { .. })).count();
    assert!(faults >= report.faults_applied, "faults missing from trace");
    assert_eq!(views, report.views_installed);
}
