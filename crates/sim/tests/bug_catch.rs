//! End-to-end proof that the harness has teeth: with the `bug-hook`
//! feature, `Dup` operations deliver a duplicated token whose
//! per-member receipt counts are fabricated (every member "has"
//! everything), so receivers issue `safe` indications the VS
//! specification does not enable. The checkers must catch it, the
//! shrinker must reduce the schedule to a handful of operations, and
//! the minimized scenario must replay to the same failure.
//!
//! Run with: `cargo test -p gcs-sim --features bug-hook --test bug_catch`

use gcs_sim::{run, shrink, Scenario, SimConfig};

fn bugged(seed: u64) -> SimConfig {
    SimConfig { seed, bug_dup_token: true, ..SimConfig::default() }
}

#[test]
fn injected_ack_fabrication_is_caught_and_shrunk() {
    // The bug needs a Dup operation to land while the token carries
    // undelivered messages, so not every seed triggers it; scan a band.
    let mut failing = None;
    for seed in 0..40 {
        let sc = Scenario::generate(&bugged(seed));
        let report = run(&sc);
        if !report.ok() {
            failing = Some((sc, report));
            break;
        }
    }
    let (sc, report) = failing.expect("injected bug never fired in 40 seeds");

    // The failure is a *safety* finding from the spec checkers, not a
    // timing-monitor artifact.
    assert!(
        report.violations.iter().any(|v| !v.starts_with("monitor")),
        "only monitor findings: {:?}",
        report.violations
    );

    // The shrinker minimizes the schedule and the result still fails.
    let result = shrink(&sc).expect("failing scenario must stay failing under shrink(identity)");
    assert!(
        result.scenario.faults.len() <= 25,
        "shrunk schedule still has {} fault ops",
        result.scenario.faults.len()
    );
    assert!(result.scenario.faults.len() <= sc.faults.len());
    assert!(!result.report.ok());

    // The minimized scenario survives a render/parse round trip and
    // replays to a failure — the artifact a user gets on disk is
    // sufficient to reproduce.
    let replayed = Scenario::parse(&result.scenario.render()).expect("rendered scenario parses");
    assert_eq!(replayed, result.scenario);
    let again = run(&replayed);
    assert!(!again.ok(), "minimized scenario no longer fails on replay");
    assert_eq!(again.digest, result.report.digest, "replay diverged from shrink result");
}

/// The hook is inert without the config flag even when compiled in:
/// the same seeds stay green.
#[test]
fn bug_hook_requires_opt_in() {
    for seed in 0..5 {
        let report = run(&Scenario::generate(&SimConfig { seed, ..SimConfig::default() }));
        assert!(report.ok(), "seed {seed}: {:?}", report.violations.first());
    }
}
