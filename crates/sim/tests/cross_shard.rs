//! Cross-shard simulation scenarios: multiple overlapping VS/TO group
//! instances over one node set, driven through the deterministic world
//! by projection (see `gcs_sim::shard`), with the per-key key-value
//! consistency check layered on top and bit-for-bit digest stability
//! across repeat runs.

use gcs_sim::shard::{crash_shared_host, partition_one_group, run_shard};

#[test]
fn partition_one_group_while_the_others_serve() {
    let sc = partition_one_group(11, 800);
    let r = run_shard(&sc);
    assert!(r.ok(), "violations: {:?}", r.violations());

    // Only group 0 contains both endpoints of the severed pairs; the
    // other three groups must have seen no fault at all.
    assert_eq!(r.per_group[0].faults_applied, 2, "group 0 takes both severs");
    for g in 1..4 {
        assert_eq!(r.per_group[g].faults_applied, 0, "group {g} must be undisturbed");
    }
    // Every group — including the partitioned one after its heal —
    // delivered its full workload.
    for (g, rep) in r.per_group.iter().enumerate() {
        assert_eq!(rep.delivered, sc.submits_per_group as usize, "group {g} deliveries");
    }

    // The cross-shard run is deterministic: same scenario, same digest.
    let again = run_shard(&sc);
    assert_eq!(r.digest, again.digest, "cross-shard digest must be reproducible");
}

#[test]
fn crash_a_node_hosting_three_groups() {
    let sc = crash_shared_host(5, 500);
    let r = run_shard(&sc);
    assert!(r.ok(), "violations: {:?}", r.violations());

    // Node 2 sits in groups 0, 1, and 2 — each of those takes the
    // crash; group 3 = {3, 4, 0} never notices.
    for g in 0..3 {
        assert_eq!(r.per_group[g].faults_applied, 1, "group {g} hosts the crashed node");
    }
    assert_eq!(r.per_group[3].faults_applied, 0, "group 3 must be undisturbed");

    let again = run_shard(&sc);
    assert_eq!(r.digest, again.digest, "cross-shard digest must be reproducible");
}
