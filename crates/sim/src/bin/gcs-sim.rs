//! `gcs-sim` — drive the deterministic simulation harness.
//!
//! ```text
//! gcs-sim run --seeds 200 [--workers W] [--n 5] [--delta 10]
//!             [--duration 5000] [--submits 40] [--faults 6]
//!             [--queue 256] [--fixed-delay] [--out DIR]
//! gcs-sim run --seed 42 --verbose
//! gcs-sim replay scenario.txt [--verbose]
//! ```
//!
//! `run --seeds N` fans N seeded scenarios out over a worker pool
//! (deterministic results at any worker count) and prints one digest
//! line per seed. On the first failing seed it minimizes the fault
//! schedule and writes a replayable scenario artifact.
//!
//! ```text
//! gcs-sim hostile [--seeds N] [--workers W] [--kinds flap,bimodal,...] [--verbose]
//! ```
//!
//! `hostile` runs the hostile-network corpus: every (kind, seed) entry
//! under **both** detector policies, printing view-change and
//! availability comparisons, and failing if any run violates a checker
//! or monitor — or if the adaptive detector does not hold membership
//! strictly more stable than fixed timeouts on the flapping/bimodal
//! regimes.

use gcs_harness::par_seeds_with;
use gcs_sim::{hostile, shrink, world, HostileKind, Scenario, SimConfig};
use std::process::ExitCode;

struct Args {
    seeds: u64,
    seed: Option<u64>,
    workers: usize,
    verbose: bool,
    out_dir: String,
    config: SimConfig,
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: gcs-sim run [--seeds N | --seed X] [--workers W] [--n N] [--delta MS]\n\
         \u{20}                  [--duration MS] [--submits K] [--faults F] [--queue Q]\n\
         \u{20}                  [--fixed-delay] [--verbose] [--out DIR]\n\
         \u{20}      gcs-sim hostile [--seeds N] [--workers W] [--kinds a,b,..] [--verbose]\n\
         \u{20}      gcs-sim replay FILE [--verbose]"
    );
    ExitCode::from(2)
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        seeds: 10,
        seed: None,
        workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
        verbose: false,
        out_dir: ".".to_string(),
        config: SimConfig::default(),
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().map(|s| s.as_str()).ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--seeds" => args.seeds = num(val("--seeds")?)?,
            "--seed" => args.seed = Some(num(val("--seed")?)?),
            "--workers" => args.workers = num(val("--workers")?)? as usize,
            "--n" => args.config.n = num(val("--n")?)? as u32,
            "--delta" => args.config.delta_ms = num(val("--delta")?)?,
            "--duration" => args.config.active_ms = num(val("--duration")?)?,
            "--submits" => args.config.submits = num(val("--submits")?)? as u32,
            "--faults" => args.config.fault_budget = num(val("--faults")?)? as u32,
            "--queue" => args.config.send_queue = num(val("--queue")?)? as usize,
            "--fixed-delay" => args.config.fixed_delay = true,
            "--verbose" => args.verbose = true,
            "--out" => args.out_dir = val("--out")?.to_string(),
            #[cfg(feature = "bug-hook")]
            "--bug-dup-token" => args.config.bug_dup_token = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn num(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("not a number: {s}"))
}

fn print_report(r: &world::RunReport, verbose: bool) {
    println!(
        "seed {:>6}  digest {:016x}  events {:>6}  frames {:>6} (-{})  views {:>3}  \
         delivered {:>4}  faults {}  {}",
        r.seed,
        r.digest,
        r.events,
        r.frames_sent,
        r.frames_dropped,
        r.views_installed,
        r.delivered,
        r.faults_applied,
        if r.ok() { "ok" } else { "FAIL" },
    );
    if verbose || !r.ok() {
        for v in &r.violations {
            println!("  violation: {v}");
        }
    }
}

fn run_one(sc: &Scenario, verbose: bool) -> ExitCode {
    if verbose {
        print!("{}", sc.render());
    }
    let (report, events) = world::run_traced(sc);
    if verbose {
        use gcs_obs::EventKind;
        for e in &events {
            match &e.kind {
                EventKind::Fault { node, peer, kind } => {
                    println!("t={:>6}  fault {kind:?} node={node} peer={peer}", e.t_ms);
                }
                EventKind::ViewChange { node, epoch, size } => {
                    println!("t={:>6}  view epoch={epoch} size={size} at node {node}", e.t_ms);
                }
                _ => {}
            }
        }
    }
    print_report(&report, verbose);
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn shrink_and_dump(sc: &Scenario, out_dir: &str) {
    let Some(result) = shrink::shrink(sc) else {
        println!("shrink: scenario no longer fails?");
        return;
    };
    println!(
        "shrink: {} fault ops -> {} in {} replays",
        result.original_ops,
        result.scenario.faults.len(),
        result.replays
    );
    let path = format!("{}/gcs-sim-seed{}.scenario", out_dir, sc.config.seed);
    let text = result.scenario.render();
    match std::fs::write(&path, &text) {
        Ok(()) => println!("shrink: wrote replayable scenario to {path}"),
        Err(e) => println!("shrink: could not write {path}: {e}"),
    }
    println!("--- minimized scenario (replay with: gcs-sim replay {path}) ---");
    print!("{text}");
    for v in &result.report.violations {
        println!("violation: {v}");
    }
}

fn cmd_run(args: &Args) -> ExitCode {
    if let Some(seed) = args.seed {
        let config = SimConfig { seed, ..args.config.clone() };
        let sc = Scenario::generate(&config);
        let code = run_one(&sc, args.verbose);
        if code != ExitCode::SUCCESS {
            shrink_and_dump(&sc, &args.out_dir);
        }
        return code;
    }
    let seeds: Vec<u64> = (0..args.seeds).collect();
    let base = args.config.clone();
    let reports = par_seeds_with(&seeds, args.workers, |seed| {
        world::run(&Scenario::generate(&SimConfig { seed, ..base.clone() }))
    });
    let mut failed = Vec::new();
    let (mut frames, mut faults, mut events) = (0u64, 0usize, 0usize);
    for r in &reports {
        print_report(r, args.verbose);
        frames += r.frames_sent;
        faults += r.faults_applied;
        events += r.events;
        if !r.ok() {
            failed.push(r.seed);
        }
    }
    println!(
        "ran {} seeds ({} workers): {} frames, {} fault ops, {} trace events, {} failing",
        reports.len(),
        args.workers,
        frames,
        faults,
        events,
        failed.len()
    );
    if let Some(&seed) = failed.first() {
        println!("minimizing first failing seed {seed}");
        let sc = Scenario::generate(&SimConfig { seed, ..args.config.clone() });
        shrink_and_dump(&sc, &args.out_dir);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

struct HostileArgs {
    seeds: u64,
    workers: usize,
    kinds: Vec<HostileKind>,
    verbose: bool,
}

fn parse_hostile_args(argv: &[String]) -> Result<HostileArgs, String> {
    let mut args = HostileArgs {
        seeds: 10,
        workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
        kinds: HostileKind::ALL.to_vec(),
        verbose: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().map(|s| s.as_str()).ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--seeds" => args.seeds = num(val("--seeds")?)?,
            "--workers" => args.workers = num(val("--workers")?)? as usize,
            "--kinds" => {
                args.kinds = val("--kinds")?
                    .split(',')
                    .map(|s| {
                        HostileKind::from_name(s.trim())
                            .ok_or_else(|| format!("unknown hostile kind {s:?}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--verbose" => args.verbose = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn cmd_hostile(args: &HostileArgs) -> ExitCode {
    let seeds: Vec<u64> = (0..args.seeds).collect();
    let mut failing = 0usize;
    for &kind in &args.kinds {
        let outcomes = par_seeds_with(&seeds, args.workers, |seed| hostile::run_pair(kind, seed));
        let (mut fixed_views, mut adaptive_views) = (0usize, 0usize);
        let (mut fixed_avail, mut adaptive_avail) = (0usize, 0usize);
        for o in &outcomes {
            fixed_views += o.fixed.views_installed;
            adaptive_views += o.adaptive.views_installed;
            fixed_avail += o.fixed.delivered_during_disturbance;
            adaptive_avail += o.adaptive.delivered_during_disturbance;
            let pass = o.pass();
            if args.verbose || !pass {
                println!(
                    "{:<11} seed {:>4}  views fixed={:>3} adaptive={:>3}  \
                     avail fixed={:>3} adaptive={:>3}  {}",
                    kind.name(),
                    o.seed,
                    o.fixed.views_installed,
                    o.adaptive.views_installed,
                    o.fixed.delivered_during_disturbance,
                    o.adaptive.delivered_during_disturbance,
                    if pass { "ok" } else { "FAIL" },
                );
            }
            if !pass {
                failing += 1;
                for v in o.violations() {
                    println!("  violation: {v}");
                }
                if o.fixed.ok()
                    && o.adaptive.ok()
                    && kind.strict()
                    && o.adaptive.views_installed >= o.fixed.views_installed
                {
                    println!(
                        "  gate: adaptive installed {} views, fixed {} — not strictly fewer",
                        o.adaptive.views_installed, o.fixed.views_installed
                    );
                }
            }
        }
        println!(
            "{:<11} {} seeds: views fixed={} adaptive={}  avail fixed={} adaptive={}{}",
            kind.name(),
            outcomes.len(),
            fixed_views,
            adaptive_views,
            fixed_avail,
            adaptive_avail,
            if kind.strict() { "  [strict]" } else { "" },
        );
    }
    if failing > 0 {
        println!("hostile corpus: {failing} failing entries");
        return ExitCode::FAILURE;
    }
    println!("hostile corpus: all entries passed");
    ExitCode::SUCCESS
}

fn cmd_replay(path: &str, verbose: bool) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match Scenario::parse(&text) {
        Ok(sc) => run_one(&sc, verbose),
        Err(e) => {
            eprintln!("error: {path}: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(|s| s.as_str()) {
        Some("run") => match parse_args(&argv[1..]) {
            Ok(args) => cmd_run(&args),
            Err(e) => usage(&e),
        },
        Some("hostile") => match parse_hostile_args(&argv[1..]) {
            Ok(args) => cmd_hostile(&args),
            Err(e) => usage(&e),
        },
        Some("replay") => {
            let Some(path) = argv.get(1) else {
                return usage("replay needs a scenario file");
            };
            let verbose = argv.iter().any(|a| a == "--verbose");
            cmd_replay(path, verbose)
        }
        _ => usage("expected a subcommand: run | hostile | replay"),
    }
}
