//! The hostile-network scenario corpus: the regimes where fixed δ/π
//! timeouts thrash views and an adaptive detector should hold
//! membership stable.
//!
//! Each [`HostileKind`] compiles to an explicit [`Scenario`] (no random
//! generation at run time — the corpus is parameterized by seed only
//! through frame-delay/jitter streams), and [`run_pair`] executes the
//! *same* scenario under both detector policies so view-change rate and
//! availability can be compared like-for-like:
//!
//! - **Flap** — a ring-adjacent link oscillates with a down period just
//!   past the fixed detection threshold. Fixed timeouts reform on every
//!   cycle; the accrual detector reforms once, feeds the censored
//!   silence back into its window, and rides out the rest.
//! - **AsymSlow** — one direction of a ring hop is stretched far past δ
//!   while the reverse stays fast. No frame is lost; fixed timeouts
//!   still fire because silence (not loss) is what they measure.
//! - **Bimodal** — WAN-like delays cluster-wide: most frames are fast,
//!   a fraction take tens of δ. The estimator absorbs the distribution's
//!   tail directly; fixed timeouts sit below the slow mode and thrash.
//! - **SplitStorm** — repeated full partitions and merges. Both
//!   policies *must* reform here (the membership changes are real); the
//!   corpus checks stability of the checkers and monitors, not view
//!   counts.
//! - **Churn** — a 50-node group with rolling crash/restarts: the scale
//!   stress for detector state and formation traffic.
//!
//! Scenario shape invariants the corpus maintains:
//!
//! - a warm-up phase (≥ 8 token periods) precedes the first fault, so
//!   the accrual estimator is past cold start when hostility begins;
//! - during link-level hostility, submits aim at the ring leader and
//!   are spaced widely enough that the launch pipeline keeps producing
//!   fresh rounds — a returning round drains the rounds lost to a flap
//!   and triggers floor retransmission, so the group heals holes
//!   without reformation;
//! - every fault is self-compensating, so the standard settle-phase
//!   convergence check applies unchanged.

use crate::scenario::{FaultOp, Scenario, ScheduledFault, ScheduledSubmit, SimConfig};
use crate::world::{run, RunReport};
use gcs_model::Time;

/// One hostile regime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostileKind {
    /// Link flapping at the detection threshold.
    Flap,
    /// Asymmetric one-way slowdown.
    AsymSlow,
    /// WAN-like bimodal delay distribution.
    Bimodal,
    /// Repeated merge/split storms.
    SplitStorm,
    /// 50-node crash/restart churn.
    Churn,
}

impl HostileKind {
    /// Every corpus kind, in canonical order.
    pub const ALL: [HostileKind; 5] = [
        HostileKind::Flap,
        HostileKind::AsymSlow,
        HostileKind::Bimodal,
        HostileKind::SplitStorm,
        HostileKind::Churn,
    ];

    /// Stable name (used in reports and artifact file names).
    pub fn name(&self) -> &'static str {
        match self {
            HostileKind::Flap => "flap",
            HostileKind::AsymSlow => "asym-slow",
            HostileKind::Bimodal => "bimodal",
            HostileKind::SplitStorm => "split-storm",
            HostileKind::Churn => "churn",
        }
    }

    /// Parses a kind name as printed by [`HostileKind::name`].
    pub fn from_name(s: &str) -> Option<HostileKind> {
        HostileKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Whether the acceptance gate demands *strictly* fewer view
    /// changes under the adaptive policy on this kind. Split storms and
    /// churn involve real membership changes both policies must react
    /// to, so only the pure-timing regimes are gated strictly.
    pub fn strict(&self) -> bool {
        matches!(self, HostileKind::Flap | HostileKind::Bimodal)
    }
}

/// The standard 5-node timing the link-level scenarios use: δ = 10 →
/// π = 100, fixed token deadline 180 + id stagger.
fn base_config(seed: u64) -> SimConfig {
    SimConfig {
        n: 5,
        delta_ms: 10,
        active_ms: 4_000,
        submits: 0, // filled in by the builder
        fault_budget: 0,
        send_queue: 256,
        seed,
        fixed_delay: false,
        bug_dup_token: false,
        adaptive_detector: false,
    }
}

/// Leader-aimed submits spaced `gap` apart starting at `from`: wide
/// enough that the pipeline never saturates with all-lost rounds, and
/// aimed at node 0 (the ring leader) so each submit forces a fresh
/// launch that drains rounds lost to a link window.
fn leader_submits(from: Time, gap: Time, count: u32) -> Vec<ScheduledSubmit> {
    (0..count)
        .map(|i| ScheduledSubmit { at: from + gap * i as Time, node: 0, value: i as u64 + 1 })
        .collect()
}

/// Round-robin submits over all nodes, for the whole-cluster regimes.
fn spread_submits(n: u32, from: Time, gap: Time, count: u32) -> Vec<ScheduledSubmit> {
    (0..count)
        .map(|i| ScheduledSubmit { at: from + gap * i as Time, node: i % n, value: i as u64 + 1 })
        .collect()
}

/// Round-robin submits over the *surviving* nodes only. A value
/// submitted at a node that crashes before broadcasting it dies with
/// the volatile state (the same reason `Scenario::generate` steers
/// submits away from crash windows), so the churn schedule must never
/// aim at a future victim.
fn survivor_submits(
    n: u32,
    victims: &[u32],
    from: Time,
    gap: Time,
    count: u32,
) -> Vec<ScheduledSubmit> {
    let survivors: Vec<u32> = (0..n).filter(|p| !victims.contains(p)).collect();
    (0..count)
        .map(|i| ScheduledSubmit {
            at: from + gap * i as Time,
            node: survivors[i as usize % survivors.len()],
            value: i as u64 + 1,
        })
        .collect()
}

/// Builds the corpus scenario for `kind` and `seed` under the given
/// detector policy. The schedule is identical for both policies (only
/// the `adaptive_detector` flag and the settle phase differ), so view
/// counts compare like-for-like.
pub fn build(kind: HostileKind, seed: u64, adaptive: bool) -> Scenario {
    let mut sc = match kind {
        HostileKind::Flap => {
            // Ring hop 1→2 flaps: down 220 ms (past every node's fixed
            // deadline of 180–184 ms), up 220 ms, five cycles starting
            // after a 900 ms warm-up.
            let mut config = base_config(seed);
            let submits = leader_submits(100, 150, 24);
            config.submits = submits.len() as u32;
            let faults = vec![ScheduledFault {
                at: 900,
                op: FaultOp::Flap { p: 1, q: 2, period_ms: 220, count: 5 },
            }];
            Scenario { config, submits, faults }
        }
        HostileKind::AsymSlow => {
            // The 1→2 direction stretches to 22δ = 220 ms for 1.6 s;
            // 2→1 stays at δ. Nothing is dropped, yet every fixed
            // deadline fires repeatedly inside the window.
            let mut config = base_config(seed);
            let submits = leader_submits(100, 150, 24);
            config.submits = submits.len() as u32;
            let faults = vec![ScheduledFault {
                at: 900,
                op: FaultOp::SlowOneWay { p: 1, q: 2, factor: 22, dur_ms: 1_600 },
            }];
            Scenario { config, submits, faults }
        }
        HostileKind::Bimodal => {
            // Cluster-wide WAN mode for 1.6 s: 20% of frames take 18δ.
            // One slow hop (180 ms) already pushes a token gap past
            // every fixed deadline (180–184 ms), so fixed thrashes; the
            // factor stays low enough that even an all-slow round
            // (5 × 180 ≈ 900 ms) fits inside the adaptive cap
            // (6 × 180 = 1080 ms), so a warmed-and-widened estimator
            // can always ride the whole window out.
            let mut config = base_config(seed);
            let submits = leader_submits(100, 150, 24);
            config.submits = submits.len() as u32;
            let faults = vec![ScheduledFault {
                at: 900,
                op: FaultOp::Bimodal { prob_pct: 20, factor: 18, dur_ms: 1_600 },
            }];
            Scenario { config, submits, faults }
        }
        HostileKind::SplitStorm => {
            // Three full partition/merge cycles with alternating
            // components, each held long enough (≥ b = 490 ms) for the
            // subgroups to stabilize before the merge.
            let mut config = base_config(seed);
            config.active_ms = 4_500;
            let submits = spread_submits(config.n, 100, 160, 24);
            config.submits = submits.len() as u32;
            let faults = vec![
                ScheduledFault {
                    at: 900,
                    op: FaultOp::Split { groups: vec![vec![0, 1, 2], vec![3, 4]], dur_ms: 700 },
                },
                ScheduledFault {
                    at: 2_300,
                    op: FaultOp::Split { groups: vec![vec![0, 3], vec![1, 2, 4]], dur_ms: 700 },
                },
                ScheduledFault {
                    at: 3_700,
                    op: FaultOp::Split { groups: vec![vec![0, 4], vec![1, 2, 3]], dur_ms: 700 },
                },
            ];
            Scenario { config, submits, faults }
        }
        HostileKind::Churn => {
            // 50 nodes, δ = 5 (π = 500): six rolling crash/restarts
            // staggered through the active window.
            let mut config = base_config(seed);
            config.n = 50;
            config.delta_ms = 5;
            config.active_ms = 5_000;
            // Distinct victims, spread across the id space, and never
            // node 0 (keeping the ring leader up keeps token cadence
            // observable for the estimator).
            let victims: Vec<u32> = (0..6u32).map(|i| 1 + i * 8).collect();
            let submits = survivor_submits(config.n, &victims, 200, 220, 20);
            config.submits = submits.len() as u32;
            let faults = victims
                .iter()
                .enumerate()
                .map(|(i, &p)| ScheduledFault {
                    // Warm-up is longer here: π = 500, so the accrual
                    // window needs ~2.5 s of quiet to pass cold start.
                    at: 2_600 + 600 * i as Time,
                    op: FaultOp::Crash { p, down_ms: 1_200 },
                })
                .collect();
            Scenario { config, submits, faults }
        }
    };
    sc.config.fault_budget = sc.faults.len() as u32;
    sc.config.adaptive_detector = adaptive;
    sc
}

/// The outcome of one corpus entry run under both policies.
#[derive(Clone, Debug)]
pub struct HostileOutcome {
    /// Which regime.
    pub kind: HostileKind,
    /// The seed (perturbs frame delays, not the schedule).
    pub seed: u64,
    /// The fixed-timeout run.
    pub fixed: RunReport,
    /// The adaptive-detector run.
    pub adaptive: RunReport,
}

impl HostileOutcome {
    /// All violations across both runs, labeled by policy.
    pub fn violations(&self) -> Vec<String> {
        let mut out: Vec<String> =
            self.fixed.violations.iter().map(|v| format!("fixed: {v}")).collect();
        out.extend(self.adaptive.violations.iter().map(|v| format!("adaptive: {v}")));
        out
    }

    /// Whether this entry passes the acceptance gate: zero violations
    /// under both policies, and — on the strict kinds — strictly fewer
    /// view changes under the adaptive detector.
    pub fn pass(&self) -> bool {
        self.fixed.ok()
            && self.adaptive.ok()
            && (!self.kind.strict() || self.adaptive.views_installed < self.fixed.views_installed)
    }
}

/// Runs `kind` at `seed` under both detector policies.
pub fn run_pair(kind: HostileKind, seed: u64) -> HostileOutcome {
    let fixed = run(&build(kind, seed, false));
    let adaptive = run(&build(kind, seed, true));
    HostileOutcome { kind, seed, fixed, adaptive }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_scenarios_render_and_parse() {
        for kind in HostileKind::ALL {
            for adaptive in [false, true] {
                let sc = build(kind, 3, adaptive);
                let back = Scenario::parse(&sc.render()).expect("parse rendered corpus scenario");
                assert_eq!(sc, back, "{} adaptive={adaptive}", kind.name());
            }
        }
    }

    #[test]
    fn corpus_schedules_are_policy_invariant() {
        // Only the detector flag may differ between the two runs of a
        // pair — same submits, same faults, same seed.
        for kind in HostileKind::ALL {
            let a = build(kind, 9, false);
            let mut b = build(kind, 9, true);
            assert!(b.config.adaptive_detector);
            b.config.adaptive_detector = false;
            assert_eq!(a, b, "{}", kind.name());
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in HostileKind::ALL {
            assert_eq!(HostileKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(HostileKind::from_name("nope"), None);
    }

    #[test]
    fn warmup_precedes_first_fault() {
        // At least five token periods of quiet before hostility starts,
        // so the accrual estimator (min_samples = 4) is past cold start.
        for kind in HostileKind::ALL {
            let sc = build(kind, 0, true);
            let pi = 2 * sc.config.n as Time * sc.config.delta_ms;
            let first = sc.faults.iter().map(|f| f.at).min().unwrap_or(0);
            assert!(first >= 5 * pi, "{}: first fault at {first}", kind.name());
        }
    }
}
