//! The deterministic simulation world: the *real* `gcs-net` node runtime
//! ([`NodeCore`], hosting the unchanged `VsNode<TimedVsToTo>` protocol
//! stack) driven over an in-process transport with a virtual clock.
//!
//! One run is one single-threaded discrete-event loop. Every frame a
//! node sends is round-tripped through the real wire codec, assigned a
//! seeded delay of at most δ (so the paper's good-channel timing
//! assumption holds by construction), and delivered in per-link FIFO
//! order — the contract TCP gives the deployed transport. The fault
//! scheduler perturbs everything *around* that contract: component
//! partitions, short symmetric and asymmetric link mutes, killed
//! in-flight frames, node crash/restart with volatile-state loss, and
//! slow-consumer stalls that push back through the bounded link queues.
//!
//! After the horizon, the merged recording is fed to the `gcs-core`
//! VS/TO safety checkers ([`gcs_core::check_conformance`]) and the
//! shared observability stream to the `gcs-obs` b/d bound monitors; a
//! convergence check asserts every submitted value was delivered in one
//! agreed order once the schedule's disturbances are compensated.
//!
//! Determinism: one run = one thread, one manual [`Clock`], one seeded
//! [`ChaCha8Rng`]; the event heap breaks time ties by insertion
//! sequence; all shared state lives in ordered containers. The same
//! scenario therefore produces bit-identical reports on any machine and
//! under any `par_seeds` worker count.

use crate::scenario::{FaultOp, Scenario, SimConfig};
use gcs_core::check_conformance;
use gcs_model::{ProcId, Time, Value};
use gcs_net::{
    decode_payload, encode_payload, Clock, Frame, Incoming, NodeCore, Recorded, Transport,
};
use gcs_obs::{
    BoundParams, DropReason, EventKind, FaultKind, Obs, StabilizationMonitor, TokenRoundMonitor,
};
use gcs_vsimpl::convert::{to_obs, vs_actions};
use gcs_vsimpl::{DetectorPolicy, ProtoConfig, StableState, TimedVsToTo, Wire};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;
use std::collections::{BTreeMap, BinaryHeap};
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// Runaway guard: a run that processes this many events without reaching
/// its horizon is reported as a violation instead of spinning forever.
const MAX_STEPS: u64 = 5_000_000;

/// How long the world keeps running after the last scheduled activity
/// (submission or fault compensation): enough for a full membership
/// stabilization, a merge probe period, and two token-round bounds, so
/// every conforming run converges before its horizon.
pub fn settle_ms(cfg: &SimConfig) -> Time {
    let bp = BoundParams::standard(cfg.n, cfg.delta_ms);
    let base = 2 * bp.b_ms() + 2 * bp.d_ms() + bp.mu_ms;
    if cfg.adaptive_detector {
        // The accrual detector may stretch the token-loss deadline up to
        // its cap (6× the fixed deadline) after a hostile phase, so the
        // settle phase must cover correspondingly later detections.
        3 * base
    } else {
        base
    }
}

#[cfg(feature = "bug-hook")]
fn bug_active(cfg: &SimConfig) -> bool {
    cfg.bug_dup_token
}
#[cfg(not(feature = "bug-hook"))]
fn bug_active(_: &SimConfig) -> bool {
    false
}

/// The injected safety bug (`bug-hook` feature): the duplicated token
/// copy claims every member has received the whole message list — a
/// retransmission path that fabricates acknowledgments. The receiver's
/// safe prefix jumps past what slower members actually hold, so it
/// issues `safe` indications the VS specification does not enable.
#[cfg(feature = "bug-hook")]
fn corrupt_token_acks(bytes: &[u8]) -> Option<Vec<u8>> {
    match decode_payload(bytes) {
        Ok(Frame::Peer(Wire::Token(mut tok))) => {
            let full = tok.seq_start + tok.entries.len() as u64;
            for count in tok.delivered.values_mut() {
                *count = full;
            }
            Some(encode_payload(&Frame::Peer(Wire::Token(tok))))
        }
        _ => None,
    }
}

/// The outcome of one simulated run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The scenario seed.
    pub seed: u64,
    /// Every violation found: checker findings, monitor findings, codec
    /// failures, and convergence failures, each prefixed with its source.
    pub violations: Vec<String>,
    /// FNV-1a digest of the merged trace and the per-node delivery
    /// sequences — bit-identical across replays of the same scenario.
    pub digest: u64,
    /// Virtual length of the run.
    pub horizon_ms: Time,
    /// Merged recorded protocol events.
    pub events: usize,
    /// Frames accepted onto a link.
    pub frames_sent: u64,
    /// Frames dropped (blocked link, full queue, lost in flight).
    pub frames_dropped: u64,
    /// Duplicate frames injected by `Dup` operations.
    pub dups_injected: u64,
    /// Fault operations applied.
    pub faults_applied: usize,
    /// Views installed across all nodes (beyond the initial view).
    pub views_installed: usize,
    /// Client values delivered per node (minimum across nodes).
    pub delivered: usize,
    /// Total virtual time covered by fault spans (union of the
    /// scheduled disturbance intervals).
    pub disturbed_ms: Time,
    /// Values whose *first* delivery anywhere landed inside a
    /// disturbance interval — the availability measure: ops the service
    /// completed while the network was actively hostile.
    pub delivered_during_disturbance: usize,
}

impl RunReport {
    /// Whether the run was violation-free.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// What the heap schedules.
enum Ev {
    /// A frame arriving at `to`. `dup` copies never touch the in-flight
    /// accounting; `stale` copies model a stale-connection frame and
    /// must be rejected.
    Deliver {
        from: ProcId,
        to: ProcId,
        bytes: Vec<u8>,
        epoch: u64,
        stale: bool,
        dup: bool,
        /// The frame's delay was stretched past δ by a slow/bimodal
        /// window; its arrival is re-recorded as a disturbance so the
        /// bound monitors' baseline spans the whole late flight.
        slowed: bool,
    },
    Submit {
        p: ProcId,
        value: u64,
    },
    Timer {
        p: ProcId,
    },
    Fault {
        idx: usize,
    },
    /// A delayed window-open (the later cycles of a `Flap`).
    Open {
        pairs: Vec<(u32, u32)>,
        rep: (u32, u32),
        dur: Time,
        kind: WinKind,
    },
    Heal {
        win: usize,
    },
    Restart {
        p: ProcId,
    },
    Resume {
        p: ProcId,
    },
}

struct Scheduled {
    t: Time,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    // Reversed (time, insertion seq) so `BinaryHeap` pops earliest first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.t.cmp(&self.t).then(other.seq.cmp(&self.seq))
    }
}

/// The [`Transport`] implementation the cores talk to: sends go to a
/// shared outbox the world drains after every core interaction.
struct SimEndpoint {
    id: ProcId,
    outbox: Rc<RefCell<Vec<(ProcId, ProcId, Wire)>>>,
}

impl Transport for SimEndpoint {
    fn send(&self, to: ProcId, wire: Wire) {
        self.outbox.borrow_mut().push((self.id, to, wire));
    }
    fn push_delivery(&self, _src: ProcId, _a: &Value) {}
}

/// One directed link's state.
#[derive(Default)]
struct Link {
    /// Frames currently on the wire (bounded by `send_queue`).
    inflight: usize,
    /// FIFO floor: no frame may be delivered before the previous one.
    next_fifo: Time,
    /// Bumped by kicks and crashes; in-flight frames with an older epoch
    /// are lost.
    epoch: u64,
    /// Duplicate the next frame as a stale copy (rejected on arrival).
    dup_armed: bool,
    /// Bug hook: duplicate the next Token frame as a *live* copy.
    dup_token_armed: bool,
}

/// A shared handle to one incarnation's accumulated output (the node
/// core keeps writing through its own clone).
type Handle<T> = Arc<Mutex<Vec<T>>>;

/// What a fault window does to the frames it matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WinKind {
    /// Frames are dropped (partition / sever semantics).
    Block,
    /// Delivery delays are stretched by the factor (one-way slowdown).
    Slow(u32),
    /// Every frame cluster-wide independently takes the slow mode
    /// (delay × factor) with the given percent probability.
    Bimodal { prob_pct: u32, factor: u32 },
}

/// One active fault window: the directed pairs it matches (empty =
/// every link, used by `Bimodal`), the representative pair recorded
/// with its fault/heal events, and what it does.
struct Window {
    pairs: Vec<(u32, u32)>,
    rep: (u32, u32),
    kind: WinKind,
}

/// One node slot across incarnations.
struct SimSlot {
    core: Option<NodeCore>,
    stable: Option<StableState<TimedVsToTo>>,
    next_wake: Option<Time>,
    stalled_until: Time,
    recorded: Vec<Handle<Recorded>>,
    delivered: Vec<Handle<(ProcId, Value)>>,
    views: Vec<Handle<gcs_model::View>>,
}

impl SimSlot {
    fn keep_handles(&mut self, core: &NodeCore) {
        self.recorded.push(core.recorded_handle());
        self.delivered.push(core.delivered_handle());
        self.views.push(core.views_handle());
    }

    fn all_delivered(&self) -> Vec<(ProcId, Value)> {
        self.delivered.iter().flat_map(|h| h.lock().expect("no panicking holder").clone()).collect()
    }

    fn all_views(&self) -> Vec<gcs_model::View> {
        self.views.iter().flat_map(|h| h.lock().expect("no panicking holder").clone()).collect()
    }

    fn all_recorded(&self) -> Vec<Recorded> {
        self.recorded.iter().flat_map(|h| h.lock().expect("no panicking holder").clone()).collect()
    }
}

struct World<'a> {
    sc: &'a Scenario,
    proto: ProtoConfig,
    clock: Arc<Clock>,
    obs: Obs,
    rng: ChaCha8Rng,
    heap: BinaryHeap<Scheduled>,
    hseq: u64,
    now: Time,
    horizon: Time,
    slots: Vec<SimSlot>,
    endpoints: Vec<Rc<SimEndpoint>>,
    outbox: Rc<RefCell<Vec<(ProcId, ProcId, Wire)>>>,
    links: Vec<Link>,
    /// Active fault windows (blocked or slowed pair sets).
    windows: Vec<Option<Window>>,
    violations: Vec<String>,
    frames_sent: u64,
    frames_dropped: u64,
    dups_injected: u64,
    faults_applied: usize,
}

/// Runs one scenario to completion and reports.
pub fn run(sc: &Scenario) -> RunReport {
    run_traced(sc).0
}

/// Like [`run`], but also returns the full observability event stream
/// (faults, view changes, sends/drops/rejects, client interface events)
/// for timeline debugging of a failing seed.
pub fn run_traced(sc: &Scenario) -> (RunReport, Vec<gcs_obs::ObsEvent>) {
    let (report, events, _) = World::new(sc).run();
    (report, events)
}

/// Like [`run`], but also returns each node's final delivered stream
/// (across incarnations, in its local delivery order) so application
/// layers — e.g. the sharded key-value store's per-key consistency
/// checker — can be replayed over what the simulated run delivered.
pub fn run_with_deliveries(sc: &Scenario) -> (RunReport, Vec<Vec<(ProcId, Value)>>) {
    let (report, _, delivered) = World::new(sc).run();
    (report, delivered)
}

impl<'a> World<'a> {
    fn new(sc: &'a Scenario) -> World<'a> {
        let cfg = &sc.config;
        let n = cfg.n as usize;
        let outbox: Rc<RefCell<Vec<(ProcId, ProcId, Wire)>>> = Rc::new(RefCell::new(Vec::new()));
        let endpoints = (0..n)
            .map(|i| Rc::new(SimEndpoint { id: ProcId(i as u32), outbox: outbox.clone() }))
            .collect();
        let mut proto = ProtoConfig::standard(cfg.n, cfg.delta_ms);
        if cfg.adaptive_detector {
            proto.detector = DetectorPolicy::adaptive();
        }
        World {
            sc,
            proto,
            clock: Clock::manual(),
            obs: Obs::with_manual_clock(1 << 20),
            rng: ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x0dd5_eed0_f00d_cafe),
            heap: BinaryHeap::new(),
            hseq: 0,
            now: 0,
            horizon: sc.horizon_ms(),
            slots: (0..n)
                .map(|_| SimSlot {
                    core: None,
                    stable: None,
                    next_wake: None,
                    stalled_until: 0,
                    recorded: Vec::new(),
                    delivered: Vec::new(),
                    views: Vec::new(),
                })
                .collect(),
            endpoints,
            outbox,
            links: (0..n * n).map(|_| Link::default()).collect(),
            windows: Vec::new(),
            violations: Vec::new(),
            frames_sent: 0,
            frames_dropped: 0,
            dups_injected: 0,
            faults_applied: 0,
        }
    }

    fn push(&mut self, t: Time, ev: Ev) {
        let seq = self.hseq;
        self.hseq += 1;
        self.heap.push(Scheduled { t, seq, ev });
    }

    fn link_idx(&self, from: ProcId, to: ProcId) -> usize {
        from.index() * self.sc.config.n as usize + to.index()
    }

    fn blocked(&self, from: ProcId, to: ProcId) -> bool {
        let pair = (from.0, to.0);
        self.windows.iter().flatten().any(|w| w.kind == WinKind::Block && w.pairs.contains(&pair))
    }

    /// The delay multiplier the active slow/bimodal windows impose on a
    /// frame sent `from → to` right now. Draws the bimodal coin per
    /// frame (deterministically, from the world RNG).
    fn stretch_factor(&mut self, from: ProcId, to: ProcId) -> u64 {
        let pair = (from.0, to.0);
        let mut stretch: u64 = 1;
        let mut bimodal: Option<(u32, u32)> = None;
        for w in self.windows.iter().flatten() {
            match w.kind {
                WinKind::Block => {}
                WinKind::Slow(factor) => {
                    if w.pairs.contains(&pair) {
                        stretch = stretch.max(factor as u64);
                    }
                }
                WinKind::Bimodal { prob_pct, factor } => bimodal = Some((prob_pct, factor)),
            }
        }
        if let Some((prob_pct, factor)) = bimodal {
            if self.rng.gen_range(0..100u32) < prob_pct {
                stretch = stretch.max(factor as u64);
            }
        }
        stretch
    }

    fn stalled(&self, p: ProcId) -> bool {
        self.now < self.slots[p.index()].stalled_until
    }

    /// Drains the shared outbox: codec round-trip, link admission, delay
    /// assignment, duplicate injection.
    fn drain_sends(&mut self) {
        loop {
            let batch: Vec<(ProcId, ProcId, Wire)> = std::mem::take(&mut *self.outbox.borrow_mut());
            if batch.is_empty() {
                return;
            }
            for (from, to, wire) in batch {
                let delta = self.sc.config.delta_ms.max(1);
                if self.blocked(from, to) {
                    // A severed link manifests to the sender as its
                    // connection dying, exactly as the TCP transport
                    // records it — so the partition window counts as
                    // continuously disturbed until its heal.
                    self.obs.trace.record(EventKind::LinkDown { node: from.0, peer: to.0 });
                    self.drop_frame(from, to, DropReason::Blocked);
                    continue;
                }
                let li = self.link_idx(from, to);
                if self.links[li].inflight >= self.sc.config.send_queue {
                    self.drop_frame(from, to, DropReason::QueueFull);
                    continue;
                }
                let dup_live = bug_active(&self.sc.config)
                    && self.links[li].dup_token_armed
                    && matches!(wire, Wire::Token(_));
                let dup_stale = !dup_live && self.links[li].dup_armed;
                if std::env::var_os("SIM_TRACE").is_some() {
                    eprintln!("t={:>6}  send {}->{}  {:?}", self.now, from.0, to.0, wire);
                }
                let bytes = encode_payload(&Frame::Peer(wire));
                let mut delay =
                    if self.sc.config.fixed_delay { delta } else { self.rng.gen_range(1..=delta) };
                let stretch = self.stretch_factor(from, to);
                let slowed = stretch > 1;
                if slowed {
                    // The δ assumption is being violated on purpose:
                    // record the late frame as a disturbance at launch
                    // (and again at arrival) so the b/d monitors treat
                    // the whole slow flight as a disturbed interval.
                    delay *= stretch;
                    self.record_fault(from.0, to.0, FaultKind::Slow);
                }
                let t_del = (self.now + delay).max(self.links[li].next_fifo);
                let link = &mut self.links[li];
                link.next_fifo = t_del;
                link.inflight += 1;
                let epoch = link.epoch;
                self.frames_sent += 1;
                self.obs.trace.record(EventKind::Send { from: from.0, to: to.0 });
                if dup_live || dup_stale {
                    let link = &mut self.links[li];
                    link.dup_armed = false;
                    if dup_live {
                        link.dup_token_armed = false;
                    }
                    self.dups_injected += 1;
                    let extra = if self.sc.config.fixed_delay {
                        delta
                    } else {
                        self.rng.gen_range(1..=delta)
                    };
                    #[cfg(feature = "bug-hook")]
                    let dup_bytes = if dup_live {
                        corrupt_token_acks(&bytes).unwrap_or_else(|| bytes.clone())
                    } else {
                        bytes.clone()
                    };
                    #[cfg(not(feature = "bug-hook"))]
                    let dup_bytes = bytes.clone();
                    self.push(
                        t_del + extra,
                        Ev::Deliver {
                            from,
                            to,
                            bytes: dup_bytes,
                            epoch,
                            stale: dup_stale,
                            dup: true,
                            slowed,
                        },
                    );
                }
                self.push(
                    t_del,
                    Ev::Deliver { from, to, bytes, epoch, stale: false, dup: false, slowed },
                );
            }
        }
    }

    fn drop_frame(&mut self, from: ProcId, to: ProcId, reason: DropReason) {
        self.frames_dropped += 1;
        self.obs.trace.record(EventKind::Drop { node: from.0, to: to.0, reason });
    }

    /// Re-arms `p`'s single pending wake-up event if its earliest timer
    /// deadline moved earlier than what is already scheduled.
    fn arm_timer(&mut self, p: ProcId) {
        let slot = &self.slots[p.index()];
        let Some(core) = &slot.core else { return };
        let Some(due) = core.next_timer_due() else { return };
        let due = due.max(self.now);
        if slot.next_wake.is_none_or(|w| due < w) {
            self.slots[p.index()].next_wake = Some(due);
            self.push(due, Ev::Timer { p });
        }
    }

    /// After any core interaction: route its sends, re-arm its timers.
    fn post(&mut self, p: ProcId) {
        self.drain_sends();
        self.arm_timer(p);
    }

    fn record_fault(&self, node: u32, peer: u32, kind: FaultKind) {
        self.obs.trace.record(EventKind::Fault { node, peer, kind });
    }

    /// Opens a blocked-pairs window and schedules its heal.
    fn open_window(&mut self, pairs: Vec<(u32, u32)>, rep: (u32, u32), dur: Time) {
        self.open_window_kind(pairs, rep, dur, WinKind::Block);
    }

    /// Opens a fault window of any kind and schedules its heal.
    fn open_window_kind(
        &mut self,
        pairs: Vec<(u32, u32)>,
        rep: (u32, u32),
        dur: Time,
        kind: WinKind,
    ) {
        let fk = match kind {
            WinKind::Block => FaultKind::Sever,
            WinKind::Slow(_) | WinKind::Bimodal { .. } => FaultKind::Slow,
        };
        self.record_fault(rep.0, rep.1, fk);
        let win = self.windows.len();
        self.windows.push(Some(Window { pairs, rep, kind }));
        self.push(self.now + dur.max(1), Ev::Heal { win });
    }

    /// Kills in-flight frames between `p` and `q` (both directions).
    fn cut_links(&mut self, p: ProcId, q: ProcId) {
        for (a, b) in [(p, q), (q, p)] {
            let li = self.link_idx(a, b);
            self.links[li].epoch += 1;
            self.links[li].inflight = 0;
        }
    }

    fn apply_fault(&mut self, op: &FaultOp) {
        self.faults_applied += 1;
        match op {
            FaultOp::Split { groups, dur_ms } => {
                let mut pairs = Vec::new();
                for (i, g) in groups.iter().enumerate() {
                    for h in groups.iter().skip(i + 1) {
                        for &a in g {
                            for &b in h {
                                pairs.push((a, b));
                                pairs.push((b, a));
                            }
                        }
                    }
                }
                let rep = (
                    groups.first().and_then(|g| g.first().copied()).unwrap_or(0),
                    groups.get(1).and_then(|g| g.first().copied()).unwrap_or(0),
                );
                self.open_window(pairs, rep, *dur_ms);
            }
            FaultOp::SeverPair { p, q, dur_ms } => {
                self.open_window(vec![(*p, *q), (*q, *p)], (*p, *q), *dur_ms);
            }
            FaultOp::SeverOneWay { p, q, dur_ms } => {
                self.open_window(vec![(*p, *q)], (*p, *q), *dur_ms);
            }
            FaultOp::Flap { p, q, period_ms, count } => {
                // One blocked window per down half-cycle; the up
                // half-cycles are simply the gaps between them. Cycle 0
                // opens now, the rest are scheduled.
                let pairs = vec![(*p, *q), (*q, *p)];
                let period = (*period_ms).max(1);
                for i in 0..(*count).max(1) as u64 {
                    if i == 0 {
                        self.open_window(pairs.clone(), (*p, *q), period);
                    } else {
                        self.push(
                            self.now + 2 * period * i,
                            Ev::Open {
                                pairs: pairs.clone(),
                                rep: (*p, *q),
                                dur: period,
                                kind: WinKind::Block,
                            },
                        );
                    }
                }
            }
            FaultOp::SlowOneWay { p, q, factor, dur_ms } => {
                self.open_window_kind(
                    vec![(*p, *q)],
                    (*p, *q),
                    *dur_ms,
                    WinKind::Slow((*factor).max(2)),
                );
            }
            FaultOp::Bimodal { prob_pct, factor, dur_ms } => {
                self.open_window_kind(
                    Vec::new(),
                    (0, 0),
                    *dur_ms,
                    WinKind::Bimodal { prob_pct: (*prob_pct).min(100), factor: (*factor).max(2) },
                );
            }
            FaultOp::Kick { p, q } => {
                self.record_fault(*p, *q, FaultKind::Kick);
                self.cut_links(ProcId(*p), ProcId(*q));
            }
            FaultOp::Crash { p, down_ms } => {
                let pid = ProcId(*p);
                let Some(core) = self.slots[pid.index()].core.take() else { return };
                self.record_fault(*p, *p, FaultKind::Crash);
                let slot = &mut self.slots[pid.index()];
                slot.stable = Some(core.stable_state());
                slot.next_wake = None;
                slot.stalled_until = 0;
                for q in 0..self.sc.config.n {
                    if q != *p {
                        self.cut_links(pid, ProcId(q));
                    }
                }
                self.push(self.now + (*down_ms).max(1), Ev::Restart { p: pid });
            }
            FaultOp::Stall { p, dur_ms } => {
                self.record_fault(*p, *p, FaultKind::Stall);
                let until = self.now + (*dur_ms).max(1);
                self.slots[ProcId(*p).index()].stalled_until = until;
                self.push(until, Ev::Resume { p: ProcId(*p) });
            }
            FaultOp::Dup { p, q } => {
                let li = self.link_idx(ProcId(*p), ProcId(*q));
                if bug_active(&self.sc.config) {
                    self.links[li].dup_token_armed = true;
                } else {
                    self.links[li].dup_armed = true;
                }
            }
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Deliver { from, to, bytes, epoch, stale, dup, slowed } => {
                if self.stalled(to) {
                    let until = self.slots[to.index()].stalled_until;
                    self.push(until, Ev::Deliver { from, to, bytes, epoch, stale, dup, slowed });
                    return;
                }
                if slowed {
                    // Close of the late flight recorded at launch (see
                    // `drain_sends`): the disturbance baseline must
                    // extend to this arrival.
                    self.record_fault(from.0, to.0, FaultKind::Slow);
                }
                let li = self.link_idx(from, to);
                let live_epoch = epoch == self.links[li].epoch;
                if !dup && live_epoch {
                    self.links[li].inflight = self.links[li].inflight.saturating_sub(1);
                }
                if !live_epoch {
                    // Lost with its connection (kick or crash cut the
                    // link while the frame was in flight).
                    self.drop_frame(from, to, DropReason::WriteError);
                    return;
                }
                if self.slots[to.index()].core.is_none() {
                    // Arrived at a crashed node. The sender's link is
                    // observably down right now — record it as such, so
                    // the bound monitors treat the whole down window as
                    // disturbed (a dead member *is* an ongoing network
                    // disturbance; the paper's b budget covers
                    // stabilization after disturbances end, and this
                    // one ends at the restart).
                    self.obs.trace.record(EventKind::LinkDown { node: from.0, peer: to.0 });
                    self.drop_frame(from, to, DropReason::WriteError);
                    return;
                }
                if self.blocked(from, to) {
                    // Severed while in flight: same observable link
                    // death as the send-side case above.
                    self.obs.trace.record(EventKind::LinkDown { node: from.0, peer: to.0 });
                    self.drop_frame(from, to, DropReason::Blocked);
                    return;
                }
                if stale {
                    // A stale-connection duplicate: the receiver's
                    // generation filter refuses it.
                    self.obs.trace.record(EventKind::Reject { node: to.0, from: from.0 });
                    return;
                }
                let wire = match decode_payload(&bytes) {
                    Ok(Frame::Peer(wire)) => wire,
                    Ok(other) => {
                        self.violations.push(format!("codec: peer frame decoded as {other:?}"));
                        return;
                    }
                    Err(e) => {
                        self.violations.push(format!("codec: decode failed: {e}"));
                        return;
                    }
                };
                if std::env::var_os("SIM_TRACE").is_some() {
                    eprintln!("t={:>6}  {}->{}  {:?}", self.now, from.0, to.0, wire);
                }
                self.obs.trace.record(EventKind::Recv { node: to.0, from: from.0 });
                let ep = self.endpoints[to.index()].clone();
                let core = self.slots[to.index()].core.as_mut().expect("checked above");
                core.handle(Incoming::Wire { from, wire }, &*ep);
                self.post(to);
            }
            Ev::Submit { p, value } => {
                if self.stalled(p) {
                    let until = self.slots[p.index()].stalled_until;
                    self.push(until, Ev::Submit { p, value });
                    return;
                }
                let ep = self.endpoints[p.index()].clone();
                let Some(core) = self.slots[p.index()].core.as_mut() else {
                    self.violations
                        .push(format!("schedule: submit of {value} aimed at crashed node {p}"));
                    return;
                };
                core.handle(Incoming::Submit { batch: vec![Value::from_u64(value)] }, &*ep);
                self.post(p);
            }
            Ev::Timer { p } => {
                if self.stalled(p) {
                    let until = self.slots[p.index()].stalled_until;
                    self.push(until, Ev::Timer { p });
                    return;
                }
                self.slots[p.index()].next_wake = None;
                let ep = self.endpoints[p.index()].clone();
                let Some(core) = self.slots[p.index()].core.as_mut() else { return };
                core.tick(&*ep);
                self.post(p);
            }
            Ev::Fault { idx } => {
                let op = self.sc.faults[idx].op.clone();
                self.apply_fault(&op);
            }
            Ev::Open { pairs, rep, dur, kind } => {
                self.open_window_kind(pairs, rep, dur, kind);
            }
            Ev::Heal { win } => {
                if let Some(w) = self.windows[win].take() {
                    self.record_fault(w.rep.0, w.rep.1, FaultKind::Heal);
                }
            }
            Ev::Restart { p } => {
                let slot = &mut self.slots[p.index()];
                let Some(stable) = slot.stable.take() else { return };
                self.record_fault(p.0, p.0, FaultKind::Restart);
                let mut core =
                    NodeCore::recover(p, self.proto.clone(), self.clock.clone(), &self.obs, stable);
                self.slots[p.index()].keep_handles(&core);
                let ep = self.endpoints[p.index()].clone();
                core.boot(&*ep);
                self.slots[p.index()].core = Some(core);
                self.post(p);
            }
            Ev::Resume { p } => {
                self.slots[p.index()].stalled_until = 0;
                self.record_fault(p.0, p.0, FaultKind::Resume);
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn run(mut self) -> (RunReport, Vec<gcs_obs::ObsEvent>, Vec<Vec<(ProcId, Value)>>) {
        // Boot every node at t = 0.
        for i in 0..self.sc.config.n as usize {
            let p = ProcId(i as u32);
            let mut core = NodeCore::new(p, self.proto.clone(), self.clock.clone(), &self.obs);
            self.slots[i].keep_handles(&core);
            let ep = self.endpoints[i].clone();
            core.boot(&*ep);
            self.slots[i].core = Some(core);
            self.post(p);
        }
        // Schedule the client and fault workload.
        for s in &self.sc.submits {
            let (t, p, v) = (s.at, ProcId(s.node), s.value);
            self.push(t, Ev::Submit { p, value: v });
        }
        for (idx, f) in self.sc.faults.iter().enumerate() {
            self.push(f.at, Ev::Fault { idx });
        }

        // The discrete-event loop.
        let mut steps: u64 = 0;
        while let Some(Scheduled { t, ev, .. }) = self.heap.pop() {
            if t > self.horizon {
                break;
            }
            steps += 1;
            if steps > MAX_STEPS {
                self.violations.push(format!("runaway: {MAX_STEPS} events before the horizon"));
                break;
            }
            self.now = self.now.max(t);
            self.clock.advance_to(self.now);
            self.obs.trace.set_now_ms(self.now);
            self.dispatch(ev);
        }

        self.finish()
    }

    #[allow(clippy::type_complexity)]
    fn finish(mut self) -> (RunReport, Vec<gcs_obs::ObsEvent>, Vec<Vec<(ProcId, Value)>>) {
        let cfg = &self.sc.config;
        let n = cfg.n;
        let p0 = ProcId::range(n);

        // Safety: the merged trace against both VS/TO runtime specs.
        let per_node: Vec<Vec<Recorded>> = self.slots.iter().map(|s| s.all_recorded()).collect();
        let merged = gcs_net::merge_recordings(&per_node);
        let conf = check_conformance(&vs_actions(&merged), &to_obs(&merged).untimed(), &p0);
        self.violations.extend(conf.violations());

        // Timing: the b/d bound monitors over the observability stream.
        if self.obs.trace.evicted() > 0 {
            self.violations.push(format!(
                "obs: trace ring evicted {} events (capacity too small for the run)",
                self.obs.trace.evicted()
            ));
        }
        let events = self.obs.trace.snapshot();
        let bp = BoundParams::standard(n, cfg.delta_ms);
        let mut stab = StabilizationMonitor::new(bp);
        stab.feed_all(&events);
        let mut token = TokenRoundMonitor::new(bp);
        token.feed_all(&events);
        let views_installed =
            events.iter().filter(|e| matches!(e.kind, EventKind::ViewChange { .. })).count();
        for report in [stab.finish(), token.finish(self.horizon)] {
            for v in &report.violations {
                self.violations.push(format!("monitor {}: {v}", report.name));
            }
        }

        // Convergence: after every fault is compensated and the settle
        // phase has passed, all nodes must have delivered all submitted
        // values in one agreed order and share a final full view.
        let delivered: Vec<Vec<(ProcId, Value)>> =
            self.slots.iter().map(|s| s.all_delivered()).collect();
        let want = self.sc.submits.len();
        for (i, d) in delivered.iter().enumerate() {
            if d.len() != want {
                self.violations.push(format!(
                    "convergence: node {i} delivered {} of {want} values by the horizon",
                    d.len()
                ));
            } else if *d != delivered[0] {
                self.violations
                    .push(format!("convergence: node {i} delivery order differs from node 0"));
            }
        }
        let finals: Vec<Option<gcs_model::View>> =
            self.slots.iter().map(|s| s.all_views().last().cloned()).collect();
        for (i, v) in finals.iter().enumerate() {
            match v {
                Some(v) if v.set.len() == n as usize && finals[0].as_ref() == Some(v) => {}
                Some(v) => self.violations.push(format!(
                    "convergence: node {i} final view {:?} (size {}) is not the shared full view",
                    v.id,
                    v.set.len()
                )),
                None => {
                    self.violations.push(format!("convergence: node {i} never installed a view"))
                }
            }
        }

        // Determinism digest over the merged protocol trace and the
        // delivery sequences.
        let mut digest = Fnv::new();
        for (t, e) in merged.iter() {
            digest.write_u64(*t);
            digest.write_str(&format!("{e:?}"));
        }
        for d in &delivered {
            for (src, v) in d {
                digest.write_u64(src.0 as u64);
                digest.write_u64(v.as_u64().unwrap_or(0));
            }
        }

        // Availability: how much of the run the scheduled faults kept
        // disturbed, and how many values got their first delivery while
        // a disturbance was in force.
        let mut intervals: Vec<(Time, Time)> = self
            .sc
            .faults
            .iter()
            .map(|f| (f.at, f.at + f.op.span_ms()))
            .filter(|(a, b)| b > a)
            .collect();
        intervals.sort_unstable();
        let mut disturbed_ms: Time = 0;
        let mut cursor: Time = 0;
        for &(a, b) in &intervals {
            let a = a.max(cursor);
            if b > a {
                disturbed_ms += b - a;
                cursor = b;
            }
        }
        let mut first_delivery: BTreeMap<u64, Time> = BTreeMap::new();
        for e in &events {
            if let EventKind::Brcv { value, .. } = e.kind {
                first_delivery.entry(value).or_insert(e.t_ms);
            }
        }
        let delivered_during_disturbance = first_delivery
            .values()
            .filter(|&&t| intervals.iter().any(|&(a, b)| t >= a && t <= b))
            .count();

        let report = RunReport {
            seed: cfg.seed,
            violations: self.violations,
            digest: digest.finish(),
            horizon_ms: self.horizon,
            events: merged.len(),
            frames_sent: self.frames_sent,
            frames_dropped: self.frames_dropped,
            dups_injected: self.dups_injected,
            faults_applied: self.faults_applied,
            views_installed,
            delivered: delivered.iter().map(|d| d.len()).min().unwrap_or(0),
            disturbed_ms,
            delivered_during_disturbance,
        };
        (report, events, delivered)
    }
}

/// Minimal FNV-1a, so the digest needs no hasher dependencies and is
/// identical on every platform.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x1_0000_01b3);
        }
    }
    fn write_str(&mut self, s: &str) {
        for b in s.bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x1_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}
