//! Automatic schedule minimization: given a failing scenario, find a
//! smallest-reproducing fault schedule by replay.
//!
//! Because every [`crate::scenario::FaultOp`] is self-compensating
//! (each carries its own heal/restart/resume), *any* subsequence of a
//! valid fault schedule is itself a valid schedule — so shrinking is
//! plain subsequence search over deterministic replays:
//!
//! 1. **Prefix bisection** — find the shortest failing prefix of the
//!    fault list (a failing run usually stops needing everything after
//!    the operation that triggered the bug).
//! 2. **Greedy removal to fixpoint** — drop one operation at a time,
//!    keeping the removal whenever the shrunk scenario still fails,
//!    until no single removal preserves the failure (a 1-minimal
//!    schedule).
//!
//! The submission schedule is left untouched: it is the workload under
//! which the fault schedule fails, not part of the fault schedule.

use crate::scenario::Scenario;
use crate::world::{run, RunReport};

/// The outcome of a shrink.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimized scenario (still failing).
    pub scenario: Scenario,
    /// The report of the minimized scenario's run.
    pub report: RunReport,
    /// Fault operations in the original scenario.
    pub original_ops: usize,
    /// Replays spent shrinking.
    pub replays: usize,
}

fn with_faults(sc: &Scenario, keep: impl Fn(usize) -> bool) -> Scenario {
    let faults =
        sc.faults.iter().enumerate().filter(|(i, _)| keep(*i)).map(|(_, f)| f.clone()).collect();
    Scenario { config: sc.config.clone(), submits: sc.submits.clone(), faults }
}

/// Minimizes `scenario`'s fault schedule while it keeps failing.
/// Returns `None` if the scenario does not fail in the first place.
pub fn shrink(scenario: &Scenario) -> Option<ShrinkResult> {
    let mut replays = 1;
    let mut best_report = run(scenario);
    if best_report.ok() {
        return None;
    }
    let original_ops = scenario.faults.len();
    let mut best = scenario.clone();

    // Phase 1: shortest failing prefix, by bisection. Failure is not
    // monotone in the prefix length, so this is a heuristic cut — the
    // greedy phase below restores 1-minimality regardless.
    let mut lo = 0usize;
    let mut hi = best.faults.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let candidate = with_faults(&best, |i| i < mid);
        replays += 1;
        let report = run(&candidate);
        if report.ok() {
            lo = mid + 1;
        } else {
            best = candidate;
            best_report = report;
            hi = mid;
        }
    }

    // Phase 2: greedy single-op removal until a fixpoint.
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < best.faults.len() {
            let candidate = with_faults(&best, |j| j != i);
            replays += 1;
            let report = run(&candidate);
            if report.ok() {
                i += 1;
            } else {
                best = candidate;
                best_report = report;
                removed_any = true;
            }
        }
        if !removed_any {
            break;
        }
    }

    Some(ShrinkResult { scenario: best, report: best_report, original_ops, replays })
}
