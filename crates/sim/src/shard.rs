//! Cross-shard simulation: several VS/TO group instances, one fault
//! schedule.
//!
//! A sharded deployment hosts G *independent* group instances over one
//! physical node set; the groups share fate only through the faults of
//! the machines and links under them. That independence is exactly what
//! makes cross-shard scenarios compilable: a [`ShardScenario`] names its
//! groups by global node id and schedules faults against the global
//! topology, and [`run_shard`] *projects* the schedule into one
//! single-group [`Scenario`] per shard — member ids densely renumbered,
//! faults restricted to the members they touch — and runs each through
//! the unchanged deterministic [`World`](crate::world) with its full
//! VS/TO conformance, b/d monitor, and convergence checking.
//!
//! A `Split` that does not separate any two members of a group projects
//! to nothing for that group; a crash of a node hosting three groups
//! projects to a crash in all three. So "partition group 0 while the
//! other groups keep serving" and "crash the node hosting three shards"
//! fall out of the projection rather than needing a multi-group world.
//!
//! On top of the per-group protocol checks, each group's delivered
//! streams are interpreted as sharded key-value commands (the
//! deterministic seed mapping [`gcs_apps::kv::KvCmd::from_seed`]) and
//! run through [`gcs_apps::kv::check_per_key_linearizable`] — the
//! application-level obligation the TO order is supposed to discharge.
//! The combined run digest folds every group's digest, so a cross-shard
//! run is bit-for-bit reproducible like a single-group one.

use crate::scenario::{FaultOp, Scenario, ScheduledFault, ScheduledSubmit, SimConfig};
use crate::world::{run_with_deliveries, RunReport};
use gcs_apps::kv::{check_per_key_linearizable, KvCmd};
use gcs_model::Time;
use std::collections::BTreeMap;

/// How many distinct keys the derived key-value workload spreads each
/// group's commands over.
pub const SHARD_KEYS: u64 = 16;

/// A cross-shard scenario: group memberships by global node id, a
/// per-group submission count, and a fault schedule against the global
/// topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardScenario {
    /// The template configuration every projected group run inherits
    /// (δ, active window, queue bound, seed). `n` and `submits` are
    /// overridden per group by the projection.
    pub base: SimConfig,
    /// Member sets per group, in global node ids. Groups may overlap —
    /// that is the point.
    pub groups: Vec<Vec<u32>>,
    /// Client submissions per group (values are disjoint across groups).
    pub submits_per_group: u32,
    /// Faults, scheduled against global node ids.
    pub faults: Vec<ScheduledFault>,
}

/// What one cross-shard run produced.
#[derive(Clone, Debug)]
pub struct ShardRunReport {
    /// Per-group reports, in group order (protocol checks included).
    pub per_group: Vec<RunReport>,
    /// Violations from the per-key key-value consistency check, labeled
    /// with their group.
    pub kv_violations: Vec<String>,
    /// FNV-1a fold of every group digest: the cross-shard determinism
    /// digest.
    pub digest: u64,
}

impl ShardRunReport {
    /// Whether every group run and the key-value checks all passed.
    pub fn ok(&self) -> bool {
        self.kv_violations.is_empty() && self.per_group.iter().all(RunReport::ok)
    }

    /// All violations across groups, labeled.
    pub fn violations(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .per_group
            .iter()
            .enumerate()
            .flat_map(|(g, r)| r.violations.iter().map(move |v| format!("group {g}: {v}")))
            .collect();
        out.extend(self.kv_violations.iter().cloned());
        out
    }
}

/// Projects one global fault operation onto a group's member set
/// (`local` maps global id → dense local id). Returns `None` when the
/// operation cannot disturb the group.
fn project_op(op: &FaultOp, local: &BTreeMap<u32, u32>) -> Option<FaultOp> {
    let both = |p: &u32, q: &u32| Some((*local.get(p)?, *local.get(q)?));
    match op {
        FaultOp::Split { groups, dur_ms } => {
            // Restrict each component to the members; the group is only
            // disturbed if at least two components remain non-empty.
            let comps: Vec<Vec<u32>> = groups
                .iter()
                .map(|c| c.iter().filter_map(|p| local.get(p).copied()).collect::<Vec<u32>>())
                .filter(|c| !c.is_empty())
                .collect();
            (comps.len() >= 2).then_some(FaultOp::Split { groups: comps, dur_ms: *dur_ms })
        }
        FaultOp::SeverPair { p, q, dur_ms } => {
            both(p, q).map(|(p, q)| FaultOp::SeverPair { p, q, dur_ms: *dur_ms })
        }
        FaultOp::SeverOneWay { p, q, dur_ms } => {
            both(p, q).map(|(p, q)| FaultOp::SeverOneWay { p, q, dur_ms: *dur_ms })
        }
        FaultOp::Kick { p, q } => both(p, q).map(|(p, q)| FaultOp::Kick { p, q }),
        FaultOp::Crash { p, down_ms } => {
            local.get(p).map(|&p| FaultOp::Crash { p, down_ms: *down_ms })
        }
        FaultOp::Stall { p, dur_ms } => {
            local.get(p).map(|&p| FaultOp::Stall { p, dur_ms: *dur_ms })
        }
        FaultOp::Dup { p, q } => both(p, q).map(|(p, q)| FaultOp::Dup { p, q }),
        FaultOp::Flap { p, q, period_ms, count } => {
            both(p, q).map(|(p, q)| FaultOp::Flap { p, q, period_ms: *period_ms, count: *count })
        }
        FaultOp::SlowOneWay { p, q, factor, dur_ms } => {
            both(p, q).map(|(p, q)| FaultOp::SlowOneWay { p, q, factor: *factor, dur_ms: *dur_ms })
        }
        // Bimodal is cluster-wide: it disturbs every group as-is.
        FaultOp::Bimodal { prob_pct, factor, dur_ms } => {
            Some(FaultOp::Bimodal { prob_pct: *prob_pct, factor: *factor, dur_ms: *dur_ms })
        }
    }
}

/// Compiles the projection of a cross-shard scenario onto one group: a
/// plain single-group [`Scenario`] over densely renumbered members.
///
/// Submissions round-robin over the members at evenly spaced times in
/// the active window; values are `g·submits+1 ..` so the groups' value
/// spaces stay disjoint (each group's trace checker wants per-run
/// uniqueness, and disjointness keeps cross-group confusion impossible
/// even in merged logs).
pub fn project_group(sc: &ShardScenario, g: usize) -> Scenario {
    let members = &sc.groups[g];
    let local: BTreeMap<u32, u32> =
        members.iter().enumerate().map(|(i, &p)| (p, i as u32)).collect();
    let k = members.len() as u32;

    let config = SimConfig {
        n: k,
        submits: sc.submits_per_group,
        // Distinct seeds keep the groups' frame-delay streams
        // independent, like distinct sockets would be.
        seed: sc.base.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(g as u64 + 1)),
        ..sc.base.clone()
    };

    let faults: Vec<ScheduledFault> = sc
        .faults
        .iter()
        .filter_map(|f| project_op(&f.op, &local).map(|op| ScheduledFault { at: f.at, op }))
        .collect();

    // Submissions round-robin over the members at evenly spaced times —
    // but never at a node inside a crash window (the value would die
    // with the incarnation before being broadcast), the same rule the
    // single-group generator applies.
    let b = gcs_obs::BoundParams::standard(k, config.delta_ms).b_ms();
    let crash_windows: Vec<(u32, Time, Time)> = faults
        .iter()
        .filter_map(|f| match f.op {
            FaultOp::Crash { p, down_ms } => Some((p, f.at, f.at + down_ms + b)),
            _ => None,
        })
        .collect();
    let span = config.active_ms.max(2);
    let mut submits = Vec::new();
    for i in 0..sc.submits_per_group {
        let at: Time = 10 + (u64::from(i) * (span - 1)) / u64::from(sc.submits_per_group.max(1));
        let mut node = i % k;
        for _ in 0..k {
            let crashed = crash_windows.iter().any(|&(p, s, e)| p == node && at >= s && at <= e);
            if !crashed {
                break;
            }
            node = (node + 1) % k;
        }
        submits.push(ScheduledSubmit {
            at,
            node,
            value: (g as u64) * u64::from(sc.submits_per_group) + u64::from(i) + 1,
        });
    }

    Scenario { config, submits, faults }
}

/// Runs every group of a cross-shard scenario through the deterministic
/// world and folds the results (see the module docs).
pub fn run_shard(sc: &ShardScenario) -> ShardRunReport {
    let mut per_group = Vec::new();
    let mut kv_violations = Vec::new();
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    for g in 0..sc.groups.len() {
        let scenario = project_group(sc, g);
        let (report, delivered) = run_with_deliveries(&scenario);

        // Interpret each node's delivered stream as the key-value
        // workload (the deterministic seed mapping) and check per-key
        // consistency across the group's replicas.
        let streams: Vec<Vec<gcs_model::Value>> = delivered
            .iter()
            .map(|d| {
                d.iter()
                    .filter_map(|(_, v)| v.as_u64())
                    .map(|seed| KvCmd::from_seed(seed, SHARD_KEYS).encode())
                    .collect()
            })
            .collect();
        if let Err(e) = check_per_key_linearizable(&streams) {
            kv_violations.push(format!("group {g}: kv: {e}"));
        }

        for b in report.digest.to_le_bytes() {
            digest = (digest ^ u64::from(b)).wrapping_mul(0x1_0000_01b3);
        }
        per_group.push(report);
    }
    ShardRunReport { per_group, kv_violations, digest }
}

/// The two canonical cross-shard scenarios over 5 nodes and 4
/// overlapping 3-member groups (`g_i = {i, i+1, i+2} mod 5`):
///
/// - `partition_one_group`: sever the (0,1) and (0,2) link pairs for
///   `dur_ms`. Only group 0 contains both endpoints of a severed pair,
///   so it partitions into `{0} | {1, 2}` — the majority side keeps a
///   primary and keeps serving — while groups 1–3 run undisturbed.
/// - `crash_shared_host`: crash node 2, which hosts groups 0, 1, and 2;
///   all three lose a member and must reform, group 3 never notices.
pub fn canonical_groups() -> Vec<Vec<u32>> {
    (0..4u32).map(|i| (0..3u32).map(|j| (i + j) % 5).collect()).collect()
}

/// The "partition one group while the others serve" scenario (see
/// [`canonical_groups`]).
pub fn partition_one_group(seed: u64, dur_ms: Time) -> ShardScenario {
    let base = SimConfig { n: 5, active_ms: 4_000, ..SimConfig::default() };
    ShardScenario {
        base: SimConfig { seed, ..base },
        groups: canonical_groups(),
        submits_per_group: 24,
        faults: vec![
            ScheduledFault { at: 600, op: FaultOp::SeverPair { p: 0, q: 1, dur_ms } },
            ScheduledFault { at: 600, op: FaultOp::SeverPair { p: 0, q: 2, dur_ms } },
        ],
    }
}

/// The "crash a node hosting three groups" scenario (see
/// [`canonical_groups`]).
pub fn crash_shared_host(seed: u64, down_ms: Time) -> ShardScenario {
    let base = SimConfig { n: 5, active_ms: 4_000, ..SimConfig::default() };
    ShardScenario {
        base: SimConfig { seed, ..base },
        groups: canonical_groups(),
        submits_per_group: 24,
        faults: vec![ScheduledFault { at: 700, op: FaultOp::Crash { p: 2, down_ms } }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_renumbers_and_filters() {
        let sc = partition_one_group(1, 500);
        // Group 0 = {0,1,2}: both severed pairs project (identity ids).
        let g0 = project_group(&sc, 0);
        assert_eq!(g0.config.n, 3);
        assert_eq!(g0.faults.len(), 2);
        // Group 1 = {1,2,3}: node 0 is not a member, nothing projects.
        let g1 = project_group(&sc, 1);
        assert_eq!(g1.faults.len(), 0);
        // Group 3 = {3,4,0}: members renumber densely (3→0, 4→1, 0→2)
        // and the severs vanish because 1 and 2 are outside.
        let g3 = project_group(&sc, 3);
        assert_eq!(g3.config.n, 3);
        assert_eq!(g3.faults.len(), 0);
    }

    #[test]
    fn split_projection_needs_two_components() {
        let local: BTreeMap<u32, u32> = [(1, 0), (2, 1), (3, 2)].into_iter().collect();
        // {1,2,3} all land in one component: no disturbance.
        let op = FaultOp::Split { groups: vec![vec![0, 4], vec![1, 2, 3]], dur_ms: 100 };
        assert_eq!(project_op(&op, &local), None);
        // {1,2} | {3} does split the group.
        let op = FaultOp::Split { groups: vec![vec![0, 1, 2], vec![3, 4]], dur_ms: 100 };
        assert_eq!(
            project_op(&op, &local),
            Some(FaultOp::Split { groups: vec![vec![0, 1], vec![2]], dur_ms: 100 })
        );
    }

    #[test]
    fn value_spaces_are_disjoint_across_groups() {
        let sc = crash_shared_host(2, 400);
        let mut all: Vec<u64> = Vec::new();
        for g in 0..sc.groups.len() {
            all.extend(project_group(&sc, g).submits.iter().map(|s| s.value));
        }
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
    }
}
