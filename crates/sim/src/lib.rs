//! `gcs-sim`: FoundationDB-style deterministic simulation testing for
//! the real `gcs-net` protocol stack.
//!
//! The TCP deployment and this harness run the *same* node runtime —
//! [`gcs_net::NodeCore`], hosting the unchanged `VsNode<TimedVsToTo>`
//! protocol machine and the real wire codec. Only the transport differs:
//! instead of sockets and threads, a single-threaded discrete-event
//! world with a virtual clock delivers frames with seeded delays (≤ δ,
//! per-link FIFO — the contract TCP provides) while a fault scheduler
//! injects partitions, asymmetric link mutes, killed connections,
//! node crashes with volatile-state loss, and slow-consumer stalls.
//!
//! Every run is checked three ways:
//!
//! - **safety** — the merged recording must conform to the paper's
//!   VS/TO runtime specifications ([`gcs_core::check_conformance`]);
//! - **timing** — the observability stream must satisfy the b/d bounds
//!   of Theorems 8.1/8.2 ([`gcs_obs::StabilizationMonitor`],
//!   [`gcs_obs::TokenRoundMonitor`]), with fault events excusing
//!   disturbed intervals exactly as the theorems do;
//! - **convergence** — once the schedule's faults are all compensated
//!   and a settle phase has passed, every submitted value is delivered
//!   everywhere in one agreed order and the full view is re-installed.
//!
//! Runs are bit-for-bit deterministic in the scenario (seed + config),
//! which buys the two headline features: seed fan-out over thousands of
//! schedules ([`gcs_harness::par_seeds`] — same results at any worker
//! count), and automatic minimization of a failing schedule to a
//! smallest-reproducing scenario file ([`shrink`]) that replays exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hostile;
pub mod scenario;
pub mod shard;
pub mod shrink;
pub mod world;

pub use hostile::{build as build_hostile, run_pair, HostileKind, HostileOutcome};
pub use scenario::{FaultOp, Scenario, ScheduledFault, ScheduledSubmit, SimConfig};
pub use shard::{run_shard, ShardRunReport, ShardScenario};
pub use shrink::{shrink, ShrinkResult};
pub use world::{run, run_with_deliveries, settle_ms, RunReport};
