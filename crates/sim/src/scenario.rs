//! Scenarios: the complete, replayable description of one simulated run.
//!
//! A [`Scenario`] is a [`SimConfig`] plus an explicit client-submission
//! schedule and an explicit fault schedule. Random scenarios are
//! *generated* from a seed ([`Scenario::generate`]), but the run itself
//! only ever consumes the explicit schedules — so the shrinker can
//! remove fault operations one by one and replay, and a failing schedule
//! can be written to a plain text file ([`Scenario::render`]) and
//! replayed later ([`Scenario::parse`]) without the generating seed.
//!
//! Every fault operation is **self-compensating**: a `Split` carries its
//! own heal time, a `Crash` its own restart delay, a `Stall` its own
//! resume delay. Removing any single operation therefore leaves a
//! schedule that still returns the network to full connectivity before
//! the settle phase — which is what makes shrink-by-removal sound.

use crate::world::settle_ms;
use gcs_model::Time;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

/// Parameters of one simulated cluster run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of nodes (all of them form the initial membership *P₀*).
    pub n: u32,
    /// The good-channel delay bound δ, in virtual milliseconds. Every
    /// delivered frame takes between 1 and δ ms (exactly δ when
    /// [`SimConfig::fixed_delay`] is set), so the paper's timing
    /// assumption holds by construction and the b/d monitors apply.
    pub delta_ms: Time,
    /// Length of the active window (submits and faults are scheduled
    /// inside it); the run then settles for [`settle_ms`] more.
    pub active_ms: Time,
    /// How many client values to submit (values are `1..=submits`,
    /// globally unique as the TO trace checker requires).
    pub submits: u32,
    /// How many fault operations to generate.
    pub fault_budget: u32,
    /// Per-directed-link in-flight frame capacity; sends beyond it are
    /// dropped and counted, modeling the TCP transport's bounded queue.
    pub send_queue: usize,
    /// The run seed: drives schedule generation and in-run randomness
    /// (frame delays).
    pub seed: u64,
    /// Deliver every frame after exactly δ (the boundary case for the
    /// b/d monitors) instead of uniformly in `[1, δ]`.
    pub fixed_delay: bool,
    /// With the `bug-hook` feature: `Dup` operations duplicate a *live*
    /// Token frame (both copies processed) instead of a stale one — a
    /// real safety bug the checkers must catch. Ignored (and harmless)
    /// without the feature.
    pub bug_dup_token: bool,
    /// Run the nodes under the adaptive accrual failure detector
    /// (`DetectorPolicy::adaptive()`) instead of the fixed δ/π timeouts.
    /// The settle phase is stretched to cover the widest adaptive
    /// deadline (see [`settle_ms`]).
    pub adaptive_detector: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n: 5,
            delta_ms: 10,
            active_ms: 5_000,
            submits: 40,
            fault_budget: 6,
            send_queue: 256,
            seed: 0,
            fixed_delay: false,
            bug_dup_token: false,
            adaptive_detector: false,
        }
    }
}

/// One fault operation. Durations are part of the operation, so every
/// operation compensates itself (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultOp {
    /// Partition the nodes into the given components for `dur_ms`.
    /// Overlapping splits compose as the intersection of their
    /// equivalence relations, so connectivity always stays
    /// component-structured (the paper's partitionable network model).
    Split {
        /// The components (a partition of `0..n`).
        groups: Vec<Vec<u32>>,
        /// How long until the split heals.
        dur_ms: Time,
    },
    /// Block both directions of one link for `dur_ms` (a short
    /// transient, unlike `Split`).
    SeverPair {
        /// One endpoint.
        p: u32,
        /// The other endpoint.
        q: u32,
        /// Window length.
        dur_ms: Time,
    },
    /// Block only the `p → q` direction for `dur_ms` (asymmetric fault).
    SeverOneWay {
        /// The muted sender.
        p: u32,
        /// The unreachable receiver.
        q: u32,
        /// Window length.
        dur_ms: Time,
    },
    /// Drop every in-flight frame between `p` and `q` (both directions)
    /// at this instant — the simulated analog of killing live sockets.
    Kick {
        /// One endpoint.
        p: u32,
        /// The other endpoint.
        q: u32,
    },
    /// Crash node `p` (volatile state lost, stable storage kept) and
    /// restart it `down_ms` later.
    Crash {
        /// The crashing node.
        p: u32,
        /// Downtime before the restart.
        down_ms: Time,
    },
    /// Stall node `p` for `dur_ms`: it processes nothing (deliveries,
    /// submissions, and timers all wait), while frames aimed at it pile
    /// up against the bounded link queues — the slow-consumer fault.
    Stall {
        /// The stalled node.
        p: u32,
        /// Pause length.
        dur_ms: Time,
    },
    /// Flap the `p ↔ q` link: block it for `period_ms`, restore it for
    /// `period_ms`, `count` times — a link oscillating at the detection
    /// threshold, the canonical regime where fixed timeouts thrash views.
    Flap {
        /// One endpoint.
        p: u32,
        /// The other endpoint.
        q: u32,
        /// Length of each down (and each up) half-cycle.
        period_ms: Time,
        /// Number of down/up cycles.
        count: u32,
    },
    /// Stretch delivery delays on the `p → q` direction by `factor`
    /// for `dur_ms` (the reverse direction stays at δ) — an asymmetric
    /// one-way slowdown, not a partition: every frame still arrives.
    SlowOneWay {
        /// The slowed sender.
        p: u32,
        /// The receiver seeing late frames.
        q: u32,
        /// Delay multiplier (≥ 2).
        factor: u32,
        /// Window length.
        dur_ms: Time,
    },
    /// WAN-like bimodal delays on *every* link for `dur_ms`: each frame
    /// independently takes the slow mode (delay × `factor`) with
    /// probability `prob_pct`%, the fast mode (≤ δ) otherwise.
    Bimodal {
        /// Percent of frames taking the slow mode.
        prob_pct: u32,
        /// Slow-mode delay multiplier (≥ 2).
        factor: u32,
        /// Window length.
        dur_ms: Time,
    },
    /// Arm the `p → q` link to duplicate its next frame. Without the
    /// `bug-hook` feature the duplicate arrives as a *stale* copy and
    /// must be rejected by the receiver (exercising the transport's
    /// stale-connection filter semantics); with it, see
    /// [`SimConfig::bug_dup_token`].
    Dup {
        /// The duplicating sender.
        p: u32,
        /// The receiver.
        q: u32,
    },
}

impl FaultOp {
    /// When the operation's effect is fully compensated, relative to its
    /// application time (0 for instantaneous operations).
    pub fn span_ms(&self) -> Time {
        match self {
            FaultOp::Split { dur_ms, .. }
            | FaultOp::SeverPair { dur_ms, .. }
            | FaultOp::SeverOneWay { dur_ms, .. }
            | FaultOp::SlowOneWay { dur_ms, .. }
            | FaultOp::Bimodal { dur_ms, .. }
            | FaultOp::Stall { dur_ms, .. } => *dur_ms,
            FaultOp::Crash { down_ms, .. } => *down_ms,
            FaultOp::Flap { period_ms, count, .. } => 2 * period_ms * *count as Time,
            FaultOp::Kick { .. } | FaultOp::Dup { .. } => 0,
        }
    }
}

/// A fault operation with its application time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Virtual time at which the operation is applied.
    pub at: Time,
    /// The operation.
    pub op: FaultOp,
}

/// A scheduled client submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduledSubmit {
    /// Virtual time of the submission.
    pub at: Time,
    /// The submitting node.
    pub node: u32,
    /// The (globally unique) value.
    pub value: u64,
}

/// A complete replayable run description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Run parameters.
    pub config: SimConfig,
    /// Client submissions, in time order.
    pub submits: Vec<ScheduledSubmit>,
    /// Fault operations, in time order.
    pub faults: Vec<ScheduledFault>,
}

/// Fisher–Yates shuffle driven by the scenario RNG (the vendored `rand`
/// subset has no `SliceRandom`).
fn shuffle<T>(xs: &mut [T], rng: &mut ChaCha8Rng) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

impl Scenario {
    /// The virtual time at which the run ends: every fault compensated
    /// and every submission made, then a full settle phase.
    pub fn horizon_ms(&self) -> Time {
        let mut last = self.config.active_ms;
        for f in &self.faults {
            last = last.max(f.at + f.op.span_ms());
        }
        for s in &self.submits {
            last = last.max(s.at);
        }
        last + settle_ms(&self.config)
    }

    /// Generates the random scenario for `config` (schedules are drawn
    /// from `config.seed`; the run draws its own delays from the same
    /// seed via a different stream).
    pub fn generate(config: &SimConfig) -> Scenario {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x05ca_1ab1_e0dd_ba11);
        let n = config.n;
        let b = gcs_obs::BoundParams::standard(n, config.delta_ms).b_ms();
        let lo: Time = 50;
        let hi: Time = config.active_ms.max(lo + 1);

        // Fault operations. `busy` tracks per-node crash/stall windows so
        // no node carries two whole-node faults at once, and `crashes`
        // remembers windows a submission must avoid.
        let mut faults: Vec<ScheduledFault> = Vec::new();
        let mut busy: Vec<Vec<(Time, Time)>> = vec![Vec::new(); n as usize];
        let mut crashes: Vec<(u32, Time, Time)> = Vec::new();
        let free = |busy: &[Vec<(Time, Time)>], p: u32, from: Time, to: Time| {
            busy[p as usize].iter().all(|&(s, e)| to < s || from > e)
        };
        for _ in 0..config.fault_budget {
            let at = rng.gen_range(lo..hi);
            let op = match rng.gen_range(0u32..10) {
                0..=2 => {
                    let mut ids: Vec<u32> = (0..n).collect();
                    shuffle(&mut ids, &mut rng);
                    let cut = rng.gen_range(1..n) as usize;
                    let groups = vec![ids[..cut].to_vec(), ids[cut..].to_vec()];
                    FaultOp::Split { groups, dur_ms: rng.gen_range(b..2 * b) }
                }
                3 | 4 => {
                    let p = rng.gen_range(0..n);
                    let q = (p + rng.gen_range(1..n)) % n;
                    let dur_ms = rng.gen_range(config.delta_ms..=3 * config.delta_ms);
                    if rng.gen_bool(0.5) {
                        FaultOp::SeverPair { p, q, dur_ms }
                    } else {
                        FaultOp::SeverOneWay { p, q, dur_ms }
                    }
                }
                5 => {
                    let p = rng.gen_range(0..n);
                    FaultOp::Kick { p, q: (p + rng.gen_range(1..n)) % n }
                }
                6 | 7 => {
                    let p = rng.gen_range(0..n);
                    let down_ms = rng.gen_range(b / 2..=3 * b / 2);
                    if free(&busy, p, at, at + down_ms + b) {
                        busy[p as usize].push((at, at + down_ms + b));
                        crashes.push((p, at, at + down_ms + b));
                        FaultOp::Crash { p, down_ms }
                    } else {
                        FaultOp::Kick { p, q: (p + 1) % n }
                    }
                }
                8 => {
                    let p = rng.gen_range(0..n);
                    let dur_ms = rng.gen_range(config.delta_ms..=b / 2);
                    if free(&busy, p, at, at + dur_ms) {
                        busy[p as usize].push((at, at + dur_ms));
                        FaultOp::Stall { p, dur_ms }
                    } else {
                        FaultOp::Kick { p, q: (p + 1) % n }
                    }
                }
                _ => {
                    let p = rng.gen_range(0..n);
                    FaultOp::Dup { p, q: (p + rng.gen_range(1..n)) % n }
                }
            };
            faults.push(ScheduledFault { at, op });
        }
        faults.sort_by_key(|f| (f.at, render_op(&f.op)));

        // Submissions: unique values, spread over the active window,
        // never aimed at a node inside a crash window (the value would
        // die with the incarnation before being broadcast).
        let mut submits = Vec::new();
        for v in 1..=config.submits as u64 {
            let at = rng.gen_range(10..hi);
            let mut node = rng.gen_range(0..n);
            for _ in 0..n {
                let crashed = crashes.iter().any(|&(p, s, e)| p == node && at >= s && at <= e);
                if !crashed {
                    break;
                }
                node = (node + 1) % n;
            }
            submits.push(ScheduledSubmit { at, node, value: v });
        }
        submits.sort_by_key(|s| (s.at, s.value));

        Scenario { config: config.clone(), submits, faults }
    }

    /// Renders the scenario as the plain-text artifact format (one
    /// header line, then one line per submission and per fault).
    pub fn render(&self) -> String {
        let c = &self.config;
        let mut out = String::from("# gcs-sim scenario v1\n");
        let _ = writeln!(
            out,
            "config n={} delta_ms={} active_ms={} submits={} fault_budget={} \
             send_queue={} seed={} fixed_delay={} bug_dup_token={} adaptive_detector={}",
            c.n,
            c.delta_ms,
            c.active_ms,
            c.submits,
            c.fault_budget,
            c.send_queue,
            c.seed,
            c.fixed_delay as u8,
            c.bug_dup_token as u8,
            c.adaptive_detector as u8,
        );
        for s in &self.submits {
            let _ = writeln!(out, "submit at={} node={} value={}", s.at, s.node, s.value);
        }
        for f in &self.faults {
            let _ = writeln!(out, "fault at={} {}", f.at, render_op(&f.op));
        }
        out
    }

    /// Parses the format produced by [`Scenario::render`].
    pub fn parse(text: &str) -> Result<Scenario, String> {
        let mut config: Option<SimConfig> = None;
        let mut submits = Vec::new();
        let mut faults = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |m: &str| format!("line {}: {m}: {line:?}", lineno + 1);
            let mut words = line.split_whitespace();
            match words.next() {
                Some("config") => {
                    let mut c = SimConfig::default();
                    for kv in words {
                        let (k, v) = kv.split_once('=').ok_or_else(|| err("expected k=v"))?;
                        let u = || v.parse::<u64>().map_err(|_| err("bad number"));
                        match k {
                            "n" => c.n = u()? as u32,
                            "delta_ms" => c.delta_ms = u()?,
                            "active_ms" => c.active_ms = u()?,
                            "submits" => c.submits = u()? as u32,
                            "fault_budget" => c.fault_budget = u()? as u32,
                            "send_queue" => c.send_queue = u()? as usize,
                            "seed" => c.seed = u()?,
                            "fixed_delay" => c.fixed_delay = u()? != 0,
                            "bug_dup_token" => c.bug_dup_token = u()? != 0,
                            "adaptive_detector" => c.adaptive_detector = u()? != 0,
                            _ => return Err(err("unknown config key")),
                        }
                    }
                    config = Some(c);
                }
                Some("submit") => {
                    let kv = parse_kv(words.collect(), &err)?;
                    submits.push(ScheduledSubmit {
                        at: field(&kv, "at", &err)?,
                        node: field(&kv, "node", &err)? as u32,
                        value: field(&kv, "value", &err)?,
                    });
                }
                Some("fault") => {
                    let mut rest: Vec<&str> = words.collect();
                    if rest.len() < 2 {
                        return Err(err("fault needs at= and an op"));
                    }
                    let at_kv = rest.remove(0);
                    let at = at_kv
                        .strip_prefix("at=")
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("expected at=<ms>"))?;
                    let opname = rest.remove(0);
                    let op = parse_op(opname, rest, &err)?;
                    faults.push(ScheduledFault { at, op });
                }
                _ => return Err(err("unknown directive")),
            }
        }
        let config = config.ok_or_else(|| "missing config line".to_string())?;
        Ok(Scenario { config, submits, faults })
    }
}

fn render_op(op: &FaultOp) -> String {
    match op {
        FaultOp::Split { groups, dur_ms } => {
            let gs: Vec<String> = groups
                .iter()
                .map(|g| g.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(","))
                .collect();
            format!("split groups={} dur={dur_ms}", gs.join("|"))
        }
        FaultOp::SeverPair { p, q, dur_ms } => format!("sever p={p} q={q} dur={dur_ms}"),
        FaultOp::SeverOneWay { p, q, dur_ms } => format!("sever1 p={p} q={q} dur={dur_ms}"),
        FaultOp::Flap { p, q, period_ms, count } => {
            format!("flap p={p} q={q} period={period_ms} count={count}")
        }
        FaultOp::SlowOneWay { p, q, factor, dur_ms } => {
            format!("slow1 p={p} q={q} factor={factor} dur={dur_ms}")
        }
        FaultOp::Bimodal { prob_pct, factor, dur_ms } => {
            format!("bimodal prob={prob_pct} factor={factor} dur={dur_ms}")
        }
        FaultOp::Kick { p, q } => format!("kick p={p} q={q}"),
        FaultOp::Crash { p, down_ms } => format!("crash p={p} down={down_ms}"),
        FaultOp::Stall { p, dur_ms } => format!("stall p={p} dur={dur_ms}"),
        FaultOp::Dup { p, q } => format!("dup p={p} q={q}"),
    }
}

type Kv<'a> = Vec<(&'a str, &'a str)>;

fn parse_kv<'a>(words: Vec<&'a str>, err: &dyn Fn(&str) -> String) -> Result<Kv<'a>, String> {
    words.into_iter().map(|w| w.split_once('=').ok_or_else(|| err("expected k=v"))).collect()
}

fn field(kv: &Kv<'_>, key: &str, err: &dyn Fn(&str) -> String) -> Result<u64, String> {
    kv.iter()
        .find(|(k, _)| *k == key)
        .ok_or_else(|| err(&format!("missing {key}=")))?
        .1
        .parse()
        .map_err(|_| err("bad number"))
}

fn parse_op(name: &str, rest: Vec<&str>, err: &dyn Fn(&str) -> String) -> Result<FaultOp, String> {
    let kv = parse_kv(rest, err)?;
    Ok(match name {
        "split" => {
            let groups_raw =
                kv.iter().find(|(k, _)| *k == "groups").ok_or_else(|| err("missing groups="))?.1;
            let groups: Result<Vec<Vec<u32>>, String> = groups_raw
                .split('|')
                .map(|g| {
                    g.split(',')
                        .map(|p| p.parse::<u32>().map_err(|_| err("bad group member")))
                        .collect()
                })
                .collect();
            FaultOp::Split { groups: groups?, dur_ms: field(&kv, "dur", err)? }
        }
        "sever" => FaultOp::SeverPair {
            p: field(&kv, "p", err)? as u32,
            q: field(&kv, "q", err)? as u32,
            dur_ms: field(&kv, "dur", err)?,
        },
        "sever1" => FaultOp::SeverOneWay {
            p: field(&kv, "p", err)? as u32,
            q: field(&kv, "q", err)? as u32,
            dur_ms: field(&kv, "dur", err)?,
        },
        "flap" => FaultOp::Flap {
            p: field(&kv, "p", err)? as u32,
            q: field(&kv, "q", err)? as u32,
            period_ms: field(&kv, "period", err)?,
            count: field(&kv, "count", err)? as u32,
        },
        "slow1" => FaultOp::SlowOneWay {
            p: field(&kv, "p", err)? as u32,
            q: field(&kv, "q", err)? as u32,
            factor: field(&kv, "factor", err)? as u32,
            dur_ms: field(&kv, "dur", err)?,
        },
        "bimodal" => FaultOp::Bimodal {
            prob_pct: field(&kv, "prob", err)? as u32,
            factor: field(&kv, "factor", err)? as u32,
            dur_ms: field(&kv, "dur", err)?,
        },
        "kick" => {
            FaultOp::Kick { p: field(&kv, "p", err)? as u32, q: field(&kv, "q", err)? as u32 }
        }
        "crash" => {
            FaultOp::Crash { p: field(&kv, "p", err)? as u32, down_ms: field(&kv, "down", err)? }
        }
        "stall" => {
            FaultOp::Stall { p: field(&kv, "p", err)? as u32, dur_ms: field(&kv, "dur", err)? }
        }
        "dup" => FaultOp::Dup { p: field(&kv, "p", err)? as u32, q: field(&kv, "q", err)? as u32 },
        _ => return Err(err("unknown fault op")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let cfg = SimConfig { seed: 7, ..Default::default() };
        assert_eq!(Scenario::generate(&cfg), Scenario::generate(&cfg));
    }

    #[test]
    fn render_parse_round_trips() {
        for seed in 0..20 {
            let cfg = SimConfig { seed, fault_budget: 10, ..Default::default() };
            let sc = Scenario::generate(&cfg);
            let back = Scenario::parse(&sc.render()).expect("parse rendered scenario");
            assert_eq!(sc, back, "seed {seed}");
        }
    }

    #[test]
    fn splits_partition_the_node_set() {
        for seed in 0..50 {
            let cfg = SimConfig { seed, fault_budget: 12, ..Default::default() };
            let sc = Scenario::generate(&cfg);
            for f in &sc.faults {
                if let FaultOp::Split { groups, .. } = &f.op {
                    let mut all: Vec<u32> = groups.iter().flatten().copied().collect();
                    all.sort_unstable();
                    assert_eq!(all, (0..cfg.n).collect::<Vec<_>>());
                }
            }
        }
    }

    #[test]
    fn submissions_carry_unique_values() {
        let cfg = SimConfig { seed: 3, submits: 100, ..Default::default() };
        let sc = Scenario::generate(&cfg);
        let mut vals: Vec<u64> = sc.submits.iter().map(|s| s.value).collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), 100);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Scenario::parse("nonsense").is_err());
        assert!(Scenario::parse("config n=oops").is_err());
        assert!(Scenario::parse("").is_err(), "missing config line");
    }
}
