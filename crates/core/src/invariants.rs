//! The invariants of Lemma 4.1 and Section 6.1, as executable predicates
//! over the global state of `VStoTO-system`.
//!
//! Each lemma of the paper's safety proof becomes a named check returning
//! `Err` with an explanation on violation. The experiment harness installs
//! all of them on randomly scheduled executions (experiment E6); a
//! transcription error in the algorithm of Figures 8–10 or the machine of
//! Figure 6 would surface here as a violation.
//!
//! Every check takes the state **and** a [`DerivedState`] snapshot, so the
//! derived variables (`allstate`, `allcontent`, `allconfirm`, the quorum
//! views) are computed once per state and shared across the whole suite
//! instead of being rebuilt inside each lemma.
//!
//! Notes on the handful of places where the paper's statement needs a
//! side condition to be checkable:
//!
//! - Lemma 6.16 is checked for summaries with `high ≠ ⊥`; for `high = ⊥`
//!   we check the (implicit) base fact that the tentative order is empty.
//! - Lemma 6.22(1) is checked for summaries with a nonempty confirmed
//!   prefix; the empty prefix carries no information (and the initial view
//!   `P₀` need not contain a quorum in general).
//! - Lemmas 6.18/6.19 quantify over all prefixes σ; we check the largest
//!   applicable σ (the longest common prefix of the relevant
//!   `buildorder`s), which implies the property for every shorter prefix.

use crate::derived::DerivedState;
use crate::msg::AppMsg;
use crate::system::SysState;
use crate::vstoto::ProcStatus;
use gcs_model::seq::{common_prefix, is_prefix};
use gcs_model::{Label, ProcId, ViewId};

/// A named invariant over the composed system state plus its derived-state
/// snapshot.
pub type Invariant = (&'static str, fn(&SysState, &DerivedState<'_>) -> Result<(), String>);

/// Every invariant in this module, in paper order.
pub fn all_invariants() -> Vec<Invariant> {
    vec![
        ("L4.1.1 unique view per id", lemma_4_1_1),
        ("L4.1.2-3 current view created, self inclusion", lemma_4_1_2_3),
        ("L4.1.4-6 pending implies created/known/monotone", lemma_4_1_4_6),
        ("L4.1.7-9 queue implies created/known/monotone", lemma_4_1_7_9),
        ("L4.1.10-12 next pointers within queue", lemma_4_1_10_12),
        ("L4.1.13-14 nonunit pointers only for members", lemma_4_1_13_14),
        ("L6.1 layer agreement on current view", lemma_6_1),
        ("L6.2 no exchange before a view is known", lemma_6_2),
        ("L6.3 labels match their residence view", lemma_6_3),
        ("L6.4 labels below the next label", lemma_6_4),
        ("L6.5 allcontent is a function", lemma_6_5),
        ("L6.6 buffered labels have content", lemma_6_6),
        ("L6.7 nothing from the future", lemma_6_7),
        ("L6.8 send status means nothing sent yet", lemma_6_8),
        ("L6.9 collect status freezes the summary", lemma_6_9),
        ("L6.10 established implies reached", lemma_6_10),
        ("L6.11 highprimary upper bounds", lemma_6_11),
        ("L6.12 summary high bounded by view", lemma_6_12),
        ("L6.13 established primaries persist in highprimary", lemma_6_13),
        ("L6.14 established primaries persist in summaries", lemma_6_14),
        ("L6.15 no self-high before establishment", lemma_6_15),
        ("L6.16 orders trace to an establisher", lemma_6_16),
        ("L6.17 establishment implies members reached", lemma_6_17),
        ("L6.18-19 established-primary prefixes propagate", lemma_6_18_19),
        ("L6.20 safe labels are ordered everywhere", lemma_6_20),
        ("L6.21 orders closed under sent-before", lemma_6_21),
        ("L6.22 confirms have quorum support", lemma_6_22),
        ("C6.23 confirm below ord across summaries", corollary_6_23),
        ("C6.24 confirms are consistent", corollary_6_24),
    ]
}

/// Checks every invariant against one shared snapshot, reporting the first
/// violation as `"name: explanation"`.
pub fn check_all(s: &SysState, d: &DerivedState<'_>) -> Result<(), String> {
    for (name, check) in all_invariants() {
        check(s, d).map_err(|e| format!("{name}: {e}"))?;
    }
    Ok(())
}

/// Installs the invariant suite on a runner for the composed system, as a
/// single check that builds the [`DerivedState`] snapshot once per state.
pub fn install_invariants<E>(runner: &mut gcs_ioa::Runner<crate::system::VsToToSystem, E>)
where
    E: gcs_ioa::Environment<crate::system::VsToToSystem>,
{
    runner.add_invariant("invariant suite", |s| {
        let d = DerivedState::new(s);
        check_all(s, &d)
    });
}

fn fail(msg: String) -> Result<(), String> {
    Err(msg)
}

// ---------------------------------------------------------------------
// Lemma 4.1 — VS-machine state invariants
// ---------------------------------------------------------------------

fn lemma_4_1_1(s: &SysState, _d: &DerivedState<'_>) -> Result<(), String> {
    let mut seen = std::collections::BTreeMap::new();
    for v in &s.vs.created {
        if let Some(other) = seen.insert(v.id, &v.set) {
            return fail(format!("view id {} created with sets {:?} and {:?}", v.id, other, v.set));
        }
    }
    Ok(())
}

fn lemma_4_1_2_3(s: &SysState, _d: &DerivedState<'_>) -> Result<(), String> {
    for (&p, cv) in &s.vs.current_viewid {
        if let Some(g) = cv {
            let Some(view) = s.vs.created_view(*g) else {
                return fail(format!("current-viewid[{p}] = {g} not created"));
            };
            if !view.contains(p) {
                return fail(format!("{p} not a member of its current view {g}"));
            }
        }
    }
    Ok(())
}

fn lemma_4_1_4_6(s: &SysState, d: &DerivedState<'_>) -> Result<(), String> {
    for ((p, g), pend) in &s.vs.pending {
        if pend.is_empty() {
            continue;
        }
        if !d.created_ids.contains(g) {
            return fail(format!("pending[{p},{g}] nonempty but {g} not created"));
        }
        match s.vs.current_viewid(*p) {
            None => return fail(format!("pending[{p},{g}] nonempty but current-viewid = ⊥")),
            Some(cur) if *g > cur => {
                return fail(format!("pending[{p},{g}] nonempty but current-viewid = {cur} < {g}"))
            }
            _ => {}
        }
    }
    Ok(())
}

fn lemma_4_1_7_9(s: &SysState, d: &DerivedState<'_>) -> Result<(), String> {
    for (g, queue) in &s.vs.queue {
        if queue.is_empty() {
            continue;
        }
        if !d.created_ids.contains(g) {
            return fail(format!("queue[{g}] nonempty but {g} not created"));
        }
        for (_, p) in queue {
            match s.vs.current_viewid(*p) {
                None => return fail(format!("⟨m,{p}⟩ in queue[{g}] but current-viewid = ⊥")),
                Some(cur) if *g > cur => {
                    return fail(format!("⟨m,{p}⟩ in queue[{g}] but current-viewid = {cur} < {g}"))
                }
                _ => {}
            }
        }
    }
    Ok(())
}

fn lemma_4_1_10_12(s: &SysState, _d: &DerivedState<'_>) -> Result<(), String> {
    for (&(p, g), &n) in &s.vs.next_map {
        let len = s.vs.queue_of(g).len() as u64;
        if n > len + 1 {
            return fail(format!("next[{p},{g}] = {n} > |queue|+1 = {}", len + 1));
        }
    }
    for (&(p, g), &ns) in &s.vs.next_safe_map {
        let len = s.vs.queue_of(g).len() as u64;
        if ns > len + 1 {
            return fail(format!("next-safe[{p},{g}] = {ns} > |queue|+1 = {}", len + 1));
        }
        if ns > s.vs.next(p, g) {
            return fail(format!("next-safe[{p},{g}] = {ns} > next = {}", s.vs.next(p, g)));
        }
    }
    Ok(())
}

fn lemma_4_1_13_14(s: &SysState, _d: &DerivedState<'_>) -> Result<(), String> {
    let check = |map: &std::collections::BTreeMap<(ProcId, ViewId), u64>,
                 name: &str|
     -> Result<(), String> {
        for (&(p, g), &n) in map {
            if n != 1 {
                if let Some(view) = s.vs.created_view(g) {
                    if !view.contains(p) {
                        return fail(format!("{name}[{p},{g}] = {n} but {p} ∉ membership"));
                    }
                }
            }
        }
        Ok(())
    };
    check(&s.vs.next_map, "next")?;
    check(&s.vs.next_safe_map, "next-safe")
}

// ---------------------------------------------------------------------
// Section 6.1 — invariants of the composed system
// ---------------------------------------------------------------------

fn lemma_6_1(s: &SysState, _d: &DerivedState<'_>) -> Result<(), String> {
    for (&p, proc) in &s.procs {
        let vs_cur = s.vs.current_viewid(p);
        match (&proc.current, vs_cur) {
            (None, None) => {}
            (Some(v), Some(g)) => {
                if v.id != g {
                    return fail(format!("current.id_{p} = {} but VS has {g}", v.id));
                }
                if !s.vs.created.contains(v) {
                    return fail(format!("current_{p} = {v} not in created"));
                }
            }
            (a, b) => {
                return fail(format!("⊥-disagreement at {p}: proc {a:?} vs VS {b:?}"));
            }
        }
    }
    Ok(())
}

fn lemma_6_2(s: &SysState, _d: &DerivedState<'_>) -> Result<(), String> {
    for (&p, proc) in &s.procs {
        if proc.current.is_none() && proc.status != ProcStatus::Normal {
            return fail(format!("{p} has status {:?} at ⊥", proc.status));
        }
    }
    Ok(())
}

fn lemma_6_3(s: &SysState, _d: &DerivedState<'_>) -> Result<(), String> {
    // Part 1: buffer labels carry the owner and its current view.
    for (&p, proc) in &s.procs {
        for l in &proc.buffer {
            let Some(cur) = proc.current_id() else {
                return fail(format!("{p} buffers {l} at ⊥"));
            };
            if l.origin != p || l.view != cur {
                return fail(format!("{p} buffers foreign/stale label {l} (current {cur})"));
            }
        }
    }
    // Parts 2–3: ordinary messages in pending/queue match sender and view.
    let check_val = |l: &Label, p: ProcId, g: ViewId, whr: &str| -> Result<(), String> {
        if l.origin != p || l.view != g {
            return fail(format!("label {l} from {p} in {whr}[{g}]"));
        }
        if s.procs[&p].current.is_none() {
            return fail(format!("label {l} in {whr} but {p} at ⊥"));
        }
        Ok(())
    };
    for ((p, g), pend) in &s.vs.pending {
        for m in pend {
            if let AppMsg::Val(l, _) = m {
                check_val(l, *p, *g, "pending")?;
            }
        }
    }
    for (g, queue) in &s.vs.queue {
        for (m, p) in queue {
            if let AppMsg::Val(l, _) = m {
                check_val(l, *p, *g, "queue")?;
            }
        }
    }
    Ok(())
}

fn lemma_6_4(s: &SysState, d: &DerivedState<'_>) -> Result<(), String> {
    let ac = d.allcontent.as_ref().map_err(|l| format!("allcontent not a function at {l}"))?;
    for l in ac.keys() {
        let proc = &s.procs[&l.origin];
        match proc.current_id() {
            None => {
                return fail(format!("{l} exists but origin {} is at ⊥", l.origin));
            }
            Some(cur) => {
                let bound = Label::new(cur, proc.nextseqno, l.origin);
                if *l >= bound {
                    return fail(format!("{l} ≥ next label {bound} of {}", l.origin));
                }
            }
        }
    }
    Ok(())
}

fn lemma_6_5(_s: &SysState, d: &DerivedState<'_>) -> Result<(), String> {
    d.allcontent.as_ref().map(|_| ()).map_err(|l| format!("two values for label {l}"))
}

fn lemma_6_6(s: &SysState, _d: &DerivedState<'_>) -> Result<(), String> {
    for (&p, proc) in &s.procs {
        for l in &proc.buffer {
            if !proc.content.contains_key(l) {
                return fail(format!("{p} buffers {l} without content"));
            }
        }
    }
    Ok(())
}

fn lemma_6_7(s: &SysState, d: &DerivedState<'_>) -> Result<(), String> {
    for (&p, proc) in &s.procs {
        for &g in &d.created_ids {
            let future = match proc.current_id() {
                None => true,
                Some(cur) => cur < g,
            };
            if !future {
                continue;
            }
            if !d.for_pg(p, g).is_empty() {
                return fail(format!("allstate[{p},{g}] nonempty before {p} reached {g}"));
            }
        }
        // Parts 5–6: no labels of a view the origin has not reached.
        for (_, _, x) in &d.entries {
            for l in x.con.keys() {
                if l.origin == p {
                    let reached = proc.current_id().is_some_and(|cur| cur >= l.view);
                    if !reached {
                        return fail(format!(
                            "label {l} exists but {p} has not reached {}",
                            l.view
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

fn lemma_6_8(s: &SysState, _d: &DerivedState<'_>) -> Result<(), String> {
    for (&p, proc) in &s.procs {
        if proc.status != ProcStatus::Send {
            continue;
        }
        let Some(g) = proc.current_id() else { continue };
        if s.vs.pending.get(&(p, g)).is_some_and(|q| !q.is_empty()) {
            return fail(format!("{p} in send status but pending[{p},{g}] nonempty"));
        }
        if s.vs.queue_of(g).iter().any(|(_, sender)| *sender == p) {
            return fail(format!("{p} in send status but queue[{g}] has its message"));
        }
        for (&q, other) in &s.procs {
            if other.current_id() == Some(g) && other.gotstate.contains_key(&p) {
                return fail(format!("{p} in send status but gotstate_{q} has its summary"));
            }
        }
    }
    Ok(())
}

fn lemma_6_9(s: &SysState, d: &DerivedState<'_>) -> Result<(), String> {
    for (&p, proc) in &s.procs {
        if proc.status != ProcStatus::Collect {
            continue;
        }
        let Some(g) = proc.current_id() else { continue };
        for (_, _, x) in d.for_pg(p, g) {
            if !x.con.keys().all(|l| proc.content.contains_key(&l)) {
                return fail(format!("collect at {p}: summary con ⊄ content"));
            }
            if x.ord != &proc.order[..] {
                return fail(format!("collect at {p}: summary ord differs from order"));
            }
            if x.next != proc.nextconfirm {
                return fail(format!("collect at {p}: summary next differs"));
            }
            if x.high != proc.highprimary {
                return fail(format!("collect at {p}: summary high differs"));
            }
        }
    }
    Ok(())
}

fn lemma_6_10(s: &SysState, _d: &DerivedState<'_>) -> Result<(), String> {
    for &(p, g) in &s.established {
        match s.procs[&p].current_id() {
            None => return fail(format!("established[{p},{g}] but current = ⊥")),
            Some(cur) if cur < g => {
                return fail(format!("established[{p},{g}] but current {cur} < {g}"))
            }
            _ => {}
        }
    }
    for (&p, proc) in &s.procs {
        if let Some(cur) = proc.current_id() {
            let est = s.is_established(p, cur);
            let normal = proc.status == ProcStatus::Normal;
            if est != normal {
                return fail(format!(
                    "established[{p},{cur}] = {est} but status = {:?}",
                    proc.status
                ));
            }
        }
    }
    Ok(())
}

fn lemma_6_11(s: &SysState, _d: &DerivedState<'_>) -> Result<(), String> {
    for (&p, proc) in &s.procs {
        if let Some(cur) = proc.current_id() {
            let est = s.is_established(p, cur);
            if est && proc.primary() && proc.highprimary != Some(cur) {
                return fail(format!(
                    "{p} established primary {cur} but highprimary = {:?}",
                    proc.highprimary
                ));
            }
            if est && !proc.primary() && (proc.highprimary >= Some(cur)) {
                return fail(format!(
                    "{p} established non-primary {cur} but highprimary = {:?}",
                    proc.highprimary
                ));
            }
            if !est && (proc.highprimary >= Some(cur)) {
                return fail(format!(
                    "{p} not established in {cur} but highprimary = {:?}",
                    proc.highprimary
                ));
            }
            // Part 4: recorded summaries are strictly older than the view.
            for (q, x) in &proc.gotstate {
                if x.high >= Some(cur) {
                    return fail(format!(
                        "gotstate_{p}({q}).high = {:?} not below current {cur}",
                        x.high
                    ));
                }
            }
        }
    }
    // Parts 5–6: in-flight summaries are strictly older than their view.
    for (g, queue) in &s.vs.queue {
        for (m, q) in queue {
            if let AppMsg::Summary(x) = m {
                if x.high >= Some(*g) {
                    return fail(format!("queue[{g}] summary from {q} has high {:?}", x.high));
                }
            }
        }
    }
    for ((q, g), pend) in &s.vs.pending {
        for m in pend {
            if let AppMsg::Summary(x) = m {
                if x.high >= Some(*g) {
                    return fail(format!("pending[{q},{g}] summary has high {:?}", x.high));
                }
            }
        }
    }
    Ok(())
}

fn lemma_6_12(s: &SysState, d: &DerivedState<'_>) -> Result<(), String> {
    for &(p, g, x) in &d.entries {
        if x.high > Some(g) {
            return fail(format!("allstate[{p},{g}] has high {:?} > {g}", x.high));
        }
        if let Some(cur) = s.procs[&p].current_id() {
            if x.high > Some(cur) {
                return fail(format!("allstate[{p},{g}].high {:?} > current {cur}", x.high));
            }
        }
    }
    Ok(())
}

fn lemma_6_13(s: &SysState, d: &DerivedState<'_>) -> Result<(), String> {
    for v in &d.quorum_views {
        for (&p, proc) in &s.procs {
            if s.is_established(p, v.id)
                && proc.current_id().is_some_and(|cur| cur > v.id)
                && (proc.highprimary < Some(v.id))
            {
                return fail(format!(
                    "{p} established primary {} and moved on, but highprimary = {:?}",
                    v.id, proc.highprimary
                ));
            }
        }
    }
    Ok(())
}

fn lemma_6_14(s: &SysState, d: &DerivedState<'_>) -> Result<(), String> {
    for v in &d.quorum_views {
        for &p in s.procs.keys() {
            if !s.is_established(p, v.id) {
                continue;
            }
            for &(q, g, x) in &d.entries {
                if q == p && g > v.id && (x.high < Some(v.id)) {
                    return fail(format!(
                        "allstate[{p},{g}] has high {:?} < established primary {}",
                        x.high, v.id
                    ));
                }
            }
        }
    }
    Ok(())
}

fn lemma_6_15(s: &SysState, d: &DerivedState<'_>) -> Result<(), String> {
    for (&p, proc) in &s.procs {
        if let Some(g) = proc.current_id() {
            if !s.is_established(p, g) {
                for (_, _, x) in d.for_pg(p, g) {
                    if x.high == Some(g) {
                        return fail(format!(
                            "allstate[{p},{g}] has high = {g} before establishment"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

fn lemma_6_16(s: &SysState, d: &DerivedState<'_>) -> Result<(), String> {
    for &(p, g, x) in &d.entries {
        match x.high {
            None => {
                if !x.ord.is_empty() {
                    return fail(format!("allstate[{p},{g}] has high = ⊥ but nonempty ord"));
                }
            }
            Some(h) => {
                let Some(v) = s.vs.created_view(h) else {
                    return fail(format!("allstate[{p},{g}].high = {h} not created"));
                };
                let witness = v.set.iter().any(|&q| {
                    s.is_established(q, h)
                        && s.buildorder(q, h) == x.ord
                        && (h == g || s.procs[&q].current_id().is_some_and(|cur| cur > h))
                });
                if !witness {
                    return fail(format!(
                        "allstate[{p},{g}] (high {h}, |ord| {}) has no establishing witness",
                        x.ord.len()
                    ));
                }
            }
        }
    }
    Ok(())
}

fn lemma_6_17(s: &SysState, _d: &DerivedState<'_>) -> Result<(), String> {
    for v in &s.vs.created {
        let someone = s.procs.keys().any(|&p| s.is_established(p, v.id));
        if !someone {
            continue;
        }
        for &q in &v.set {
            if s.procs[&q].current_id().is_none_or(|cur| cur < v.id) {
                return fail(format!(
                    "{} established by someone but member {q} has not reached it",
                    v.id
                ));
            }
        }
    }
    Ok(())
}

fn lemma_6_18_19(s: &SysState, d: &DerivedState<'_>) -> Result<(), String> {
    for v in &d.quorum_views {
        // Corollary 6.19 instance: all members established v.
        if v.set.iter().all(|&p| s.is_established(p, v.id)) {
            let mut sigma: Option<Vec<Label>> = None;
            for &p in &v.set {
                let b = s.buildorder(p, v.id).to_vec();
                sigma = Some(match sigma {
                    None => b,
                    Some(acc) => common_prefix(&acc, &b),
                });
            }
            let sigma = sigma.unwrap_or_default();
            for &(p, g, x) in &d.entries {
                if x.high >= Some(v.id) && !is_prefix(&sigma, x.ord) {
                    return fail(format!(
                        "σ of established primary {} (len {}) not a prefix of \
                         allstate[{p},{g}].ord (high {:?})",
                        v.id,
                        sigma.len(),
                        x.high
                    ));
                }
            }
        }
        // Lemma 6.18 instance: members that moved past v all established it.
        let movers: Vec<ProcId> = v
            .set
            .iter()
            .copied()
            .filter(|&p| s.procs[&p].current_id().is_some_and(|cur| cur > v.id))
            .collect();
        if !movers.is_empty() && movers.iter().all(|&p| s.is_established(p, v.id)) {
            let mut sigma: Option<Vec<Label>> = None;
            for &p in &movers {
                let b = s.buildorder(p, v.id).to_vec();
                sigma = Some(match sigma {
                    None => b,
                    Some(acc) => common_prefix(&acc, &b),
                });
            }
            let sigma = sigma.unwrap_or_default();
            for &(p, g, x) in &d.entries {
                if x.high > Some(v.id) && !is_prefix(&sigma, x.ord) {
                    return fail(format!(
                        "σ of left primary {} (len {}) not a prefix of \
                         allstate[{p},{g}].ord (high {:?})",
                        v.id,
                        sigma.len(),
                        x.high
                    ));
                }
            }
        }
    }
    Ok(())
}

fn lemma_6_20(s: &SysState, _d: &DerivedState<'_>) -> Result<(), String> {
    for (&p, proc) in &s.procs {
        if proc.safe_labels.is_empty() {
            continue;
        }
        if !proc.primary() {
            return fail(format!("{p} has safe labels in a non-primary view"));
        }
        let view = proc.current.as_ref().expect("primary implies a view");
        for l in &proc.safe_labels {
            let Some(idx) = proc.order.iter().position(|x| x == l) else {
                // A safe label not yet in the local order carries no prefix
                // obligation; confirm only fires for ordered labels.
                continue;
            };
            let sigma = &proc.order[..=idx];
            for &q in &view.set {
                if !is_prefix(sigma, s.buildorder(q, view.id)) {
                    return fail(format!(
                        "safe label {l} at {p}: prefix (len {}) not in buildorder[{q},{}]",
                        sigma.len(),
                        view.id
                    ));
                }
            }
        }
    }
    Ok(())
}

fn lemma_6_21(_s: &SysState, d: &DerivedState<'_>) -> Result<(), String> {
    let ac = d.allcontent.as_ref().map_err(|l| format!("allcontent not a function at {l}"))?;
    let labels: Vec<Label> = ac.keys().copied().collect();
    for &(p, g, x) in &d.entries {
        let pos: std::collections::BTreeMap<Label, usize> =
            x.ord.iter().enumerate().map(|(i, l)| (*l, i)).collect();
        for (i_prime, l_prime) in x.ord.iter().enumerate() {
            for l in &labels {
                if l.origin == l_prime.origin && l < l_prime {
                    match pos.get(l) {
                        Some(&i) if i < i_prime => {}
                        _ => {
                            return fail(format!(
                                "allstate[{p},{g}].ord has {l_prime} without prior {l}"
                            ))
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn lemma_6_22(s: &SysState, d: &DerivedState<'_>) -> Result<(), String> {
    for &(p, g, x) in &d.entries {
        // Part 2.
        if x.next > x.ord.len() as u64 + 1 {
            return fail(format!(
                "allstate[{p},{g}].next = {} > |ord|+1 = {}",
                x.next,
                x.ord.len() + 1
            ));
        }
        // Part 1, for nonempty confirmed prefixes.
        let confirm = x.confirm();
        if confirm.is_empty() {
            continue;
        }
        let supported = d.quorum_views.iter().any(|v| {
            Some(v.id) <= x.high
                && v.set.iter().all(|&q| {
                    s.is_established(q, v.id) && is_prefix(confirm, s.buildorder(q, v.id))
                })
        });
        if !supported {
            return fail(format!(
                "allstate[{p},{g}].confirm (len {}) lacks quorum-view support",
                confirm.len()
            ));
        }
    }
    Ok(())
}

fn corollary_6_23(_s: &SysState, d: &DerivedState<'_>) -> Result<(), String> {
    for &(p1, g1, x1) in &d.entries {
        for &(p2, g2, x2) in &d.entries {
            if x1.high <= x2.high && !is_prefix(x1.confirm(), x2.ord) {
                return fail(format!(
                    "confirm of allstate[{p1},{g1}] not a prefix of allstate[{p2},{g2}].ord"
                ));
            }
        }
    }
    Ok(())
}

fn corollary_6_24(_s: &SysState, d: &DerivedState<'_>) -> Result<(), String> {
    match &d.allconfirm {
        Some(_) => Ok(()),
        None => fail("confirm prefixes are not pairwise consistent".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::SystemAdversary;
    use crate::system::VsToToSystem;
    use gcs_ioa::{Automaton, Runner};
    use gcs_model::Majority;
    use std::sync::Arc;

    fn system(n: u32) -> VsToToSystem {
        let procs = ProcId::range(n);
        VsToToSystem::new(procs.clone(), procs, Arc::new(Majority::new(n as usize)))
    }

    #[test]
    fn all_invariants_hold_on_initial_state() {
        let s = system(3).initial();
        let d = DerivedState::new(&s);
        for (name, check) in all_invariants() {
            check(&s, &d).unwrap_or_else(|e| panic!("{name} on initial state: {e}"));
        }
    }

    #[test]
    fn all_invariants_hold_under_random_churn() {
        for seed in 0..4 {
            let mut runner = Runner::new(system(3), SystemAdversary::default(), seed);
            install_invariants(&mut runner);
            runner.run(700).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn invariants_hold_with_non_majority_quorums() {
        use gcs_model::Explicit;
        let procs = ProcId::range(3);
        let q = Explicit::new(vec![
            [ProcId(0), ProcId(1)].into(),
            [ProcId(0), ProcId(2)].into(),
            [ProcId(1), ProcId(2)].into(),
        ])
        .unwrap();
        let sys = VsToToSystem::new(procs.clone(), procs, Arc::new(q));
        let mut runner = Runner::new(sys, SystemAdversary::default(), 99);
        install_invariants(&mut runner);
        runner.run(600).unwrap_or_else(|e| panic!("{e}"));
    }

    /// A deliberately corrupted state must be caught: claiming an
    /// establishment for a view the processor never reached violates
    /// Lemma 6.10.
    #[test]
    fn corrupted_state_is_detected() {
        let sys = system(3);
        let mut s = sys.initial();
        s.established.insert((ProcId(0), gcs_model::ViewId::new(9, ProcId(0))));
        let d = DerivedState::new(&s);
        assert!(lemma_6_10(&s, &d).is_err());
    }
}
