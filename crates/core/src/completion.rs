//! Completion of an external VS trace into a full `VS-machine` execution
//! — the strongest form of conformance checking for the implementation.
//!
//! The cause checker ([`crate::cause`]) verifies the *properties* of
//! Lemma 4.2 on a trace; this module verifies *trace inclusion* outright:
//! given the external events recorded from the implementation
//! (`newview`, `gpsnd`, `gprcv`, `safe`), it reconstructs the hidden
//! internal actions (`createview`, `vs-order`) and replays the whole
//! sequence through the specification automaton, failing if any step is
//! not enabled. Success means the external trace *is* a trace of
//! `WeakVS-machine` — and therefore of `VS-machine`, by the
//! trace-equivalence of Section 4.1's remark (executably witnessed by
//! [`crate::weak_vs::reorder_createviews`]).
//!
//! Reconstruction rules:
//! - a `createview(v)` is inserted immediately before the first event
//!   that references view `v` (the weak machine does not require
//!   identifier-ordered creation, which matters because different
//!   processors install concurrent views in different orders);
//! - a `vs-order(m, p, g)` is inserted when a `gprcv` needs the next
//!   queue position filled and `m` is at the head of `pending[p,g]`.

use crate::vs_machine::{VsAction, VsState};
use crate::weak_vs::WeakVsMachine;
use gcs_ioa::Automaton;
use gcs_model::ProcId;
use std::collections::BTreeSet;
use std::fmt;

/// Completes and replays an external VS action sequence through
/// `WeakVS-machine`. On success returns the full action sequence
/// (externals plus reconstructed internals); on failure, the index of the
/// offending external event and an explanation.
pub fn complete_and_replay<M>(
    external: &[VsAction<M>],
    procs: BTreeSet<ProcId>,
    p0: BTreeSet<ProcId>,
) -> Result<Vec<VsAction<M>>, (usize, String)>
where
    M: Clone + PartialEq + fmt::Debug,
{
    let machine: WeakVsMachine<M> = WeakVsMachine::new(procs, p0);
    let mut state: VsState<M> = machine.initial();
    let mut full: Vec<VsAction<M>> = Vec::new();
    let perform = |state: &mut VsState<M>,
                   full: &mut Vec<VsAction<M>>,
                   idx: usize,
                   a: VsAction<M>|
     -> Result<(), (usize, String)> {
        if !machine.is_enabled(state, &a) {
            return Err((idx, format!("{a:?} not enabled in the specification")));
        }
        machine.apply(state, &a);
        full.push(a);
        Ok(())
    };

    for (idx, ev) in external.iter().enumerate() {
        match ev {
            VsAction::NewView { p, v } => {
                if !state.created.contains(v) {
                    perform(&mut state, &mut full, idx, VsAction::CreateView(v.clone()))?;
                }
                perform(&mut state, &mut full, idx, VsAction::NewView { p: *p, v: v.clone() })?;
            }
            VsAction::GpSnd { p, m } => {
                perform(&mut state, &mut full, idx, VsAction::GpSnd { p: *p, m: m.clone() })?;
            }
            VsAction::GpRcv { src, dst, m } => {
                // Ensure the queue reaches dst's next position with (m, src).
                let Some(g) = state.current_viewid(*dst) else {
                    return Err((idx, format!("gprcv at {dst} while its view is ⊥")));
                };
                let need = state.next(*dst, g) as usize;
                if state.queue_of(g).len() < need {
                    // The missing element must be the head of pending[src,g].
                    perform(
                        &mut state,
                        &mut full,
                        idx,
                        VsAction::VsOrder { p: *src, g, m: m.clone() },
                    )?;
                }
                perform(
                    &mut state,
                    &mut full,
                    idx,
                    VsAction::GpRcv { src: *src, dst: *dst, m: m.clone() },
                )?;
            }
            VsAction::Safe { src, dst, m } => {
                perform(
                    &mut state,
                    &mut full,
                    idx,
                    VsAction::Safe { src: *src, dst: *dst, m: m.clone() },
                )?;
            }
            VsAction::CreateView(_) | VsAction::VsOrder { .. } => {
                return Err((idx, "internal action in an external trace".to_string()));
            }
        }
    }
    Ok(full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_model::{Value, View, ViewId};

    type A = VsAction<Value>;

    fn p0() -> BTreeSet<ProcId> {
        ProcId::range(2)
    }

    #[test]
    fn clean_external_trace_completes() {
        let v = Value::from_u64(1);
        let external: Vec<A> = vec![
            VsAction::GpSnd { p: ProcId(0), m: v.clone() },
            VsAction::GpRcv { src: ProcId(0), dst: ProcId(0), m: v.clone() },
            VsAction::GpRcv { src: ProcId(0), dst: ProcId(1), m: v.clone() },
            VsAction::Safe { src: ProcId(0), dst: ProcId(1), m: v },
        ];
        let full = complete_and_replay(&external, p0(), p0()).expect("completes");
        // One vs-order inserted.
        assert_eq!(full.len(), external.len() + 1);
        assert!(matches!(full[1], VsAction::VsOrder { .. }));
    }

    #[test]
    fn views_installed_in_different_orders_complete() {
        // p0 installs g1 then g2; p1 jumps straight to g2 — and a third
        // view g3 references p1 only. CreateViews are reconstructed
        // on demand, out of identifier order if needed.
        let g1 = View::new(ViewId::new(1, ProcId(0)), [ProcId(0)].into());
        let g2 = View::new(ViewId::new(2, ProcId(0)), p0());
        let external: Vec<A> = vec![
            VsAction::NewView { p: ProcId(1), v: g2.clone() },
            VsAction::NewView { p: ProcId(0), v: g1.clone() },
            VsAction::NewView { p: ProcId(0), v: g2.clone() },
        ];
        complete_and_replay(&external, p0(), p0()).expect("completes");
    }

    #[test]
    fn phantom_delivery_fails() {
        let external: Vec<A> =
            vec![VsAction::GpRcv { src: ProcId(0), dst: ProcId(1), m: Value::from_u64(9) }];
        let err = complete_and_replay(&external, p0(), p0()).unwrap_err();
        assert_eq!(err.0, 0);
    }

    #[test]
    fn out_of_order_delivery_fails() {
        let v1 = Value::from_u64(1);
        let v2 = Value::from_u64(2);
        let external: Vec<A> = vec![
            VsAction::GpSnd { p: ProcId(0), m: v1 },
            VsAction::GpSnd { p: ProcId(0), m: v2.clone() },
            VsAction::GpRcv { src: ProcId(0), dst: ProcId(1), m: v2 },
        ];
        assert!(complete_and_replay(&external, p0(), p0()).is_err());
    }

    #[test]
    fn premature_safe_fails() {
        let v = Value::from_u64(1);
        let external: Vec<A> = vec![
            VsAction::GpSnd { p: ProcId(0), m: v.clone() },
            VsAction::GpRcv { src: ProcId(0), dst: ProcId(0), m: v.clone() },
            // p1 has not received yet: safe must be rejected.
            VsAction::Safe { src: ProcId(0), dst: ProcId(0), m: v },
        ];
        assert!(complete_and_replay(&external, p0(), p0()).is_err());
    }

    #[test]
    fn spec_machine_traces_complete() {
        use crate::adversary::VsAdversary;
        use crate::vs_machine::VsMachine;
        use gcs_ioa::Runner;
        for seed in 0..4 {
            let m: VsMachine<Value> = VsMachine::new(ProcId::range(3), ProcId::range(3));
            let mut runner = Runner::new(m, VsAdversary::default(), seed);
            let exec = runner.run(400).unwrap();
            let external: Vec<A> = exec
                .actions()
                .iter()
                .filter(|a| !matches!(a, VsAction::CreateView(_) | VsAction::VsOrder { .. }))
                .cloned()
                .collect();
            complete_and_replay(&external, ProcId::range(3), ProcId::range(3))
                .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        }
    }
}
