//! The conditional performance and fault-tolerance properties
//! `TO-property(b,d,Q)` (Figure 5) and `VS-property(b,d,Q)` (Figure 7),
//! as checkers over recorded timed traces.
//!
//! Both properties have the same shape: *if* the failure status stabilizes
//! at some time *l* to a consistently partitioned system in which the set
//! *Q* is good internally and cut off from the rest, *then* within a
//! stabilization interval *l′ ≤ b* the service settles (views converge for
//! VS; nothing for TO) and subsequent deliveries meet the deadline
//! `max(t, l+l′) + d`.
//!
//! The checkers work on finite traces, so deadlines that extend beyond the
//! end of the trace are *censored* (not counted as violations — the run
//! simply did not observe long enough); the reports say how many
//! obligations were censored. The checkers also *measure* the minimal
//! stabilization interval and the worst observed latency, which is what
//! experiments E2/E4 tabulate against the analytical bounds.

use gcs_ioa::TimedTrace;
use gcs_model::{FailureMap, ProcId, Status, Subject, Time, Value, View};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A unique message identifier assigned by the harness to match sends with
/// their deliveries and safe indications.
pub type MsgId = u64;

/// An observable event for the `TO-property` checker.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ToObs {
    /// `bcast(a)_p`.
    Bcast {
        /// Submitting location.
        p: ProcId,
        /// The data value (must be unique per submission).
        a: Value,
    },
    /// `brcv(a)_{p,q}`.
    Brcv {
        /// Origin of the value.
        src: ProcId,
        /// Receiving location.
        dst: ProcId,
        /// The data value.
        a: Value,
    },
    /// A failure-status input action.
    Fail {
        /// The location or directed pair.
        subject: Subject,
        /// The new status.
        status: Status,
    },
}

/// An observable event for the `VS-property` checker.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VsObs {
    /// `newview(v)_p`.
    NewView {
        /// The processor being informed.
        p: ProcId,
        /// The new view.
        v: View,
    },
    /// `gpsnd(m)_p`, with the harness-assigned message identifier.
    GpSnd {
        /// The sending processor.
        p: ProcId,
        /// Unique identifier of the message.
        mid: MsgId,
    },
    /// `gprcv(m)_{p,q}`.
    GpRcv {
        /// The original sender.
        src: ProcId,
        /// The receiving processor.
        dst: ProcId,
        /// Unique identifier of the message.
        mid: MsgId,
    },
    /// `safe(m)_{p,q}`.
    Safe {
        /// The original sender.
        src: ProcId,
        /// The processor receiving the indication.
        dst: ProcId,
        /// Unique identifier of the message.
        mid: MsgId,
    },
    /// A failure-status input action.
    Fail {
        /// The location or directed pair.
        subject: Subject,
        /// The new status.
        status: Status,
    },
}

/// Parameters of a conditional property check.
#[derive(Clone, Debug)]
pub struct PropertyParams {
    /// The stabilization-interval bound *b*.
    pub b: Time,
    /// The delivery bound *d*.
    pub d: Time,
    /// The stabilized set *Q*.
    pub q: BTreeSet<ProcId>,
    /// The ambient processor set *P*.
    pub ambient: BTreeSet<ProcId>,
}

/// The outcome of a conditional property check.
#[derive(Clone, Debug)]
pub struct PropertyReport {
    /// Whether the stabilization hypothesis held from some point on.
    pub applicable: bool,
    /// The stabilization time *l* (last failure event touching *Q*).
    pub l: Time,
    /// The measured minimal stabilization interval *l′*.
    pub measured_l_prime: Time,
    /// Worst delivery latency `T_v − max(t_v, l+l′)` over resolved
    /// obligations (the effective *d*).
    pub measured_d: Time,
    /// Obligations whose deadline fell within the trace and were met.
    pub resolved: usize,
    /// Obligations censored by the end of the trace.
    pub censored: usize,
    /// Violation descriptions (unmet deadlines, view divergence, …).
    pub violations: Vec<String>,
    /// Whether the property `(b, d, Q)` holds on this trace:
    /// vacuously if inapplicable, otherwise `measured_l′ ≤ b` and no
    /// violations.
    pub holds: bool,
}

impl fmt::Display for PropertyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "applicable={} l={} l'={} d_meas={} resolved={} censored={} violations={} holds={}",
            self.applicable,
            self.l,
            self.measured_l_prime,
            self.measured_d,
            self.resolved,
            self.censored,
            self.violations.len(),
            self.holds
        )
    }
}

fn touches_q(subject: &Subject, q: &BTreeSet<ProcId>) -> bool {
    match subject {
        Subject::Loc(p) => q.contains(p),
        Subject::Link(p, r) => q.contains(p) || q.contains(r),
    }
}

/// Locates the stabilization point: returns `Some(l)` if from time `l`
/// onwards no failure event touches `Q` and the final statuses satisfy the
/// partition hypothesis for `Q`.
fn stabilization_point<E>(
    trace: &TimedTrace<E>,
    fail_of: impl Fn(&E) -> Option<(Subject, Status)>,
    params: &PropertyParams,
) -> Option<Time> {
    let mut fm = FailureMap::all_good();
    let mut l = 0;
    for ev in trace.events() {
        if let Some((subject, status)) = fail_of(&ev.action) {
            fm.set(subject, status);
            if touches_q(&subject, &params.q) {
                l = ev.time;
            }
        }
    }
    fm.stabilized_for(&params.q, &params.ambient).then_some(l)
}

/// A delivery obligation: something that happened at `trigger_time` and
/// must be matched at every member of `Q` (`done` records the latest
/// matching time per member, `None` = not yet observed).
struct Obligation {
    what: String,
    trigger_time: Time,
    done: BTreeMap<ProcId, Option<Time>>,
}

/// Resolves a set of obligations against the deadline rule
/// `max(t, l+l′) + d`, measuring the minimal `l′` and the effective `d`.
fn resolve(
    obligations: Vec<Obligation>,
    l: Time,
    params: &PropertyParams,
    horizon: Time,
    report: &mut PropertyReport,
    extra_l_prime: Time,
) {
    // Minimal l' required by the delivery obligations.
    let mut l_prime: Time = extra_l_prime;
    let mut pending: Vec<(Obligation, Time)> = Vec::new(); // (obligation, T_v)
    for ob in obligations {
        let missing: Vec<ProcId> =
            ob.done.iter().filter(|(_, t)| t.is_none()).map(|(p, _)| *p).collect();
        if missing.is_empty() {
            let t_v = ob.done.values().map(|t| t.unwrap()).max().unwrap_or(ob.trigger_time);
            if t_v > ob.trigger_time + params.d {
                // Needs stabilization slack: l + l' ≥ t_v − d.
                l_prime = l_prime.max((t_v - params.d).saturating_sub(l));
            }
            pending.push((ob, t_v));
        } else {
            // Not delivered everywhere. With the largest allowed slack
            // (l' = b) would the deadline still fall inside the trace?
            let deadline = ob.trigger_time.max(l + params.b) + params.d;
            if deadline <= horizon {
                report.violations.push(format!(
                    "{} (t={}) undelivered at {missing:?} by deadline {deadline}",
                    ob.what, ob.trigger_time
                ));
            } else {
                report.censored += 1;
            }
        }
    }
    report.measured_l_prime = l_prime;
    // Effective d with the measured l'.
    for (ob, t_v) in pending {
        let start = ob.trigger_time.max(l + l_prime);
        report.measured_d = report.measured_d.max(t_v.saturating_sub(start));
        report.resolved += 1;
    }
    report.holds = report.measured_l_prime <= params.b && report.violations.is_empty();
}

/// Checks `TO-property(b, d, Q)` on a timed trace of `bcast`/`brcv`/
/// failure events.
///
/// Data values must be unique per `bcast` (the workload generators in this
/// repository guarantee it); the checker verifies this precondition.
pub fn check_to_property(trace: &TimedTrace<ToObs>, params: &PropertyParams) -> PropertyReport {
    let mut report = PropertyReport {
        applicable: false,
        l: 0,
        measured_l_prime: 0,
        measured_d: 0,
        resolved: 0,
        censored: 0,
        violations: Vec::new(),
        holds: true,
    };
    let Some(l) = stabilization_point(
        trace,
        |e| match e {
            ToObs::Fail { subject, status } => Some((*subject, *status)),
            _ => None,
        },
        params,
    ) else {
        return report; // vacuously holds
    };
    report.applicable = true;
    report.l = l;
    let horizon = trace.last_time();

    // Collect sends and deliveries, checking value uniqueness.
    let mut sent: BTreeMap<Value, (ProcId, Time)> = BTreeMap::new();
    let mut delivered: BTreeMap<Value, BTreeMap<ProcId, Time>> = BTreeMap::new();
    for ev in trace.events() {
        match &ev.action {
            ToObs::Bcast { p, a } => {
                if sent.insert(a.clone(), (*p, ev.time)).is_some() {
                    report
                        .violations
                        .push(format!("value {a:?} broadcast twice; checker needs unique values"));
                }
            }
            ToObs::Brcv { dst, a, .. } => {
                delivered.entry(a.clone()).or_default().entry(*dst).or_insert(ev.time);
            }
            ToObs::Fail { .. } => {}
        }
    }

    let mut obligations = Vec::new();
    // Condition (b): values sent from Q must reach all of Q.
    for (a, (p, t)) in &sent {
        if !params.q.contains(p) {
            continue;
        }
        let done = params
            .q
            .iter()
            .map(|&r| (r, delivered.get(a).and_then(|m| m.get(&r)).copied()))
            .collect();
        obligations.push(Obligation {
            what: format!("value {a:?} sent from {p}"),
            trigger_time: *t,
            done,
        });
    }
    // Condition (c): values delivered to any member of Q must reach all of Q.
    for (a, at) in &delivered {
        let Some(first_q) = at.iter().filter(|(r, _)| params.q.contains(r)).map(|(_, &t)| t).min()
        else {
            continue;
        };
        let done = params.q.iter().map(|&r| (r, at.get(&r).copied())).collect();
        obligations.push(Obligation {
            what: format!("value {a:?} delivered within Q"),
            trigger_time: first_q,
            done,
        });
    }
    resolve(obligations, l, params, horizon, &mut report, 0);
    report
}

/// Checks `VS-property(b, d, Q)` on a timed trace of VS events.
pub fn check_vs_property(trace: &TimedTrace<VsObs>, params: &PropertyParams) -> PropertyReport {
    let mut report = PropertyReport {
        applicable: false,
        l: 0,
        measured_l_prime: 0,
        measured_d: 0,
        resolved: 0,
        censored: 0,
        violations: Vec::new(),
        holds: true,
    };
    let Some(l) = stabilization_point(
        trace,
        |e| match e {
            VsObs::Fail { subject, status } => Some((*subject, *status)),
            _ => None,
        },
        params,
    ) else {
        return report;
    };
    report.applicable = true;
    report.l = l;
    let horizon = trace.last_time();

    // Conditions (b)+(c): after l + l′ no newview at Q, and the latest
    // views of all members of Q are one view ⟨g, S⟩ with S = Q. The
    // measured l′ is the time of the last newview at a member of Q.
    let mut last_view: BTreeMap<ProcId, (View, Time)> = BTreeMap::new();
    for ev in trace.events() {
        if let VsObs::NewView { p, v } = &ev.action {
            if params.q.contains(p) {
                last_view.insert(*p, (v.clone(), ev.time));
            }
        }
    }
    let mut last_nv: Time = 0;
    let mut final_view: Option<View> = None;
    let mut divergent = false;
    for &p in &params.q {
        match last_view.get(&p) {
            None => {
                report.violations.push(format!("{p} never installed a view"));
                divergent = true;
            }
            Some((v, t)) => {
                last_nv = last_nv.max(*t);
                match &final_view {
                    None => final_view = Some(v.clone()),
                    Some(w) if w != v => {
                        report.violations.push(format!(
                            "final views diverge within Q: {w} at earlier member vs {v} at {p}"
                        ));
                        divergent = true;
                    }
                    _ => {}
                }
            }
        }
    }
    let view_l_prime = last_nv.saturating_sub(l);
    let mut obligations = Vec::new();
    if let Some(v) = &final_view {
        if !divergent {
            if v.set != params.q {
                report
                    .violations
                    .push(format!("final view membership {:?} ≠ Q {:?}", v.set, params.q));
            } else {
                // Condition (d): messages sent from Q while in ⟨g,S⟩ become
                // safe at all members of Q.
                let mut current: BTreeMap<ProcId, Option<View>> = BTreeMap::new();
                let mut safes: BTreeMap<MsgId, BTreeMap<ProcId, Time>> = BTreeMap::new();
                let mut sends: Vec<(MsgId, ProcId, Time)> = Vec::new();
                for ev in trace.events() {
                    match &ev.action {
                        VsObs::NewView { p, v } => {
                            current.insert(*p, Some(v.clone()));
                        }
                        VsObs::GpSnd { p, mid }
                            if params.q.contains(p)
                                && current.get(p).cloned().flatten().as_ref()
                                    == final_view.as_ref() =>
                        {
                            sends.push((*mid, *p, ev.time));
                        }
                        VsObs::Safe { dst, mid, .. } => {
                            safes.entry(*mid).or_default().entry(*dst).or_insert(ev.time);
                        }
                        _ => {}
                    }
                }
                for (mid, p, t) in sends {
                    let done = params
                        .q
                        .iter()
                        .map(|&r| (r, safes.get(&mid).and_then(|m| m.get(&r)).copied()))
                        .collect();
                    obligations.push(Obligation {
                        what: format!("message #{mid} sent from {p} in the final view"),
                        trigger_time: t,
                        done,
                    });
                }
            }
        }
    }
    resolve(obligations, l, params, horizon, &mut report, view_l_prime);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_model::ViewId;

    fn params(b: Time, d: Time, qn: u32, n: u32) -> PropertyParams {
        PropertyParams { b, d, q: ProcId::range(qn), ambient: ProcId::range(n) }
    }

    /// Failure events declaring the partition {Q | rest} at `t`.
    fn partition_events(t: Time, qn: u32, n: u32) -> Vec<(Time, ToObs)> {
        let ambient = ProcId::range(n);
        let q = ProcId::range(qn);
        let rest: BTreeSet<ProcId> = ambient.difference(&q).copied().collect();
        let mut script = gcs_model::failure::FailureScript::new();
        script.partition(t, &[q, rest], &ambient);
        script
            .sorted_events()
            .iter()
            .map(|e| (e.time, ToObs::Fail { subject: e.subject, status: e.status }))
            .collect()
    }

    #[test]
    fn vacuous_when_never_stabilized() {
        let trace: TimedTrace<ToObs> =
            [(5, ToObs::Bcast { p: ProcId(0), a: Value::from_u64(1) })].into_iter().collect();
        // Cross links never went bad, so the hypothesis fails.
        let r = check_to_property(&trace, &params(10, 10, 2, 3));
        assert!(!r.applicable);
        assert!(r.holds);
    }

    #[test]
    fn timely_delivery_passes() {
        let mut evs = partition_events(10, 2, 3);
        let a = Value::from_u64(1);
        evs.push((20, ToObs::Bcast { p: ProcId(0), a: a.clone() }));
        evs.push((25, ToObs::Brcv { src: ProcId(0), dst: ProcId(0), a: a.clone() }));
        evs.push((26, ToObs::Brcv { src: ProcId(0), dst: ProcId(1), a: a.clone() }));
        evs.sort_by_key(|(t, _)| *t);
        let trace: TimedTrace<ToObs> = evs.into_iter().collect();
        let r = check_to_property(&trace, &params(5, 10, 2, 3));
        assert!(r.applicable);
        assert_eq!(r.l, 10);
        assert!(r.holds, "{:?}", r.violations);
        assert_eq!(r.measured_l_prime, 0);
        assert_eq!(r.measured_d, 6);
    }

    #[test]
    fn late_delivery_is_absorbed_by_l_prime_if_within_b() {
        let mut evs = partition_events(10, 2, 3);
        let a = Value::from_u64(1);
        // Sent before stabilization, delivered well after: needs slack.
        evs.insert(0, (1, ToObs::Bcast { p: ProcId(0), a: a.clone() }));
        evs.push((30, ToObs::Brcv { src: ProcId(0), dst: ProcId(0), a: a.clone() }));
        evs.push((34, ToObs::Brcv { src: ProcId(0), dst: ProcId(1), a: a.clone() }));
        evs.sort_by_key(|(t, _)| *t);
        let trace: TimedTrace<ToObs> = evs.into_iter().collect();
        // T_v = 34, d = 10 ⇒ need l + l' ≥ 24 ⇒ l' ≥ 14.
        let r = check_to_property(&trace, &params(20, 10, 2, 3));
        assert!(r.applicable);
        assert_eq!(r.measured_l_prime, 14);
        assert!(r.holds);
        // With b = 10 the same trace fails.
        let r2 = check_to_property(&trace, &params(10, 10, 2, 3));
        assert!(!r2.holds);
    }

    #[test]
    fn missing_delivery_within_horizon_fails() {
        let mut evs = partition_events(0, 2, 3);
        let a = Value::from_u64(1);
        evs.push((5, ToObs::Bcast { p: ProcId(0), a: a.clone() }));
        evs.push((6, ToObs::Brcv { src: ProcId(0), dst: ProcId(0), a: a.clone() }));
        // p1 never gets it; pad the horizon far beyond the deadline.
        evs.push((1000, ToObs::Bcast { p: ProcId(1), a: Value::from_u64(2) }));
        evs.sort_by_key(|(t, _)| *t);
        let trace: TimedTrace<ToObs> = evs.into_iter().collect();
        let r = check_to_property(&trace, &params(5, 10, 2, 3));
        assert!(!r.holds);
        assert!(r.violations[0].contains("undelivered"));
    }

    #[test]
    fn missing_delivery_beyond_horizon_is_censored() {
        let mut evs = partition_events(0, 2, 3);
        let a = Value::from_u64(1);
        evs.push((5, ToObs::Bcast { p: ProcId(0), a }));
        evs.sort_by_key(|(t, _)| *t);
        let trace: TimedTrace<ToObs> = evs.into_iter().collect();
        // Deadline max(5, 0+5)+10 = 15 > horizon 5: censored, not violated.
        let r = check_to_property(&trace, &params(5, 10, 2, 3));
        assert!(r.holds);
        assert_eq!(r.censored, 1);
    }

    #[test]
    fn vs_property_checks_view_convergence() {
        let q = ProcId::range(2);
        let ambient = ProcId::range(3);
        let rest: BTreeSet<ProcId> = ambient.difference(&q).copied().collect();
        let mut script = gcs_model::failure::FailureScript::new();
        script.partition(10, &[q.clone(), rest], &ambient);
        let mut evs: Vec<(Time, VsObs)> = script
            .sorted_events()
            .iter()
            .map(|e| (e.time, VsObs::Fail { subject: e.subject, status: e.status }))
            .collect();
        let v = View::new(ViewId::new(1, ProcId(0)), q.clone());
        evs.push((15, VsObs::NewView { p: ProcId(0), v: v.clone() }));
        evs.push((16, VsObs::NewView { p: ProcId(1), v: v.clone() }));
        evs.push((20, VsObs::GpSnd { p: ProcId(0), mid: 1 }));
        evs.push((22, VsObs::Safe { src: ProcId(0), dst: ProcId(0), mid: 1 }));
        evs.push((23, VsObs::Safe { src: ProcId(0), dst: ProcId(1), mid: 1 }));
        evs.sort_by_key(|(t, _)| *t);
        let trace: TimedTrace<VsObs> = evs.into_iter().collect();
        let r = check_vs_property(&trace, &params(10, 5, 2, 3));
        assert!(r.applicable);
        assert_eq!(r.measured_l_prime, 6, "l' is the last newview at Q");
        assert!(r.holds, "{:?}", r.violations);

        // A wrong final membership fails condition (c).
        let r2 = check_vs_property(&trace, &params(10, 5, 3, 3));
        assert!(!r2.applicable, "hypothesis needs Q cut off, not checked here");
    }

    #[test]
    fn vs_property_detects_divergent_final_views() {
        let q = ProcId::range(2);
        let ambient = ProcId::range(2);
        let mut script = gcs_model::failure::FailureScript::new();
        script.heal(0, &ambient);
        let mut evs: Vec<(Time, VsObs)> = script
            .sorted_events()
            .iter()
            .map(|e| (e.time, VsObs::Fail { subject: e.subject, status: e.status }))
            .collect();
        let v1 = View::new(ViewId::new(1, ProcId(0)), q.clone());
        let v2 = View::new(ViewId::new(2, ProcId(0)), q.clone());
        evs.push((5, VsObs::NewView { p: ProcId(0), v: v1 }));
        evs.push((6, VsObs::NewView { p: ProcId(1), v: v2 }));
        evs.sort_by_key(|(t, _)| *t);
        let trace: TimedTrace<VsObs> = evs.into_iter().collect();
        let r = check_vs_property(&trace, &params(100, 5, 2, 2));
        assert!(r.applicable);
        assert!(!r.holds);
        assert!(r.violations.iter().any(|v| v.contains("diverge")));
    }
}
