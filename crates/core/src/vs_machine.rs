//! The `VS-machine` specification automaton (Figure 6).
//!
//! `VS-machine` specifies the safety of the view-synchronous group
//! communication service. Views are created in identifier order by the
//! internal `createview(v)` action (chosen by the environment — the
//! specification places no restriction on *when* views form); each
//! processor is told of views by `newview(v)_p`, always with increasing
//! identifiers. Messages are sent with `gpsnd(m)_p`, placed into the
//! per-view total order by `vs-order(m,p,g)`, delivered in that order by
//! `gprcv(m)_{p,q}`, and reported all-delivered by `safe(m)_{p,q}`. A
//! message sent while the sender's view is undefined (⊥) is ignored.
//!
//! The machine is generic over the message alphabet *M*; the `VStoTO`
//! algorithm instantiates it with [`crate::AppMsg`].

use gcs_ioa::{ActionKind, Automaton};
use gcs_model::{ProcId, View, ViewId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// An action of `VS-machine`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VsAction<M> {
    /// Internal `createview(v)`: a new view comes into existence. The
    /// precondition requires `v.id` greater than every created id.
    CreateView(View),
    /// Output `newview(v)_p`: processor `p` learns of view `v`
    /// (`p ∈ v.set` is enforced by the signature).
    NewView {
        /// The processor being informed.
        p: ProcId,
        /// The new view.
        v: View,
    },
    /// Input `gpsnd(m)_p`: the client at `p` sends message `m`.
    GpSnd {
        /// The sending processor.
        p: ProcId,
        /// The message.
        m: M,
    },
    /// Internal `vs-order(m, p, g)`: the head of `pending[p,g]` is
    /// appended to `queue[g]`.
    VsOrder {
        /// The sender whose pending message is ordered.
        p: ProcId,
        /// The view in which the message was sent.
        g: ViewId,
        /// The message (must equal the head of `pending[p,g]`).
        m: M,
    },
    /// Output `gprcv(m)_{p,q}`: delivery to `q` of the message `m` sent
    /// by `p`, in `q`'s current view.
    GpRcv {
        /// The original sender.
        src: ProcId,
        /// The receiving processor.
        dst: ProcId,
        /// The message.
        m: M,
    },
    /// Output `safe(m)_{p,q}`: report to `q` that `m` (sent by `p`) has
    /// been delivered to every member of `q`'s current view.
    Safe {
        /// The original sender.
        src: ProcId,
        /// The processor receiving the indication.
        dst: ProcId,
        /// The message.
        m: M,
    },
}

/// The state of `VS-machine`.
///
/// `next` and `next-safe` are stored sparsely: a missing entry means the
/// initial value 1, read through [`VsState::next`] and
/// [`VsState::next_safe`].
#[derive(Clone, PartialEq, Eq)]
pub struct VsState<M> {
    /// The set of created views.
    pub created: BTreeSet<View>,
    /// `current-viewid[p] ∈ G⊥` for every processor.
    pub current_viewid: BTreeMap<ProcId, Option<ViewId>>,
    /// `pending[p,g]`: messages sent by `p` in view `g`, not yet ordered.
    pub pending: BTreeMap<(ProcId, ViewId), VecDeque<M>>,
    /// `queue[g]`: the per-view total order of ⟨message, sender⟩ pairs.
    pub queue: BTreeMap<ViewId, Vec<(M, ProcId)>>,
    /// `next[p,g]` (sparse, default 1).
    pub next_map: BTreeMap<(ProcId, ViewId), u64>,
    /// `next-safe[p,g]` (sparse, default 1).
    pub next_safe_map: BTreeMap<(ProcId, ViewId), u64>,
}

impl<M> VsState<M> {
    /// The start state: `created = {⟨g₀, P₀⟩}`, members of `P₀` in `g₀`,
    /// everyone else at ⊥.
    pub fn initial(procs: &BTreeSet<ProcId>, p0: &BTreeSet<ProcId>) -> Self {
        let v0 = View::initial(p0.clone());
        VsState {
            created: [v0].into(),
            current_viewid: procs
                .iter()
                .map(|&p| (p, p0.contains(&p).then(ViewId::initial)))
                .collect(),
            pending: BTreeMap::new(),
            queue: BTreeMap::new(),
            next_map: BTreeMap::new(),
            next_safe_map: BTreeMap::new(),
        }
    }

    /// `next[p,g]`, defaulting to 1.
    pub fn next(&self, p: ProcId, g: ViewId) -> u64 {
        self.next_map.get(&(p, g)).copied().unwrap_or(1)
    }

    /// `next-safe[p,g]`, defaulting to 1.
    pub fn next_safe(&self, p: ProcId, g: ViewId) -> u64 {
        self.next_safe_map.get(&(p, g)).copied().unwrap_or(1)
    }

    /// The current view identifier of `p` (`None` = ⊥).
    pub fn current_viewid(&self, p: ProcId) -> Option<ViewId> {
        self.current_viewid.get(&p).copied().flatten()
    }

    /// The created view with identifier `g`, if any (unique by
    /// Lemma 4.1.1).
    pub fn created_view(&self, g: ViewId) -> Option<&View> {
        self.created.iter().find(|v| v.id == g)
    }

    /// The set of created view identifiers (the derived variable
    /// `created-viewids`).
    pub fn created_viewids(&self) -> BTreeSet<ViewId> {
        self.created.iter().map(|v| v.id).collect()
    }

    /// The queue for view `g` (empty slice if none).
    pub fn queue_of(&self, g: ViewId) -> &[(M, ProcId)] {
        self.queue.get(&g).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

impl<M: fmt::Debug> fmt::Debug for VsState<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VsState")
            .field("created", &self.created)
            .field("current_viewid", &self.current_viewid)
            .field("pending", &self.pending)
            .field("queue", &self.queue)
            .field("next", &self.next_map)
            .field("next_safe", &self.next_safe_map)
            .finish()
    }
}

/// The `VS-machine` automaton over a fixed ambient processor set and
/// initial membership *P₀*.
#[derive(Clone, Debug)]
pub struct VsMachine<M> {
    procs: BTreeSet<ProcId>,
    p0: BTreeSet<ProcId>,
    _msg: std::marker::PhantomData<fn() -> M>,
}

impl<M> VsMachine<M> {
    /// Creates the machine for ambient set `procs` with initial membership
    /// `p0 ⊆ procs`.
    ///
    /// # Panics
    ///
    /// Panics if `p0` is not a subset of `procs`.
    pub fn new(procs: BTreeSet<ProcId>, p0: BTreeSet<ProcId>) -> Self {
        assert!(p0.is_subset(&procs), "P0 must be a subset of P");
        VsMachine { procs, p0, _msg: std::marker::PhantomData }
    }

    /// The ambient processor set *P*.
    pub fn procs(&self) -> &BTreeSet<ProcId> {
        &self.procs
    }

    /// The initial membership *P₀*.
    pub fn p0(&self) -> &BTreeSet<ProcId> {
        &self.p0
    }

    /// Checks the `createview` precondition: every created view has a
    /// smaller identifier (in-order creation).
    pub fn createview_enabled(&self, s: &VsState<M>, v: &View) -> bool {
        !v.set.is_empty() && v.set.is_subset(&self.procs) && s.created.iter().all(|w| v.id > w.id)
    }

    /// Checks the `newview(v)_p` precondition against a borrowed view.
    pub fn newview_enabled(&self, s: &VsState<M>, p: ProcId, v: &View) -> bool {
        v.set.contains(&p)
            && s.created.contains(v)
            && match s.current_viewid(p) {
                None => true,
                Some(cur) => v.id > cur,
            }
    }
}

/// Borrowed precondition checks — equivalent to [`Automaton::is_enabled`]
/// on the corresponding action but comparing message components in
/// place, so enabledness probes never clone an `M`.
impl<M: PartialEq> VsMachine<M> {
    /// Checks the `vs-order(m, p, g)` precondition.
    pub fn vsorder_enabled(&self, s: &VsState<M>, p: ProcId, g: ViewId, m: &M) -> bool {
        s.pending.get(&(p, g)).and_then(|q| q.front()) == Some(m)
    }

    /// Checks the `gprcv(m)_{src,dst}` precondition.
    pub fn gprcv_enabled(&self, s: &VsState<M>, src: ProcId, dst: ProcId, m: &M) -> bool {
        let Some(g) = s.current_viewid(dst) else { return false };
        s.queue_of(g).get(s.next(dst, g) as usize - 1).is_some_and(|(qm, qp)| qm == m && *qp == src)
    }

    /// Checks the `safe(m)_{src,dst}` precondition.
    pub fn safe_enabled(&self, s: &VsState<M>, src: ProcId, dst: ProcId, m: &M) -> bool {
        let Some(g) = s.current_viewid(dst) else { return false };
        let Some(view) = s.created_view(g) else { return false };
        let ns = s.next_safe(dst, g);
        s.queue_of(g).get(ns as usize - 1).is_some_and(|(qm, qp)| qm == m && *qp == src)
            && view.set.iter().all(|&r| s.next(r, g) > ns)
    }
}

impl<M: Clone + fmt::Debug + PartialEq> Automaton for VsMachine<M> {
    type State = VsState<M>;
    type Action = VsAction<M>;

    fn initial(&self) -> VsState<M> {
        VsState::initial(&self.procs, &self.p0)
    }

    fn enabled(&self, s: &VsState<M>) -> Vec<VsAction<M>> {
        let mut out = Vec::new();
        // newview(v)_p
        for v in &s.created {
            for &p in &v.set {
                let cur = s.current_viewid(p);
                if cur.is_none() || v.id > cur.unwrap() {
                    out.push(VsAction::NewView { p, v: v.clone() });
                }
            }
        }
        // vs-order(m, p, g)
        for ((p, g), pend) in &s.pending {
            if let Some(m) = pend.front() {
                out.push(VsAction::VsOrder { p: *p, g: *g, m: m.clone() });
            }
        }
        for &q in &self.procs {
            let Some(g) = s.current_viewid(q) else { continue };
            let queue = s.queue_of(g);
            // gprcv(m)_{p,q}
            if let Some((m, p)) = queue.get(s.next(q, g) as usize - 1) {
                out.push(VsAction::GpRcv { src: *p, dst: q, m: m.clone() });
            }
            // safe(m)_{p,q}
            if let Some(view) = s.created_view(g) {
                let ns = s.next_safe(q, g);
                if let Some((m, p)) = queue.get(ns as usize - 1) {
                    if view.set.iter().all(|&r| s.next(r, g) > ns) {
                        out.push(VsAction::Safe { src: *p, dst: q, m: m.clone() });
                    }
                }
            }
        }
        out
    }

    fn is_enabled(&self, s: &VsState<M>, action: &VsAction<M>) -> bool {
        match action {
            VsAction::CreateView(v) => self.createview_enabled(s, v),
            VsAction::NewView { p, v } => self.newview_enabled(s, *p, v),
            VsAction::GpSnd { p, .. } => self.procs.contains(p),
            VsAction::VsOrder { p, g, m } => self.vsorder_enabled(s, *p, *g, m),
            VsAction::GpRcv { src, dst, m } => self.gprcv_enabled(s, *src, *dst, m),
            VsAction::Safe { src, dst, m } => self.safe_enabled(s, *src, *dst, m),
        }
    }

    fn apply(&self, s: &mut VsState<M>, action: &VsAction<M>) {
        match action {
            VsAction::CreateView(v) => {
                s.created.insert(v.clone());
            }
            VsAction::NewView { p, v } => {
                s.current_viewid.insert(*p, Some(v.id));
            }
            VsAction::GpSnd { p, m } => {
                if let Some(g) = s.current_viewid(*p) {
                    s.pending.entry((*p, g)).or_default().push_back(m.clone());
                }
                // A message sent at ⊥ is simply ignored.
            }
            VsAction::VsOrder { p, g, m } => {
                let head = s.pending.get_mut(&(*p, *g)).and_then(|q| q.pop_front());
                debug_assert_eq!(head.as_ref(), Some(m), "vs-order of a non-head message");
                s.queue.entry(*g).or_default().push((m.clone(), *p));
            }
            VsAction::GpRcv { dst, .. } => {
                let g = s.current_viewid(*dst).expect("gprcv at ⊥");
                let n = s.next(*dst, g);
                s.next_map.insert((*dst, g), n + 1);
            }
            VsAction::Safe { dst, .. } => {
                let g = s.current_viewid(*dst).expect("safe at ⊥");
                let ns = s.next_safe(*dst, g);
                s.next_safe_map.insert((*dst, g), ns + 1);
            }
        }
    }

    fn kind(&self, action: &VsAction<M>) -> ActionKind {
        match action {
            VsAction::CreateView(_) | VsAction::VsOrder { .. } => ActionKind::Internal,
            VsAction::GpSnd { .. } => ActionKind::Input,
            VsAction::NewView { .. } | VsAction::GpRcv { .. } | VsAction::Safe { .. } => {
                ActionKind::Output
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_model::Value;

    type M = Value;

    fn machine() -> VsMachine<M> {
        VsMachine::new(ProcId::range(3), ProcId::range(3))
    }

    fn v(epoch: u64, ids: &[u32]) -> View {
        View::new(ViewId::new(epoch, ProcId(ids[0])), ids.iter().map(|&i| ProcId(i)).collect())
    }

    #[test]
    fn initial_members_start_in_g0() {
        let m = VsMachine::<M>::new(ProcId::range(3), [ProcId(0), ProcId(1)].into());
        let s = m.initial();
        assert_eq!(s.current_viewid(ProcId(0)), Some(ViewId::initial()));
        assert_eq!(s.current_viewid(ProcId(2)), None);
    }

    #[test]
    fn createview_requires_increasing_ids() {
        let m = machine();
        let mut s = m.initial();
        let v1 = v(1, &[0, 1]);
        assert!(m.is_enabled(&s, &VsAction::CreateView(v1.clone())));
        m.apply(&mut s, &VsAction::CreateView(v1.clone()));
        // Same id again: rejected. Lower id: rejected.
        assert!(!m.is_enabled(&s, &VsAction::CreateView(v1.clone())));
        assert!(!m.is_enabled(&s, &VsAction::CreateView(View::initial(ProcId::range(2)))));
        assert!(m.is_enabled(&s, &VsAction::CreateView(v(2, &[0]))));
    }

    #[test]
    fn newview_only_for_members_with_lower_current() {
        let m = machine();
        let mut s = m.initial();
        let v1 = v(1, &[0, 1]);
        m.apply(&mut s, &VsAction::CreateView(v1.clone()));
        assert!(m.is_enabled(&s, &VsAction::NewView { p: ProcId(0), v: v1.clone() }));
        // p2 is not a member.
        assert!(!m.is_enabled(&s, &VsAction::NewView { p: ProcId(2), v: v1.clone() }));
        m.apply(&mut s, &VsAction::NewView { p: ProcId(0), v: v1.clone() });
        // Not twice.
        assert!(!m.is_enabled(&s, &VsAction::NewView { p: ProcId(0), v: v1 }));
    }

    #[test]
    fn send_at_bottom_is_ignored() {
        let m = VsMachine::<M>::new(ProcId::range(2), [ProcId(0)].into());
        let mut s = m.initial();
        m.apply(&mut s, &VsAction::GpSnd { p: ProcId(1), m: Value::from_u64(1) });
        assert!(s.pending.is_empty());
    }

    #[test]
    fn message_flows_through_pending_queue_and_delivery() {
        let m = machine();
        let mut s = m.initial();
        let g0 = ViewId::initial();
        let val = Value::from_u64(9);
        m.apply(&mut s, &VsAction::GpSnd { p: ProcId(0), m: val.clone() });
        assert_eq!(s.pending[&(ProcId(0), g0)].len(), 1);
        let ord = VsAction::VsOrder { p: ProcId(0), g: g0, m: val.clone() };
        assert!(m.is_enabled(&s, &ord));
        m.apply(&mut s, &ord);
        assert_eq!(s.queue_of(g0).len(), 1);
        // Safe not enabled before everyone received.
        assert!(
            !m.is_enabled(&s, &VsAction::Safe { src: ProcId(0), dst: ProcId(0), m: val.clone() })
        );
        for q in 0..3 {
            let rcv = VsAction::GpRcv { src: ProcId(0), dst: ProcId(q), m: val.clone() };
            assert!(m.is_enabled(&s, &rcv));
            m.apply(&mut s, &rcv);
        }
        // Now safe is enabled at every member.
        for q in 0..3 {
            let sf = VsAction::Safe { src: ProcId(0), dst: ProcId(q), m: val.clone() };
            assert!(m.is_enabled(&s, &sf), "safe not enabled at p{q}");
            m.apply(&mut s, &sf);
        }
        assert_eq!(s.next_safe(ProcId(2), g0), 2);
    }

    #[test]
    fn no_delivery_across_views() {
        let m = machine();
        let mut s = m.initial();
        let g0 = ViewId::initial();
        let val = Value::from_u64(1);
        m.apply(&mut s, &VsAction::GpSnd { p: ProcId(0), m: val.clone() });
        m.apply(&mut s, &VsAction::VsOrder { p: ProcId(0), g: g0, m: val.clone() });
        // p1 moves to a later view; the g0 message is no longer deliverable there.
        let v1 = v(1, &[0, 1, 2]);
        m.apply(&mut s, &VsAction::CreateView(v1.clone()));
        m.apply(&mut s, &VsAction::NewView { p: ProcId(1), v: v1 });
        assert!(
            !m.is_enabled(&s, &VsAction::GpRcv { src: ProcId(0), dst: ProcId(1), m: val.clone() })
        );
        // p0 is still in g0 and can receive it.
        assert!(m.is_enabled(&s, &VsAction::GpRcv { src: ProcId(0), dst: ProcId(0), m: val }));
    }

    #[test]
    fn safe_requires_all_members_of_known_view() {
        // Membership {0,1}: safe requires both to have received.
        let m = VsMachine::<M>::new(ProcId::range(2), ProcId::range(2));
        let mut s = m.initial();
        let g0 = ViewId::initial();
        let val = Value::from_u64(5);
        m.apply(&mut s, &VsAction::GpSnd { p: ProcId(1), m: val.clone() });
        m.apply(&mut s, &VsAction::VsOrder { p: ProcId(1), g: g0, m: val.clone() });
        m.apply(&mut s, &VsAction::GpRcv { src: ProcId(1), dst: ProcId(0), m: val.clone() });
        assert!(
            !m.is_enabled(&s, &VsAction::Safe { src: ProcId(1), dst: ProcId(0), m: val.clone() })
        );
        m.apply(&mut s, &VsAction::GpRcv { src: ProcId(1), dst: ProcId(1), m: val.clone() });
        assert!(m.is_enabled(&s, &VsAction::Safe { src: ProcId(1), dst: ProcId(0), m: val }));
    }

    #[test]
    fn enabled_enumeration_matches_is_enabled() {
        use gcs_ioa::automaton::FnEnvironment;
        use gcs_ioa::Runner;
        use rand::Rng;
        // Drive randomly; every enumerated action must pass is_enabled.
        let env = FnEnvironment(|s: &VsState<M>, step: usize, rng: &mut dyn rand::RngCore| {
            let mut out = vec![VsAction::GpSnd {
                p: ProcId(rng.gen_range(0..3)),
                m: Value::from_u64(step as u64),
            }];
            let epoch = s.created.iter().map(|v| v.id.epoch).max().unwrap_or(0) + 1;
            out.push(VsAction::CreateView(v(epoch, &[rng.gen_range(0..3)])));
            out
        });
        let mut runner = Runner::new(machine(), env, 11);
        runner.add_observer(|_pre, _a, _post| {});
        let exec = runner.run(400).unwrap();
        // Re-execute and check each enumerated set.
        let m = machine();
        let mut s = m.initial();
        for a in exec.actions() {
            for cand in m.enabled(&s) {
                assert!(m.is_enabled(&s, &cand), "enumerated {cand:?} not enabled");
            }
            m.apply(&mut s, a);
        }
    }
}
