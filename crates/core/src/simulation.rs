//! The simulation relation *f* from `VStoTO-system` to `TO-machine`
//! (Section 6.2) and the executable counterpart of Theorem 6.26.
//!
//! `f` maps a global state of the composed system to a `TO-machine` state:
//!
//! 1. `queue` is the sequence of ⟨value, origin⟩ pairs corresponding to
//!    `allconfirm` (the lub of all confirmed prefixes), with values looked
//!    up in `allcontent`;
//! 2. `next[p]` is `nextreport_p`;
//! 3. `pending[p]` is the values of the labels with origin `p` known to
//!    the system but not yet in `allconfirm`, in label order, followed by
//!    the unlabelled values in `delay_p`.
//!
//! The step correspondence: `bcast` and `brcv` map to themselves;
//! `confirm_p` maps to `to-order` exactly when it extends `allconfirm`;
//! every other action of the composed system leaves `f` unchanged.
//! Checking this on every step of an execution (which
//! [`install_simulation_check`] does via a runner observer) verifies on
//! that execution what Theorem 6.26 proves in general: every trace of
//! `VStoTO-system` is a trace of `TO-machine`.

use crate::derived::DerivedState;
use crate::system::{SysAction, SysState, VsToToSystem};
use crate::to_machine::{ToAction, ToMachine, ToState};
use gcs_ioa::{ForwardSimulation, Runner};
use gcs_model::{Label, ProcId};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

/// The abstraction function *f* of Section 6.2.
///
/// # Panics
///
/// Panics if `allcontent` is not a function or the confirm prefixes are
/// inconsistent — those are invariant violations (Lemma 6.5,
/// Corollary 6.24) that the invariant suite reports with better context.
pub fn abstraction(s: &SysState) -> ToState {
    abstraction_with(s, &DerivedState::new(s))
}

/// The abstraction function over an already-computed [`DerivedState`]
/// snapshot — `allstate` is walked once instead of once per derived
/// variable.
pub fn abstraction_with(s: &SysState, d: &DerivedState<'_>) -> ToState {
    let content = d.allcontent.as_ref().expect("allcontent is a function (Lemma 6.5)");
    let confirm = d.allconfirm.as_ref().expect("allconfirm is defined (Corollary 6.24)");
    let confirmed: BTreeSet<Label> = confirm.iter().copied().collect();
    let queue = confirm
        .iter()
        .map(|l| ((*content.get(l).expect("confirmed label has content")).clone(), l.origin))
        .collect();
    let pending = s
        .procs
        .iter()
        .map(|(&p, proc)| {
            // Labels with origin p, known anywhere, not yet confirmed —
            // label order is the BTreeMap iteration order.
            let mut vals: std::collections::VecDeque<gcs_model::Value> = content
                .iter()
                .filter(|(l, _)| l.origin == p && !confirmed.contains(l))
                .map(|(_, a)| (*a).clone())
                .collect();
            vals.extend(proc.delay.iter().cloned());
            (p, vals)
        })
        .collect();
    let next = s.procs.iter().map(|(&p, proc)| (p, proc.nextreport)).collect();
    ToState { queue, pending, next }
}

/// The step correspondence: the abstract actions simulating one concrete
/// step from `pre`.
pub fn correspondence(pre: &SysState, action: &SysAction) -> Vec<ToAction> {
    match action {
        SysAction::Bcast { p, a } => vec![ToAction::Bcast { p: *p, a: a.clone() }],
        SysAction::Brcv { src, dst, a } => {
            vec![ToAction::Brcv { src: *src, dst: *dst, a: a.clone() }]
        }
        SysAction::Confirm { p } => {
            // One snapshot serves both allconfirm and allcontent.
            let d = DerivedState::new(pre);
            let confirm = d.allconfirm.as_ref().expect("allconfirm defined");
            let proc = &pre.procs[p];
            if proc.nextconfirm as usize <= confirm.len() {
                // Someone already confirmed this label; allconfirm is
                // unchanged, so no abstract step.
                Vec::new()
            } else {
                let l = proc.order[proc.nextconfirm as usize - 1];
                let content = d.allcontent.as_ref().expect("allcontent is a function");
                let a = (*content.get(&l).expect("ordered label has content")).clone();
                vec![ToAction::ToOrder { p: l.origin, a }]
            }
        }
        _ => Vec::new(),
    }
}

/// The external projection used for trace preservation.
pub fn project(action: &SysAction) -> Option<ToAction> {
    match action {
        SysAction::Bcast { p, a } => Some(ToAction::Bcast { p: *p, a: a.clone() }),
        SysAction::Brcv { src, dst, a } => {
            Some(ToAction::Brcv { src: *src, dst: *dst, a: a.clone() })
        }
        _ => None,
    }
}

/// Builds the forward-simulation checker for a system over the given
/// processor set.
// The three `impl Fn` parameters cannot be factored into a `type` alias
// (impl Trait is not allowed there), so the spelled-out type stays.
#[allow(clippy::type_complexity)]
pub fn simulation_checker(
    procs: BTreeSet<ProcId>,
) -> ForwardSimulation<
    VsToToSystem,
    ToMachine,
    impl Fn(&SysState) -> ToState,
    impl Fn(&SysState, &SysAction) -> Vec<ToAction>,
    impl Fn(&SysAction) -> Option<ToAction>,
> {
    ForwardSimulation::<VsToToSystem, _, _, _, _>::new(
        ToMachine::new(procs),
        abstraction,
        correspondence,
        project,
    )
}

/// Installs the simulation check as a step observer on a runner for the
/// composed system. Returns a shared list of violation descriptions
/// (empty after the run ⇔ the execution's trace is a `TO-machine` trace).
pub fn install_simulation_check<E>(runner: &mut Runner<VsToToSystem, E>) -> Rc<RefCell<Vec<String>>>
where
    E: gcs_ioa::Environment<VsToToSystem>,
{
    let procs = runner.automaton().procs().clone();
    let checker = simulation_checker(procs);
    let violations: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    if let Err(e) = checker.check_initial(runner.state()) {
        violations.borrow_mut().push(e.to_string());
    }
    let sink = violations.clone();
    runner.add_observer(move |pre, action, post| {
        if let Err(e) = checker.check_step(pre, action, post) {
            sink.borrow_mut().push(e.to_string());
        }
    });
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::SystemAdversary;
    use gcs_ioa::Automaton;
    use gcs_model::{Majority, Value};
    use std::sync::Arc;

    fn system(n: u32) -> VsToToSystem {
        let procs = ProcId::range(n);
        VsToToSystem::new(procs.clone(), procs, Arc::new(Majority::new(n as usize)))
    }

    #[test]
    fn abstraction_of_initial_state_is_initial() {
        let sys = system(3);
        let checker = simulation_checker(ProcId::range(3));
        checker.check_initial(&sys.initial()).unwrap();
    }

    #[test]
    fn bcast_maps_to_abstract_pending() {
        let sys = system(2);
        let mut s = sys.initial();
        sys.apply(&mut s, &SysAction::Bcast { p: ProcId(0), a: Value::from_u64(3) });
        let y = abstraction(&s);
        assert_eq!(y.pending[&ProcId(0)].len(), 1);
        assert!(y.queue.is_empty());
        // Labelling moves the value between representation halves of
        // pending[p] but leaves the abstract state unchanged.
        let before = abstraction(&s);
        sys.apply(&mut s, &SysAction::Label { p: ProcId(0) });
        assert_eq!(abstraction(&s), before);
    }

    #[test]
    fn simulation_holds_on_random_executions_with_churn() {
        for seed in 0..5 {
            let mut runner = Runner::new(system(3), SystemAdversary::default(), seed);
            let violations = install_simulation_check(&mut runner);
            runner.run(800).unwrap();
            let v = violations.borrow();
            assert!(v.is_empty(), "seed {seed}: {:?}", v.first());
        }
    }

    #[test]
    fn deliveries_appear_in_abstract_queue() {
        // Run until something is delivered, then check the abstract queue
        // matches what clients saw.
        let mut runner = Runner::new(system(3), SystemAdversary::default(), 1);
        let violations = install_simulation_check(&mut runner);
        let exec = runner.run(1500).unwrap();
        assert!(violations.borrow().is_empty());
        let delivered: Vec<&SysAction> =
            exec.actions().iter().filter(|a| matches!(a, SysAction::Brcv { .. })).collect();
        let y = abstraction(exec.final_state());
        for a in &delivered {
            if let SysAction::Brcv { src, a: val, .. } = a {
                assert!(
                    y.queue.iter().any(|(qa, qp)| qa == val && qp == src),
                    "delivered value missing from abstract queue"
                );
            }
        }
    }
}
