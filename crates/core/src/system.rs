//! The composed `VStoTO-system` (Section 6): `VS-machine` composed with
//! `VStoTO_p` for every `p ∈ P`, with the `gpsnd`/`gprcv`/`safe`/`newview`
//! actions hidden, plus the history variables `established[p,g]` and
//! `buildorder[p,g]` used by the invariants and the simulation relation.

use crate::msg::AppMsg;
use crate::vs_machine::{VsAction, VsMachine, VsState};
use crate::vstoto::VsToToProc;
use gcs_ioa::{ActionKind, Automaton};
use gcs_model::{Label, ProcId, QuorumSystem, Value, View, ViewId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// An action of the composed system. `Bcast` and `Brcv` are the external
/// interface (matching `TO-machine`); everything else is internal — the
/// actions shared between the layers (`NewView`, `GpSnd`, `GpRcv`, `Safe`)
/// are hidden by the composition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SysAction {
    /// Input `bcast(a)_p`.
    Bcast {
        /// Submitting location.
        p: ProcId,
        /// The data value.
        a: Value,
    },
    /// Output `brcv(a)_{q,p}`: deliver `a` (originated at `src`) to `dst`.
    Brcv {
        /// Origin of the value.
        src: ProcId,
        /// Receiving location.
        dst: ProcId,
        /// The data value.
        a: Value,
    },
    /// Internal `label(a)_p`.
    Label {
        /// The labelling processor.
        p: ProcId,
    },
    /// Internal `confirm_p`.
    Confirm {
        /// The confirming processor.
        p: ProcId,
    },
    /// Hidden `createview(v)` (internal to `VS-machine`).
    CreateView(
        /// The view being created.
        View,
    ),
    /// Hidden `newview(v)_p`.
    NewView {
        /// The processor being informed.
        p: ProcId,
        /// The new view.
        v: View,
    },
    /// Hidden `gpsnd(m)_p`.
    GpSnd {
        /// The sending processor.
        p: ProcId,
        /// The message.
        m: AppMsg,
    },
    /// Hidden `vs-order(m,p,g)`.
    VsOrder {
        /// The sender whose message is ordered.
        p: ProcId,
        /// The view of the message.
        g: ViewId,
        /// The message.
        m: AppMsg,
    },
    /// Hidden `gprcv(m)_{p,q}`.
    GpRcv {
        /// The original sender.
        src: ProcId,
        /// The receiving processor.
        dst: ProcId,
        /// The message.
        m: AppMsg,
    },
    /// Hidden `safe(m)_{p,q}`.
    Safe {
        /// The original sender.
        src: ProcId,
        /// The processor receiving the indication.
        dst: ProcId,
        /// The message.
        m: AppMsg,
    },
}

/// The global state of `VStoTO-system`.
#[derive(Clone, PartialEq, Debug)]
pub struct SysState {
    /// The `VS-machine` component.
    pub vs: VsState<AppMsg>,
    /// One `VStoTO_p` component per processor.
    pub procs: BTreeMap<ProcId, VsToToProc>,
    /// History variable `established[p,g]` (stored as the set of true
    /// entries; initially `{(p, g₀) : p ∈ P₀}`).
    pub established: BTreeSet<(ProcId, ViewId)>,
    /// History variable `buildorder[p,g]`: the last value of `order_p`
    /// while `p` was in view `g`.
    pub buildorder: BTreeMap<(ProcId, ViewId), Vec<Label>>,
}

impl SysState {
    /// The `VStoTO_p` component.
    pub fn proc(&self, p: ProcId) -> &VsToToProc {
        &self.procs[&p]
    }

    /// History variable accessor: whether `p` has established view `g`.
    pub fn is_established(&self, p: ProcId, g: ViewId) -> bool {
        self.established.contains(&(p, g))
    }

    /// History variable accessor: `buildorder[p,g]` (empty if never set).
    pub fn buildorder(&self, p: ProcId, g: ViewId) -> &[Label] {
        self.buildorder.get(&(p, g)).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

/// The composed automaton.
#[derive(Clone)]
pub struct VsToToSystem {
    vs: VsMachine<AppMsg>,
    procs: BTreeSet<ProcId>,
    p0: BTreeSet<ProcId>,
    quorums: Arc<dyn QuorumSystem>,
}

impl VsToToSystem {
    /// Creates the system over ambient set `procs` with initial membership
    /// `p0` and quorum system `quorums`.
    pub fn new(
        procs: BTreeSet<ProcId>,
        p0: BTreeSet<ProcId>,
        quorums: Arc<dyn QuorumSystem>,
    ) -> Self {
        VsToToSystem { vs: VsMachine::new(procs.clone(), p0.clone()), procs, p0, quorums }
    }

    /// The ambient processor set *P*.
    pub fn procs(&self) -> &BTreeSet<ProcId> {
        &self.procs
    }

    /// The initial membership *P₀*.
    pub fn p0(&self) -> &BTreeSet<ProcId> {
        &self.p0
    }

    /// The quorum system 𝒬.
    pub fn quorums(&self) -> &Arc<dyn QuorumSystem> {
        &self.quorums
    }

    /// The embedded `VS-machine`.
    pub fn vs_machine(&self) -> &VsMachine<AppMsg> {
        &self.vs
    }

    /// Record `buildorder[p, current.id_p] ← order_p` (called after any
    /// step of `p` that may assign to `order_p`).
    fn record_buildorder(s: &mut SysState, p: ProcId) {
        if let Some(g) = s.procs[&p].current_id() {
            let order = s.procs[&p].order.clone();
            s.buildorder.insert((p, g), order);
        }
    }
}

impl Automaton for VsToToSystem {
    type State = SysState;
    type Action = SysAction;

    fn initial(&self) -> SysState {
        let procs = self
            .procs
            .iter()
            .map(|&p| (p, VsToToProc::initial(p, &self.p0, self.quorums.clone())))
            .collect();
        let established = self.p0.iter().map(|&p| (p, ViewId::initial())).collect();
        SysState { vs: self.vs.initial(), procs, established, buildorder: BTreeMap::new() }
    }

    fn enabled(&self, s: &SysState) -> Vec<SysAction> {
        let mut out = Vec::new();
        // VS-machine's enumerable locally controlled actions. Its GpRcv /
        // Safe / NewView outputs are inputs of the VStoTO components
        // (always enabled there); VsOrder is VS-internal.
        for a in self.vs.enabled(&s.vs) {
            out.push(match a {
                VsAction::NewView { p, v } => SysAction::NewView { p, v },
                VsAction::VsOrder { p, g, m } => SysAction::VsOrder { p, g, m },
                VsAction::GpRcv { src, dst, m } => SysAction::GpRcv { src, dst, m },
                VsAction::Safe { src, dst, m } => SysAction::Safe { src, dst, m },
                VsAction::CreateView(v) => SysAction::CreateView(v),
                VsAction::GpSnd { .. } => continue_marker(),
            });
        }
        // VStoTO components' locally controlled actions. Their GpSnd
        // output is an input of VS-machine (always enabled there).
        for (&p, proc) in &s.procs {
            if proc.label_ready().is_some() {
                out.push(SysAction::Label { p });
            }
            if let Some(m) = proc.gpsnd_ready() {
                out.push(SysAction::GpSnd { p, m });
            }
            if proc.confirm_ready() {
                out.push(SysAction::Confirm { p });
            }
            if let Some((src, a)) = proc.brcv_ready() {
                out.push(SysAction::Brcv { src, dst: p, a });
            }
        }
        out
    }

    fn is_enabled(&self, s: &SysState, action: &SysAction) -> bool {
        match action {
            SysAction::Bcast { p, .. } => self.procs.contains(p),
            SysAction::Brcv { src, dst, a } => {
                s.procs.get(dst).is_some_and(|proc| proc.brcv_ready_ref() == Some((*src, a)))
            }
            SysAction::Label { p } => {
                s.procs.get(p).is_some_and(|proc| proc.label_ready().is_some())
            }
            SysAction::Confirm { p } => s.procs.get(p).is_some_and(|proc| proc.confirm_ready()),
            SysAction::CreateView(v) => self.vs.createview_enabled(&s.vs, v),
            SysAction::NewView { p, v } => self.vs.newview_enabled(&s.vs, *p, v),
            SysAction::GpSnd { p, m } => s.procs.get(p).is_some_and(|proc| proc.gpsnd_matches(m)),
            SysAction::VsOrder { p, g, m } => self.vs.vsorder_enabled(&s.vs, *p, *g, m),
            SysAction::GpRcv { src, dst, m } => self.vs.gprcv_enabled(&s.vs, *src, *dst, m),
            SysAction::Safe { src, dst, m } => self.vs.safe_enabled(&s.vs, *src, *dst, m),
        }
    }

    fn apply(&self, s: &mut SysState, action: &SysAction) {
        match action {
            SysAction::Bcast { p, a } => {
                s.procs.get_mut(p).expect("unknown processor").bcast(a.clone());
            }
            SysAction::Brcv { dst, .. } => {
                s.procs.get_mut(dst).expect("unknown processor").do_brcv();
            }
            SysAction::Label { p } => {
                s.procs.get_mut(p).expect("unknown processor").do_label();
            }
            SysAction::Confirm { p } => {
                s.procs.get_mut(p).expect("unknown processor").do_confirm();
            }
            SysAction::CreateView(v) => {
                self.vs.apply(&mut s.vs, &VsAction::CreateView(v.clone()));
            }
            SysAction::NewView { p, v } => {
                self.vs.apply(&mut s.vs, &VsAction::NewView { p: *p, v: v.clone() });
                s.procs.get_mut(p).expect("unknown processor").newview(v.clone());
            }
            SysAction::GpSnd { p, m } => {
                s.procs.get_mut(p).expect("unknown processor").do_gpsnd(m);
                self.vs.apply(&mut s.vs, &VsAction::GpSnd { p: *p, m: m.clone() });
            }
            SysAction::VsOrder { p, g, m } => {
                self.vs.apply(&mut s.vs, &VsAction::VsOrder { p: *p, g: *g, m: m.clone() });
            }
            SysAction::GpRcv { src, dst, m } => {
                self.vs.apply(&mut s.vs, &VsAction::GpRcv { src: *src, dst: *dst, m: m.clone() });
                let outcome = s.procs.get_mut(dst).expect("unknown processor").gprcv(*src, m);
                // History variables: order may have been assigned (ordinary
                // message in a primary, or establishment).
                VsToToSystem::record_buildorder(s, *dst);
                if outcome.established {
                    let g = s.procs[dst].current_id().expect("established at ⊥");
                    s.established.insert((*dst, g));
                }
            }
            SysAction::Safe { src, dst, m } => {
                self.vs.apply(&mut s.vs, &VsAction::Safe { src: *src, dst: *dst, m: m.clone() });
                s.procs.get_mut(dst).expect("unknown processor").safe(*src, m);
            }
        }
    }

    fn kind(&self, action: &SysAction) -> ActionKind {
        match action {
            SysAction::Bcast { .. } => ActionKind::Input,
            SysAction::Brcv { .. } => ActionKind::Output,
            _ => ActionKind::Internal,
        }
    }
}

/// Helper used to skip `GpSnd` in the match over VS-enabled actions
/// (VS-machine never enumerates its inputs, so this is unreachable).
fn continue_marker() -> SysAction {
    unreachable!("VS-machine does not enumerate input actions")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_model::Majority;

    fn system(n: u32) -> VsToToSystem {
        let procs = ProcId::range(n);
        VsToToSystem::new(procs.clone(), procs, Arc::new(Majority::new(n as usize)))
    }

    /// Drive a full round by hand in the initial (primary) view:
    /// bcast at p0 → label → gpsnd → vs-order → gprcv at all → safe at all
    /// → confirm → brcv, checking enabledness at each stage.
    #[test]
    fn hand_driven_round_delivers_to_all() {
        let sys = system(3);
        let mut s = sys.initial();
        let a = Value::from_u64(42);
        sys.apply(&mut s, &SysAction::Bcast { p: ProcId(0), a: a.clone() });
        assert!(sys.is_enabled(&s, &SysAction::Label { p: ProcId(0) }));
        sys.apply(&mut s, &SysAction::Label { p: ProcId(0) });
        let m = s.proc(ProcId(0)).gpsnd_ready().expect("send ready");
        sys.apply(&mut s, &SysAction::GpSnd { p: ProcId(0), m: m.clone() });
        let g0 = ViewId::initial();
        sys.apply(&mut s, &SysAction::VsOrder { p: ProcId(0), g: g0, m: m.clone() });
        for q in 0..3 {
            sys.apply(&mut s, &SysAction::GpRcv { src: ProcId(0), dst: ProcId(q), m: m.clone() });
        }
        for q in 0..3 {
            sys.apply(&mut s, &SysAction::Safe { src: ProcId(0), dst: ProcId(q), m: m.clone() });
        }
        for q in 0..3 {
            assert!(sys.is_enabled(&s, &SysAction::Confirm { p: ProcId(q) }), "confirm p{q}");
            sys.apply(&mut s, &SysAction::Confirm { p: ProcId(q) });
            let brcv = SysAction::Brcv { src: ProcId(0), dst: ProcId(q), a: a.clone() };
            assert!(sys.is_enabled(&s, &brcv));
            sys.apply(&mut s, &brcv);
        }
        for q in 0..3 {
            assert_eq!(s.proc(ProcId(q)).nextreport, 2);
        }
    }

    #[test]
    fn initial_history_variables() {
        let sys = system(2);
        let s = sys.initial();
        assert!(s.is_established(ProcId(0), ViewId::initial()));
        assert!(s.is_established(ProcId(1), ViewId::initial()));
        assert!(s.buildorder(ProcId(0), ViewId::initial()).is_empty());
    }

    #[test]
    fn establishment_is_recorded_after_state_exchange() {
        let sys = system(2);
        let mut s = sys.initial();
        let g1 = ViewId::new(1, ProcId(0));
        let v1 = View::new(g1, ProcId::range(2));
        sys.apply(&mut s, &SysAction::CreateView(v1.clone()));
        for q in 0..2 {
            sys.apply(&mut s, &SysAction::NewView { p: ProcId(q), v: v1.clone() });
        }
        assert!(!s.is_established(ProcId(0), g1));
        // Exchange summaries.
        for q in 0..2 {
            let m = s.proc(ProcId(q)).gpsnd_ready().expect("summary ready");
            sys.apply(&mut s, &SysAction::GpSnd { p: ProcId(q), m: m.clone() });
            sys.apply(&mut s, &SysAction::VsOrder { p: ProcId(q), g: g1, m });
        }
        // Deliver both summaries to both processors, in queue order.
        for dst in 0..2 {
            for idx in 0..2 {
                let (m, src) = s.vs.queue_of(g1)[idx].clone();
                sys.apply(&mut s, &SysAction::GpRcv { src, dst: ProcId(dst), m });
            }
            assert!(s.is_established(ProcId(dst), g1), "p{dst} established g1");
        }
    }

    #[test]
    fn enumerated_actions_are_all_enabled_under_random_drive() {
        use crate::adversary::SystemAdversary;
        use gcs_ioa::Runner;
        let mut runner = Runner::new(system(3), SystemAdversary::default(), 5);
        let exec = runner.run(600).unwrap();
        // Replay, re-checking the enumeration at every state.
        let sys = system(3);
        let mut s = sys.initial();
        for a in exec.actions() {
            for cand in sys.enabled(&s) {
                assert!(sys.is_enabled(&s, &cand), "enumerated {cand:?} not enabled");
            }
            assert!(sys.is_enabled(&s, a), "recorded action {a:?} not enabled on replay");
            sys.apply(&mut s, a);
        }
    }
}
