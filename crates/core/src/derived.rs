//! Derived variables of `VStoTO-system` (Section 6): `allstate`,
//! `allcontent`, and `allconfirm`, used by the invariants and by the
//! simulation relation *f*.
//!
//! The centerpiece is [`DerivedState`]: a borrowed snapshot of every
//! derived variable, computed **once per state** and shared by all ~29
//! invariant checks and the simulation abstraction. Building it walks
//! each summary source (processor components, `pending`, `queue`,
//! `gotstate`) exactly once and records `&Summary` borrows instead of
//! clones, so a full invariant sweep costs one pass over the state
//! rather than one quadratic reconstruction per check.
//!
//! The free functions ([`allstate_pg`], [`allstate_entries`],
//! [`allcontent`], [`allconfirm`]) remain as thin wrappers for callers
//! that need a one-off owned answer.

use crate::msg::AppMsg;
use crate::system::SysState;
use gcs_model::seq::is_prefix;
use gcs_model::{ContentMap, Label, ProcId, Summary, Value, View, ViewId};
use std::collections::{BTreeMap, BTreeSet};

/// A borrowed view of a summary's *con* component: either an owned
/// summary's ordered map or a processor's [`ContentMap`] content store.
/// Both are the same partial function *L ⇀ A*; this enum lets the
/// derived-state sweep walk either without cloning into a common shape.
#[derive(Clone, Copy, Debug)]
pub enum ConRef<'a> {
    /// Borrowed from an owned [`Summary`] (wire/queue/gotstate copies).
    Map(&'a BTreeMap<Label, Value>),
    /// Borrowed from a live processor's content store.
    Content(&'a ContentMap),
}

impl<'a> ConRef<'a> {
    /// Number of ⟨label, value⟩ pairs.
    pub fn len(self) -> usize {
        match self {
            ConRef::Map(m) => m.len(),
            ConRef::Content(c) => c.len(),
        }
    }

    /// Whether the relation is empty.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Iterates the pairs. Order is the source's own (lexicographic for
    /// a map, grouped for a content store) — every consumer here is
    /// order-insensitive.
    pub fn iter(self) -> impl Iterator<Item = (Label, &'a Value)> {
        let (m, c) = match self {
            ConRef::Map(m) => (Some(m), None),
            ConRef::Content(c) => (None, Some(c)),
        };
        m.into_iter()
            .flat_map(|m| m.iter().map(|(l, a)| (*l, a)))
            .chain(c.into_iter().flat_map(ContentMap::iter))
    }

    /// Iterates the bound labels.
    pub fn keys(self) -> impl Iterator<Item = Label> + 'a {
        self.iter().map(|(l, _)| l)
    }

    /// Clones into the ordered-map representation.
    pub fn to_map(self) -> BTreeMap<Label, Value> {
        match self {
            ConRef::Map(m) => m.clone(),
            ConRef::Content(c) => c.to_map(),
        }
    }
}

/// A borrowed view of a [`Summary`] (or of the equivalent components of
/// a processor state), avoiding the `con`/`ord` clones that building an
/// owned `Summary` would cost.
#[derive(Clone, Copy, Debug)]
pub struct SummaryRef<'a> {
    /// The known ⟨label, value⟩ pairs (*x.con*).
    pub con: ConRef<'a>,
    /// The tentative total order of labels (*x.ord*).
    pub ord: &'a [Label],
    /// One past the number of confirmed labels (*x.next*).
    pub next: u64,
    /// The highest established-primary view affecting `ord` (*x.high*).
    pub high: Option<ViewId>,
}

impl<'a> SummaryRef<'a> {
    /// Borrows an owned summary.
    pub fn of(x: &'a Summary) -> Self {
        SummaryRef { con: ConRef::Map(&x.con), ord: &x.ord, next: x.next, high: x.high }
    }

    /// The summary of a processor's current components, without
    /// materializing it (the borrowed equivalent of
    /// [`crate::vstoto::VsToToProc::summary`]).
    pub fn of_proc(p: &'a crate::vstoto::VsToToProc) -> Self {
        SummaryRef {
            con: ConRef::Content(&p.content),
            ord: &p.order,
            next: p.nextconfirm,
            high: p.highprimary,
        }
    }

    /// The confirmed prefix *x.confirm* as a borrowed slice: the prefix
    /// of `ord` of length `min(next − 1, |ord|)`.
    pub fn confirm(&self) -> &'a [Label] {
        let n = usize::try_from(self.next.saturating_sub(1)).unwrap_or(usize::MAX);
        &self.ord[..n.min(self.ord.len())]
    }

    /// Clones into an owned [`Summary`].
    pub fn to_summary(&self) -> Summary {
        Summary { con: self.con.to_map(), ord: self.ord.to_vec(), next: self.next, high: self.high }
    }
}

/// Every derived variable of Section 6, computed once from a state and
/// borrowed from it. Invariant checks and the simulation abstraction
/// all read from one snapshot instead of recomputing per check.
pub struct DerivedState<'a> {
    /// All `(p, g, summary)` entries of `allstate`, sorted by `(p, g)`
    /// with each group in source order (own components, `pending`,
    /// `queue`, `gotstate`) — the same order [`allstate_entries`]
    /// produces.
    pub entries: Vec<(ProcId, ViewId, SummaryRef<'a>)>,
    /// `allcontent`: the union of `x.con` over `allstate`, or the first
    /// label bound to two distinct values (a Lemma 6.5 violation).
    pub allcontent: Result<BTreeMap<Label, &'a Value>, Label>,
    /// `allconfirm`: the lub of `x.confirm` over `allstate`, or `None`
    /// if the prefixes are inconsistent (a Corollary 6.24 violation).
    pub allconfirm: Option<Vec<Label>>,
    /// Identifiers of every created view.
    pub created_ids: BTreeSet<ViewId>,
    /// The created views whose membership contains a quorum.
    pub quorum_views: Vec<&'a View>,
}

impl<'a> DerivedState<'a> {
    /// Computes the full snapshot in one pass over each summary source.
    pub fn new(s: &'a SysState) -> Self {
        // Group summaries by the (processor, view) they are attributed
        // to. Each source is walked once; the per-group push order (own,
        // pending, queue, gotstate) reproduces allstate_pg's case order.
        let mut buckets: BTreeMap<(ProcId, ViewId), Vec<SummaryRef<'a>>> = BTreeMap::new();
        // Case 1: p's own components, while p's current view is g.
        for (&p, proc) in &s.procs {
            if let Some(g) = proc.current_id() {
                buckets.entry((p, g)).or_default().push(SummaryRef::of_proc(proc));
            }
        }
        // Case 2: summaries in pending[p, g].
        for ((p, g), pend) in &s.vs.pending {
            for m in pend {
                if let AppMsg::Summary(x) = m {
                    buckets.entry((*p, *g)).or_default().push(SummaryRef::of(x));
                }
            }
        }
        // Case 3: summaries ⟨x, p⟩ in queue[g].
        for (g, queue) in &s.vs.queue {
            for (m, sender) in queue {
                if let AppMsg::Summary(x) = m {
                    buckets.entry((*sender, *g)).or_default().push(SummaryRef::of(x));
                }
            }
        }
        // Case 4: gotstate(p)_q for members q currently in g, in
        // ascending q order (the order the per-(p,g) scan visited them).
        for q in s.procs.values() {
            if let Some(g) = q.current_id() {
                for (&p, x) in &q.gotstate {
                    buckets.entry((p, g)).or_default().push(SummaryRef::of(x));
                }
            }
        }
        let mut entries = Vec::with_capacity(buckets.values().map(Vec::len).sum());
        for ((p, g), refs) in buckets {
            for r in refs {
                entries.push((p, g, r));
            }
        }

        // allcontent: first-conflict error, in entry order.
        let allcontent = (|| {
            let mut out: BTreeMap<Label, &'a Value> = BTreeMap::new();
            for (_, _, x) in &entries {
                for (l, a) in x.con.iter() {
                    if let Some(prev) = out.get(&l) {
                        if *prev != a {
                            return Err(l);
                        }
                    } else {
                        out.insert(l, a);
                    }
                }
            }
            Ok(out)
        })();

        // allconfirm: lub of the confirm slices (no per-entry Vec).
        let allconfirm = (|| {
            let mut best: &[Label] = &[];
            for (_, _, x) in &entries {
                let c = x.confirm();
                if is_prefix(best, c) {
                    best = c;
                } else if !is_prefix(c, best) {
                    return None;
                }
            }
            Some(best.to_vec())
        })();

        let created_ids = s.vs.created_viewids();
        let quorum_views = match s.procs.values().next() {
            Some(any) => s.vs.created.iter().filter(|v| any.quorums.is_quorum(&v.set)).collect(),
            None => Vec::new(),
        };

        DerivedState { entries, allcontent, allconfirm, created_ids, quorum_views }
    }

    /// The summaries attributed to `(p, g)` — `allstate[p,g]` as borrows.
    ///
    /// `entries` is sorted by `(p, g)`, so the group is one contiguous
    /// run located by binary search.
    pub fn for_pg(&self, p: ProcId, g: ViewId) -> &[(ProcId, ViewId, SummaryRef<'a>)] {
        let start = self.entries.partition_point(|&(ep, eg, _)| (ep, eg) < (p, g));
        let end = start + self.entries[start..].partition_point(|&(ep, eg, _)| (ep, eg) == (p, g));
        &self.entries[start..end]
    }
}

/// `allstate[p,g]`: every summary attributable to processor `p` in view
/// `g` — its own state summary while its current view is `g`, plus every
/// state-exchange summary it sent in `g` that is still held in
/// `VS-machine`'s `pending`/`queue` or recorded in some member's
/// `gotstate`.
pub fn allstate_pg(s: &SysState, p: ProcId, g: ViewId) -> Vec<Summary> {
    let d = DerivedState::new(s);
    d.for_pg(p, g).iter().map(|(_, _, x)| x.to_summary()).collect()
}

/// All `(p, g, summary)` entries of `allstate` (each summary tagged with
/// the processor and view it is attributed to).
pub fn allstate_entries(s: &SysState) -> Vec<(ProcId, ViewId, Summary)> {
    DerivedState::new(s).entries.iter().map(|&(p, g, x)| (p, g, x.to_summary())).collect()
}

/// `allcontent`: the union of `x.con` over all of `allstate` — everything
/// anywhere that links a label with a data value.
///
/// Returns `Err` with the offending label if the union is not a function
/// (that would violate Lemma 6.5).
pub fn allcontent(s: &SysState) -> Result<BTreeMap<Label, Value>, Label> {
    DerivedState::new(s).allcontent.map(|m| m.into_iter().map(|(l, a)| (l, a.clone())).collect())
}

/// `allconfirm`: the least upper bound of `x.confirm` over `allstate`.
///
/// Returns `None` if the confirm prefixes are not consistent (that would
/// violate Corollary 6.24).
pub fn allconfirm(s: &SysState) -> Option<Vec<Label>> {
    DerivedState::new(s).allconfirm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{SysAction, VsToToSystem};
    use gcs_ioa::Automaton;
    use gcs_model::{Majority, View};
    use std::sync::Arc;

    fn system(n: u32) -> VsToToSystem {
        let procs = ProcId::range(n);
        VsToToSystem::new(procs.clone(), procs, Arc::new(Majority::new(n as usize)))
    }

    #[test]
    fn initial_allstate_contains_each_processor_summary() {
        let sys = system(3);
        let s = sys.initial();
        for p in ProcId::range(3) {
            let xs = allstate_pg(&s, p, ViewId::initial());
            assert_eq!(xs.len(), 1, "exactly the local summary for {p}");
            assert_eq!(xs[0], s.proc(p).summary());
        }
        assert!(allcontent(&s).unwrap().is_empty());
        assert_eq!(allconfirm(&s), Some(vec![]));
    }

    #[test]
    fn summaries_in_flight_are_tracked() {
        let sys = system(2);
        let mut s = sys.initial();
        let g1 = ViewId::new(1, ProcId(0));
        let v1 = View::new(g1, ProcId::range(2));
        sys.apply(&mut s, &SysAction::CreateView(v1.clone()));
        sys.apply(&mut s, &SysAction::NewView { p: ProcId(0), v: v1.clone() });
        let m = s.proc(ProcId(0)).gpsnd_ready().unwrap();
        sys.apply(&mut s, &SysAction::GpSnd { p: ProcId(0), m: m.clone() });
        // Now p0's summary sits in pending[p0, g1] *and* in its own state.
        let xs = allstate_pg(&s, ProcId(0), g1);
        assert_eq!(xs.len(), 2);
        // Order it into the queue: still tracked (case 3).
        sys.apply(&mut s, &SysAction::VsOrder { p: ProcId(0), g: g1, m: m.clone() });
        let xs = allstate_pg(&s, ProcId(0), g1);
        assert_eq!(xs.len(), 2);
        // Deliver to p0 itself: recorded in gotstate (case 4), dequeued
        // from VS (next pointer moves but the queue keeps the element;
        // allstate intentionally counts the queue copy).
        sys.apply(&mut s, &SysAction::GpRcv { src: ProcId(0), dst: ProcId(0), m });
        let xs = allstate_pg(&s, ProcId(0), g1);
        assert_eq!(xs.len(), 3);
    }

    #[test]
    fn allcontent_accumulates_labelled_values() {
        let sys = system(2);
        let mut s = sys.initial();
        sys.apply(&mut s, &SysAction::Bcast { p: ProcId(1), a: Value::from_u64(5) });
        assert!(allcontent(&s).unwrap().is_empty(), "unlabelled values are not content");
        sys.apply(&mut s, &SysAction::Label { p: ProcId(1) });
        let ac = allcontent(&s).unwrap();
        assert_eq!(ac.len(), 1);
        let (l, a) = ac.iter().next().unwrap();
        assert_eq!(l.origin, ProcId(1));
        assert_eq!(a, &Value::from_u64(5));
    }

    /// The shared snapshot and the one-off wrappers must stay in
    /// lockstep: same entries in the same order, same allcontent, same
    /// allconfirm, on a state with churn in flight.
    #[test]
    fn snapshot_matches_free_functions_mid_execution() {
        use crate::adversary::SystemAdversary;
        use gcs_ioa::Runner;
        for seed in [2u64, 9] {
            let mut runner = Runner::new(system(3), SystemAdversary::default(), seed);
            let exec = runner.run(500).expect("no invariants installed");
            let s = exec.final_state();
            let d = DerivedState::new(s);
            let owned = allstate_entries(s);
            assert_eq!(owned.len(), d.entries.len());
            for ((p1, g1, x1), &(p2, g2, x2)) in owned.iter().zip(d.entries.iter()) {
                assert_eq!((p1, g1), (&p2, &g2));
                assert_eq!(*x1, x2.to_summary());
                assert_eq!(x1.confirm(), x2.confirm());
            }
            assert_eq!(
                allcontent(s).ok(),
                d.allcontent
                    .as_ref()
                    .ok()
                    .map(|m| m.iter().map(|(l, a)| (*l, (*a).clone())).collect())
            );
            assert_eq!(allconfirm(s), d.allconfirm);
            // for_pg returns exactly the (p, g) runs of the entry list.
            for &(p, g, _) in &d.entries {
                let group = d.for_pg(p, g);
                assert!(!group.is_empty());
                assert!(group.iter().all(|&(ep, eg, _)| ep == p && eg == g));
                let expected = owned.iter().filter(|(ep, eg, _)| (*ep, *eg) == (p, g)).count();
                assert_eq!(group.len(), expected);
            }
        }
    }
}
