//! Derived variables of `VStoTO-system` (Section 6): `allstate`,
//! `allcontent`, and `allconfirm`, used by the invariants and by the
//! simulation relation *f*.

use crate::msg::AppMsg;
use crate::system::SysState;
use gcs_model::seq::lub;
use gcs_model::{Label, ProcId, Summary, Value, ViewId};
use std::collections::BTreeMap;

/// `allstate[p,g]`: every summary attributable to processor `p` in view
/// `g` — its own state summary while its current view is `g`, plus every
/// state-exchange summary it sent in `g` that is still held in
/// `VS-machine`'s `pending`/`queue` or recorded in some member's
/// `gotstate`.
pub fn allstate_pg(s: &SysState, p: ProcId, g: ViewId) -> Vec<Summary> {
    let mut out = Vec::new();
    let proc = &s.procs[&p];
    // 1. p's own components, while p's current view is g.
    if proc.current_id() == Some(g) {
        out.push(proc.summary());
    }
    // 2. Summaries in pending[p,g].
    if let Some(pend) = s.vs.pending.get(&(p, g)) {
        for m in pend {
            if let AppMsg::Summary(x) = m {
                out.push(x.clone());
            }
        }
    }
    // 3. Summaries ⟨x, p⟩ in queue[g].
    for (m, sender) in s.vs.queue_of(g) {
        if *sender == p {
            if let AppMsg::Summary(x) = m {
                out.push(x.clone());
            }
        }
    }
    // 4. gotstate(p)_q for members q currently in g.
    for (_, q) in s.procs.iter() {
        if q.current_id() == Some(g) {
            if let Some(x) = q.gotstate.get(&p) {
                out.push(x.clone());
            }
        }
    }
    out
}

/// All `(p, g, summary)` entries of `allstate` (each summary tagged with
/// the processor and view it is attributed to).
pub fn allstate_entries(s: &SysState) -> Vec<(ProcId, ViewId, Summary)> {
    let mut out = Vec::new();
    let mut gs: std::collections::BTreeSet<ViewId> = s.vs.created_viewids();
    // Views can only be referenced once created, but be thorough: also
    // scan views mentioned in pending/queue keys.
    gs.extend(s.vs.pending.keys().map(|(_, g)| *g));
    gs.extend(s.vs.queue.keys().copied());
    for &p in s.procs.keys() {
        for &g in &gs {
            for x in allstate_pg(s, p, g) {
                out.push((p, g, x.clone()));
            }
        }
    }
    out
}

/// `allcontent`: the union of `x.con` over all of `allstate` — everything
/// anywhere that links a label with a data value.
///
/// Returns `Err` with the offending label if the union is not a function
/// (that would violate Lemma 6.5).
pub fn allcontent(s: &SysState) -> Result<BTreeMap<Label, Value>, Label> {
    let mut out: BTreeMap<Label, Value> = BTreeMap::new();
    for (_, _, x) in allstate_entries(s) {
        for (l, a) in &x.con {
            if let Some(prev) = out.get(l) {
                if prev != a {
                    return Err(*l);
                }
            } else {
                out.insert(*l, a.clone());
            }
        }
    }
    Ok(out)
}

/// `allconfirm`: the least upper bound of `x.confirm` over `allstate`.
///
/// Returns `None` if the confirm prefixes are not consistent (that would
/// violate Corollary 6.24).
pub fn allconfirm(s: &SysState) -> Option<Vec<Label>> {
    let confirms: Vec<Vec<Label>> =
        allstate_entries(s).into_iter().map(|(_, _, x)| x.confirm()).collect();
    lub(&confirms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{SysAction, VsToToSystem};
    use gcs_ioa::Automaton;
    use gcs_model::{Majority, View};
    use std::sync::Arc;

    fn system(n: u32) -> VsToToSystem {
        let procs = ProcId::range(n);
        VsToToSystem::new(procs.clone(), procs, Arc::new(Majority::new(n as usize)))
    }

    #[test]
    fn initial_allstate_contains_each_processor_summary() {
        let sys = system(3);
        let s = sys.initial();
        for p in ProcId::range(3) {
            let xs = allstate_pg(&s, p, ViewId::initial());
            assert_eq!(xs.len(), 1, "exactly the local summary for {p}");
            assert_eq!(xs[0], s.proc(p).summary());
        }
        assert!(allcontent(&s).unwrap().is_empty());
        assert_eq!(allconfirm(&s), Some(vec![]));
    }

    #[test]
    fn summaries_in_flight_are_tracked() {
        let sys = system(2);
        let mut s = sys.initial();
        let g1 = ViewId::new(1, ProcId(0));
        let v1 = View::new(g1, ProcId::range(2));
        sys.apply(&mut s, &SysAction::CreateView(v1.clone()));
        sys.apply(&mut s, &SysAction::NewView { p: ProcId(0), v: v1.clone() });
        let m = s.proc(ProcId(0)).gpsnd_ready().unwrap();
        sys.apply(&mut s, &SysAction::GpSnd { p: ProcId(0), m: m.clone() });
        // Now p0's summary sits in pending[p0, g1] *and* in its own state.
        let xs = allstate_pg(&s, ProcId(0), g1);
        assert_eq!(xs.len(), 2);
        // Order it into the queue: still tracked (case 3).
        sys.apply(&mut s, &SysAction::VsOrder { p: ProcId(0), g: g1, m: m.clone() });
        let xs = allstate_pg(&s, ProcId(0), g1);
        assert_eq!(xs.len(), 2);
        // Deliver to p0 itself: recorded in gotstate (case 4), dequeued
        // from VS (next pointer moves but the queue keeps the element;
        // allstate intentionally counts the queue copy).
        sys.apply(&mut s, &SysAction::GpRcv { src: ProcId(0), dst: ProcId(0), m });
        let xs = allstate_pg(&s, ProcId(0), g1);
        assert_eq!(xs.len(), 3);
    }

    #[test]
    fn allcontent_accumulates_labelled_values() {
        let sys = system(2);
        let mut s = sys.initial();
        sys.apply(&mut s, &SysAction::Bcast { p: ProcId(1), a: Value::from_u64(5) });
        assert!(allcontent(&s).unwrap().is_empty(), "unlabelled values are not content");
        sys.apply(&mut s, &SysAction::Label { p: ProcId(1) });
        let ac = allcontent(&s).unwrap();
        assert_eq!(ac.len(), 1);
        let (l, a) = ac.iter().next().unwrap();
        assert_eq!(l.origin, ProcId(1));
        assert_eq!(a, &Value::from_u64(5));
    }
}
