//! Reconstruction of the `cause` function and the trace properties of
//! Lemma 4.2, plus the per-view prefix-delivery property.
//!
//! Lemma 4.2 states that every trace of `VS-machine` admits a unique
//! mapping from `gprcv`/`safe` events to the `gpsnd` events that caused
//! them, satisfying message integrity (same value, same view at both
//! ends), no duplication, no reordering, and no losses (per sender and
//! view, deliveries form a prefix of the sends). The proof observes that
//! the *i*-th `gprcv_{p,q}` within a view must map to the *i*-th
//! `gpsnd_p` within that view; [`check_trace`] reconstructs exactly that
//! mapping and verifies each property, along with:
//!
//! - *local monotonicity* and *self inclusion* of `newview` events
//!   (basic safety properties 1–2 of the introduction);
//! - the *per-view prefix total order*: the full receive sequences of any
//!   two members of a view are prefix-related;
//! - the *safe notification* semantics: `safe(m)_{p,q}` occurs only after
//!   `gprcv(m)_{p,r}` for every member `r` of `q`'s current view.
//!
//! The checker runs over any sequence of `VS` actions — traces of
//! `VS-machine` itself, or traces recorded from the token-ring
//! implementation in `gcs-vsimpl` (experiment E3).

use crate::vs_machine::VsAction;
use gcs_model::{ProcId, View, ViewId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The result of checking a trace: counts of checked events and all
/// violations found (empty ⇔ the trace satisfies Lemma 4.2 and the
/// prefix-delivery property).
#[derive(Clone, Debug, Default)]
pub struct CauseReport {
    /// Number of `gprcv` events checked.
    pub gprcv_checked: usize,
    /// Number of `safe` events checked.
    pub safe_checked: usize,
    /// Number of `newview` events checked.
    pub newview_checked: usize,
    /// Number of distinct views observed.
    pub views_seen: usize,
    /// Human-readable violation descriptions.
    pub violations: Vec<String>,
}

impl CauseReport {
    /// Whether the trace passed every check.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for CauseReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cause check: {} gprcv, {} safe, {} newview, {} views, {} violations",
            self.gprcv_checked,
            self.safe_checked,
            self.newview_checked,
            self.views_seen,
            self.violations.len()
        )
    }
}

/// Checks a `VS` action sequence against Lemma 4.2 and the per-view
/// prefix-delivery property. `p0` is the initial membership *P₀* (whose
/// members start in the initial view).
pub fn check_trace<M: Clone + PartialEq + fmt::Debug>(
    actions: &[VsAction<M>],
    p0: &BTreeSet<ProcId>,
) -> CauseReport {
    let mut report = CauseReport::default();
    let v0 = View::initial(p0.clone());

    // Current view of each processor (None = ⊥); membership of each seen view.
    let mut current: BTreeMap<ProcId, Option<View>> = BTreeMap::new();
    for &p in p0 {
        current.insert(p, Some(v0.clone()));
    }
    let mut memberships: BTreeMap<ViewId, BTreeSet<ProcId>> = BTreeMap::new();
    memberships.insert(v0.id, v0.set.clone());

    // Sends per (sender, view), in order.
    let mut sends: BTreeMap<(ProcId, ViewId), Vec<M>> = BTreeMap::new();
    // Delivery counters per (sender, receiver, view) for gprcv and safe.
    let mut rcv_count: BTreeMap<(ProcId, ProcId, ViewId), usize> = BTreeMap::new();
    let mut safe_count: BTreeMap<(ProcId, ProcId, ViewId), usize> = BTreeMap::new();
    // Full receive sequence per (receiver, view), for the prefix property.
    let mut rcv_seq: BTreeMap<(ProcId, ViewId), Vec<(ProcId, M)>> = BTreeMap::new();
    // Which processors have received a given (sender, view, index) message,
    // for the safe-coverage check.
    let mut receivers_of: BTreeMap<(ProcId, ViewId, usize), BTreeSet<ProcId>> = BTreeMap::new();

    for (idx, a) in actions.iter().enumerate() {
        match a {
            VsAction::CreateView(v) => {
                memberships.insert(v.id, v.set.clone());
            }
            VsAction::VsOrder { .. } => {}
            VsAction::NewView { p, v } => {
                report.newview_checked += 1;
                memberships.insert(v.id, v.set.clone());
                if !v.set.contains(p) {
                    report
                        .violations
                        .push(format!("event {idx}: newview({v})_{p} without self inclusion"));
                }
                let prev = current.get(p).cloned().flatten();
                if let Some(prev) = prev {
                    if v.id <= prev.id {
                        report.violations.push(format!(
                            "event {idx}: newview at {p} not monotone ({} after {})",
                            v.id, prev.id
                        ));
                    }
                }
                current.insert(*p, Some(v.clone()));
            }
            VsAction::GpSnd { p, m } => {
                if let Some(Some(view)) = current.get(p) {
                    sends.entry((*p, view.id)).or_default().push(m.clone());
                }
                // Sends at ⊥ are ignored (never delivered); nothing to record.
            }
            VsAction::GpRcv { src, dst, m } => {
                report.gprcv_checked += 1;
                let Some(Some(view)) = current.get(dst).cloned() else {
                    report
                        .violations
                        .push(format!("event {idx}: gprcv({m:?})_{src},{dst} while {dst} is at ⊥"));
                    continue;
                };
                let g = view.id;
                let k = rcv_count.entry((*src, *dst, g)).or_insert(0);
                let sent = sends.get(&(*src, g));
                match sent.and_then(|v| v.get(*k)) {
                    None => report.violations.push(format!(
                        "event {idx}: gprcv #{k} of {src}→{dst} in {g} has no matching gpsnd \
                         (message integrity / no-duplication)"
                    )),
                    Some(sm) if sm != m => report.violations.push(format!(
                        "event {idx}: gprcv #{k} of {src}→{dst} in {g}: got {m:?}, \
                         cause sent {sm:?} (no-reordering / no-losses)"
                    )),
                    Some(_) => {
                        receivers_of.entry((*src, g, *k)).or_default().insert(*dst);
                    }
                }
                *k += 1;
                rcv_seq.entry((*dst, g)).or_default().push((*src, m.clone()));
            }
            VsAction::Safe { src, dst, m } => {
                report.safe_checked += 1;
                let Some(Some(view)) = current.get(dst).cloned() else {
                    report
                        .violations
                        .push(format!("event {idx}: safe({m:?})_{src},{dst} while {dst} is at ⊥"));
                    continue;
                };
                let g = view.id;
                let k = safe_count.entry((*src, *dst, g)).or_insert(0);
                let sent = sends.get(&(*src, g));
                match sent.and_then(|v| v.get(*k)) {
                    None => report.violations.push(format!(
                        "event {idx}: safe #{k} of {src}→{dst} in {g} has no matching gpsnd"
                    )),
                    Some(sm) if sm != m => report.violations.push(format!(
                        "event {idx}: safe #{k} of {src}→{dst} in {g}: got {m:?}, \
                         cause sent {sm:?}"
                    )),
                    Some(_) => {
                        // Safe coverage: every member of the view has
                        // received this message already.
                        let got = receivers_of.get(&(*src, g, *k));
                        let members = memberships.get(&g).cloned().unwrap_or_default();
                        let missing: Vec<ProcId> = members
                            .iter()
                            .copied()
                            .filter(|r| !got.is_some_and(|set| set.contains(r)))
                            .collect();
                        if !missing.is_empty() {
                            report.violations.push(format!(
                                "event {idx}: safe #{k} of {src}→{dst} in {g} before \
                                 delivery at {missing:?}"
                            ));
                        }
                    }
                }
                // Safe must not outrun delivery at dst itself (next-safe ≤ next).
                let delivered = rcv_count.get(&(*src, *dst, g)).copied().unwrap_or(0);
                if *k >= delivered {
                    report.violations.push(format!(
                        "event {idx}: safe #{k} of {src}→{dst} in {g} but only {delivered} \
                         delivered at {dst}"
                    ));
                }
                *k += 1;
            }
        }
    }

    // Per-view prefix total order: receive sequences of any two members of
    // the same view are prefix-related.
    let mut views: BTreeSet<ViewId> = BTreeSet::new();
    for (_, g) in rcv_seq.keys() {
        views.insert(*g);
    }
    report.views_seen = memberships.len();
    for g in views {
        let seqs: Vec<(&ProcId, &Vec<(ProcId, M)>)> =
            rcv_seq.iter().filter(|((_, gg), _)| *gg == g).map(|((q, _), s)| (q, s)).collect();
        for (i, (q1, s1)) in seqs.iter().enumerate() {
            for (q2, s2) in &seqs[i + 1..] {
                let pfx = gcs_model::seq::is_prefix(s1, s2) || gcs_model::seq::is_prefix(s2, s1);
                if !pfx {
                    report.violations.push(format!(
                        "view {g}: receive sequences at {q1} and {q2} are not prefix-related"
                    ));
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_model::Value;

    type A = VsAction<Value>;

    fn p0() -> BTreeSet<ProcId> {
        ProcId::range(2)
    }

    fn snd(p: u32, x: u64) -> A {
        VsAction::GpSnd { p: ProcId(p), m: Value::from_u64(x) }
    }
    fn rcv(src: u32, dst: u32, x: u64) -> A {
        VsAction::GpRcv { src: ProcId(src), dst: ProcId(dst), m: Value::from_u64(x) }
    }
    fn safe(src: u32, dst: u32, x: u64) -> A {
        VsAction::Safe { src: ProcId(src), dst: ProcId(dst), m: Value::from_u64(x) }
    }

    #[test]
    fn clean_trace_passes() {
        let trace = vec![snd(0, 1), rcv(0, 0, 1), rcv(0, 1, 1), safe(0, 0, 1), safe(0, 1, 1)];
        let r = check_trace(&trace, &p0());
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.gprcv_checked, 2);
        assert_eq!(r.safe_checked, 2);
    }

    #[test]
    fn duplication_is_caught() {
        let trace = vec![snd(0, 1), rcv(0, 1, 1), rcv(0, 1, 1)];
        let r = check_trace(&trace, &p0());
        assert!(!r.ok());
        assert!(r.violations[0].contains("no matching gpsnd"));
    }

    #[test]
    fn reordering_is_caught() {
        let trace = vec![snd(0, 1), snd(0, 2), rcv(0, 1, 2), rcv(0, 1, 1)];
        let r = check_trace(&trace, &p0());
        assert!(!r.ok());
        assert!(r.violations[0].contains("no-reordering"));
    }

    #[test]
    fn receive_without_send_is_caught() {
        let trace = vec![rcv(0, 1, 9)];
        let r = check_trace(&trace, &p0());
        assert!(!r.ok());
    }

    #[test]
    fn premature_safe_is_caught() {
        // p1 never received the message, so safe at p0 is premature.
        let trace = vec![snd(0, 1), rcv(0, 0, 1), safe(0, 0, 1)];
        let r = check_trace(&trace, &p0());
        assert!(!r.ok());
        assert!(r.violations[0].contains("before delivery"));
    }

    #[test]
    fn cross_view_delivery_is_caught() {
        // Message sent in g0, delivered after the receiver moved to g1.
        let v1 = View::new(ViewId::new(1, ProcId(0)), p0());
        let trace = vec![snd(0, 1), VsAction::NewView { p: ProcId(1), v: v1 }, rcv(0, 1, 1)];
        let r = check_trace(&trace, &p0());
        assert!(!r.ok(), "sending-view delivery must be enforced");
    }

    #[test]
    fn non_monotone_newview_is_caught() {
        let v1 = View::new(ViewId::new(1, ProcId(0)), p0());
        let trace = vec![
            VsAction::NewView { p: ProcId(0), v: v1 },
            VsAction::NewView { p: ProcId(0), v: View::initial(p0()) },
        ];
        let r = check_trace::<Value>(&trace, &p0());
        assert!(!r.ok());
        assert!(r.violations[0].contains("not monotone"));
    }

    #[test]
    fn divergent_receive_sequences_are_caught() {
        // Two senders; receivers see them in different orders.
        let trace =
            vec![snd(0, 1), snd(1, 2), rcv(0, 0, 1), rcv(1, 0, 2), rcv(1, 1, 2), rcv(0, 1, 1)];
        let r = check_trace(&trace, &p0());
        assert!(!r.ok());
        assert!(r.violations.iter().any(|v| v.contains("not prefix-related")));
    }

    #[test]
    fn spec_machine_traces_pass_the_checker() {
        use crate::adversary::VsAdversary;
        use crate::vs_machine::VsMachine;
        use gcs_ioa::Runner;
        for seed in 0..5 {
            let m: VsMachine<Value> = VsMachine::new(ProcId::range(3), ProcId::range(3));
            let mut runner = Runner::new(m, VsAdversary::default(), seed);
            let exec = runner.run(500).unwrap();
            let r = check_trace(exec.actions(), &ProcId::range(3));
            assert!(r.ok(), "seed {seed}: {:?}", r.violations.first());
        }
    }
}
