//! The per-processor `VStoTO` algorithm (Figures 9 and 10).
//!
//! `VsToToProc` is the state of one `VStoTO_p` automaton together with its
//! transition functions, written so that the same code drives both the
//! abstract composed system ([`crate::system::VsToToSystem`], where a
//! scheduler resolves nondeterminism) and the timed implementation stack
//! (`gcs-vsimpl`, where a good processor performs enabled actions
//! immediately). Keeping a single implementation of the algorithm means
//! the code that is model-checked against `TO-machine` is exactly the code
//! that runs over the simulated network.
//!
//! ## Normal activity
//!
//! Client values are queued in `delay`, given system-wide unique labels
//! (`label(a)_p`), stored in `content`, and multicast in the current view
//! (`gpsnd(⟨l,a⟩)_p`). Delivered ⟨label, value⟩ pairs are appended to the
//! tentative `order` when the view is primary; `safe` indications mark
//! labels confirmable, `confirm_p` advances the confirmed prefix, and
//! `brcv(a)_{q,p}` releases confirmed values to the client.
//!
//! ## Recovery activity
//!
//! On `newview`, the processor sends a summary of its state and collects
//! the summaries of all members (`gotstate`). When the last summary
//! arrives it *establishes* the view: it adopts `maxnextconfirm` and, for
//! a primary view, `fullorder(gotstate)` (setting `highprimary` to the new
//! view id), or for a non-primary view, `shortorder(gotstate)` (adopting
//! the representative's `highprimary`). Once every member's summary is
//! reported safe, all exchanged labels become safe in a primary view.

use crate::msg::AppMsg;
use gcs_model::summary::{fullorder, maxnextconfirm, maxprimary, shortorder};
use gcs_model::{ContentMap, GotState, Label, ProcId, QuorumSystem, Summary, Value, View, ViewId};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// The processing status of a `VStoTO_p` automaton.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProcStatus {
    /// Anywhere other than in the first phase of recovery.
    Normal,
    /// After a `newview`, before sending the state-exchange message.
    Send,
    /// Waiting for some members' state-exchange messages.
    Collect,
}

/// The state of one `VStoTO_p` automaton (Figure 9), plus its processor
/// identifier and the quorum system 𝒬 (fixed configuration).
#[derive(Clone)]
pub struct VsToToProc {
    /// This processor's identifier (the subscript *p*).
    pub id: ProcId,
    /// The quorum system used for the `primary` test.
    pub quorums: Arc<dyn QuorumSystem>,
    /// `current ∈ views⊥`: the current view.
    pub current: Option<View>,
    /// `highprimary ∈ G⊥`.
    pub highprimary: Option<ViewId>,
    /// `status`.
    pub status: ProcStatus,
    /// `delay`: client values not yet labelled.
    pub delay: VecDeque<Value>,
    /// `content ⊆ L × A` (a partial function by Lemma 6.5), stored as a
    /// [`ContentMap`]: dense per-⟨view, origin⟩ seqno vectors instead of
    /// one ever-growing ordered map, so the per-label touches on the
    /// token hot path cost a small-group walk plus an index rather than
    /// an O(log *history*) tree descent.
    pub content: ContentMap,
    /// `nextseqno ∈ ℕ⁺`.
    pub nextseqno: u64,
    /// `buffer`: labelled values not yet multicast.
    pub buffer: VecDeque<Label>,
    /// `order ∈ L*`: the tentative total order.
    pub order: Vec<Label>,
    /// Derived index over `order` for the duplicate-membership test in
    /// `gprcv` — a linear `order.contains` there makes every receipt
    /// O(|order|) and a long run quadratic. Not part of the automaton
    /// state (excluded from `PartialEq`); rebuilt whenever `order` is
    /// replaced wholesale at view establishment.
    order_set: BTreeSet<Label>,
    /// Derived positional cache: `order_vals[i] = content[order[i]]`,
    /// `None` while that content has not arrived (a recovery order can
    /// run ahead of its values). Lets `brcv` read the next value by
    /// position instead of walking `content` — the map holds the whole
    /// delivered history, so that walk grows with run length. Like
    /// `order_set`, not automaton state: excluded from `PartialEq`,
    /// rebuilt when `order` is replaced at establishment.
    order_vals: Vec<Option<Value>>,
    /// `nextconfirm ∈ ℕ⁺`.
    pub nextconfirm: u64,
    /// `nextreport ∈ ℕ⁺`.
    pub nextreport: u64,
    /// `gotstate`: summaries collected in the current recovery.
    pub gotstate: GotState,
    /// `safe-exch ⊆ P`: members whose summaries are safe.
    pub safe_exch: BTreeSet<ProcId>,
    /// `safe-labels ⊆ L`.
    pub safe_labels: BTreeSet<Label>,
}

impl PartialEq for VsToToProc {
    fn eq(&self, other: &Self) -> bool {
        // Configuration (id, quorums) aside, compare the automaton state.
        self.id == other.id
            && self.current == other.current
            && self.highprimary == other.highprimary
            && self.status == other.status
            && self.delay == other.delay
            && self.content == other.content
            && self.nextseqno == other.nextseqno
            && self.buffer == other.buffer
            && self.order == other.order
            && self.nextconfirm == other.nextconfirm
            && self.nextreport == other.nextreport
            && self.gotstate == other.gotstate
            && self.safe_exch == other.safe_exch
            && self.safe_labels == other.safe_labels
    }
}

impl fmt::Debug for VsToToProc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VsToToProc")
            .field("id", &self.id)
            .field("current", &self.current)
            .field("highprimary", &self.highprimary)
            .field("status", &self.status)
            .field("delay", &self.delay)
            .field("nextseqno", &self.nextseqno)
            .field("buffer", &self.buffer)
            .field("order", &self.order)
            .field("nextconfirm", &self.nextconfirm)
            .field("nextreport", &self.nextreport)
            .field("gotstate_dom", &self.gotstate.keys().collect::<Vec<_>>())
            .field("safe_exch", &self.safe_exch)
            .field("safe_labels", &self.safe_labels)
            .field("content_len", &self.content.len())
            .finish()
    }
}

/// What a `gprcv` effect did, so the composed system can maintain its
/// history variables.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GprcvOutcome {
    /// Whether this receipt completed the state exchange (the processor
    /// *established* its current view: `status` became `Normal`).
    pub established: bool,
}

impl VsToToProc {
    /// The start state for processor `p`: members of `P₀` begin in the
    /// initial view with `highprimary = g₀`; everyone else at ⊥.
    pub fn initial(id: ProcId, p0: &BTreeSet<ProcId>, quorums: Arc<dyn QuorumSystem>) -> Self {
        let in_p0 = p0.contains(&id);
        // Figure 9 initializes highprimary to g₀ for members of P₀ — which
        // presumes the initial view is primary. When P₀ does not contain a
        // quorum, that initialization contradicts Lemma 6.11(2) in the very
        // start state (established non-primary view with highprimary equal
        // to the current id); see DESIGN.md "Findings". We therefore treat
        // g₀ as having affected the order only when ⟨g₀, P₀⟩ is primary,
        // which is also semantically accurate: a non-primary initial view
        // never orders anything.
        let v0_primary = quorums.is_quorum(p0);
        VsToToProc {
            id,
            quorums,
            current: in_p0.then(|| View::initial(p0.clone())),
            highprimary: (in_p0 && v0_primary).then(ViewId::initial),
            status: ProcStatus::Normal,
            delay: VecDeque::new(),
            content: ContentMap::new(),
            nextseqno: 1,
            buffer: VecDeque::new(),
            order: Vec::new(),
            order_set: BTreeSet::new(),
            order_vals: Vec::new(),
            nextconfirm: 1,
            nextreport: 1,
            gotstate: GotState::new(),
            safe_exch: BTreeSet::new(),
            safe_labels: BTreeSet::new(),
        }
    }

    /// The derived variable `primary`: the current view is defined and its
    /// membership contains a quorum.
    pub fn primary(&self) -> bool {
        self.current.as_ref().is_some_and(|v| self.quorums.is_quorum(&v.set))
    }

    /// The current view identifier, if defined.
    pub fn current_id(&self) -> Option<ViewId> {
        self.current.as_ref().map(|v| v.id)
    }

    /// This processor's state summary
    /// `⟨content, order, nextconfirm, highprimary⟩`.
    pub fn summary(&self) -> Summary {
        Summary {
            con: self.content.to_map(),
            ord: self.order.clone(),
            next: self.nextconfirm,
            high: self.highprimary,
        }
    }

    // ------------------------------------------------------------------
    // Input actions
    // ------------------------------------------------------------------

    /// Input `bcast(a)_p`: append `a` to `delay`.
    pub fn bcast(&mut self, a: Value) {
        self.delay.push_back(a);
    }

    /// Input `newview(v)_p`: start recovery for view `v`.
    pub fn newview(&mut self, v: View) {
        self.current = Some(v);
        self.nextseqno = 1;
        self.buffer.clear();
        self.gotstate.clear();
        self.safe_exch.clear();
        self.safe_labels.clear();
        self.status = ProcStatus::Send;
    }

    /// Input `gprcv(m)_{q,p}` for both message kinds.
    pub fn gprcv(&mut self, src: ProcId, m: &AppMsg) -> GprcvOutcome {
        match m {
            AppMsg::Val(l, a) => {
                self.content.insert(*l, a.clone());
                // Figure 10 appends unconditionally; the guard below is a
                // necessary correction. A value labelled during recovery
                // (after `newview`, before the summary goes out) is part of
                // the summary's `con`, so on establishment `fullorder`
                // already places its label in `order`; when the ordinary
                // message later arrives, an unconditional append would
                // duplicate the label — and a duplicate in `order` gets
                // confirmed and delivered twice, violating `TO-machine`.
                // (Caught by the executable simulation check of
                // Theorem 6.26; see DESIGN.md.)
                if self.primary() {
                    if self.order_set.len() == self.order.len() {
                        // Index in sync: one walk both tests and inserts.
                        if self.order_set.insert(*l) {
                            self.order.push(*l);
                            self.order_vals.push(Some(a.clone()));
                        }
                    } else if !self.order.contains(l) {
                        // A test poked `order` directly; fall back to the
                        // paper's scan and let establishment rebuild.
                        self.order.push(*l);
                        self.order_set.insert(*l);
                    }
                }
                GprcvOutcome { established: false }
            }
            AppMsg::Summary(x) => {
                for (l, a) in &x.con {
                    self.content.insert(*l, a.clone());
                }
                self.gotstate.insert(src, x.clone());
                let complete = self
                    .current
                    .as_ref()
                    .is_some_and(|v| self.gotstate.keys().copied().eq(v.set.iter().copied()));
                if complete && self.status == ProcStatus::Collect {
                    self.nextconfirm = maxnextconfirm(&self.gotstate);
                    if self.primary() {
                        self.order = fullorder(&self.gotstate);
                        self.highprimary = self.current_id();
                    } else {
                        self.order = shortorder(&self.gotstate);
                        self.highprimary = maxprimary(&self.gotstate);
                    }
                    self.order_set = self.order.iter().copied().collect();
                    self.order_vals =
                        self.order.iter().map(|l| self.content.get(l).cloned()).collect();
                    self.status = ProcStatus::Normal;
                    GprcvOutcome { established: true }
                } else {
                    GprcvOutcome { established: false }
                }
            }
        }
    }

    /// Input `safe(m)_{q,p}` for both message kinds.
    pub fn safe(&mut self, src: ProcId, m: &AppMsg) {
        match m {
            AppMsg::Val(l, _) => {
                if self.primary() {
                    self.safe_labels.insert(*l);
                }
            }
            AppMsg::Summary(_) => {
                self.safe_exch.insert(src);
                let all = self
                    .current
                    .as_ref()
                    .is_some_and(|v| self.safe_exch.iter().copied().eq(v.set.iter().copied()));
                if all && self.primary() {
                    self.safe_labels.extend(fullorder(&self.gotstate));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Locally controlled actions: precondition tests and effects
    // ------------------------------------------------------------------

    /// Whether internal `label(a)_p` is enabled (head of `delay` exists and
    /// the current view is defined); returns the value that would be
    /// labelled.
    pub fn label_ready(&self) -> Option<&Value> {
        if self.current.is_some() {
            self.delay.front()
        } else {
            None
        }
    }

    /// Effect of `label(a)_p`.
    ///
    /// # Panics
    ///
    /// Panics if not enabled.
    pub fn do_label(&mut self) -> Label {
        let a = self.delay.pop_front().expect("label: delay empty");
        let current = self.current.as_ref().expect("label: no current view");
        let l = Label::new(current.id, self.nextseqno, self.id);
        self.content.insert(l, a);
        self.buffer.push_back(l);
        self.nextseqno += 1;
        l
    }

    /// Whether output `gpsnd(m)_p` is enabled, and for which message:
    /// the state-exchange summary when `status = send`, or the head of
    /// `buffer` when `status = normal`.
    pub fn gpsnd_ready(&self) -> Option<AppMsg> {
        match self.status {
            ProcStatus::Send => Some(AppMsg::Summary(self.summary())),
            ProcStatus::Normal => {
                let l = self.buffer.front()?;
                let a = self.content.get(l)?;
                Some(AppMsg::Val(*l, a.clone()))
            }
            ProcStatus::Collect => None,
        }
    }

    /// Whether `gpsnd(m)_p` is enabled *for this specific message* —
    /// equivalent to `gpsnd_ready() == Some(m)` but compared
    /// component-wise against the live state, so no summary or value is
    /// materialized per test (the scheduler calls this on every
    /// enabledness probe).
    pub fn gpsnd_matches(&self, m: &AppMsg) -> bool {
        match m {
            AppMsg::Summary(x) => {
                self.status == ProcStatus::Send
                    && x.next == self.nextconfirm
                    && x.high == self.highprimary
                    && x.ord == self.order
                    && self.content.eq_map(&x.con)
            }
            AppMsg::Val(l, a) => {
                self.status == ProcStatus::Normal
                    && self.buffer.front() == Some(l)
                    && self.content.get(l) == Some(a)
            }
        }
    }

    /// Effect of `gpsnd(m)_p`.
    ///
    /// # Panics
    ///
    /// Panics if `m` does not match [`VsToToProc::gpsnd_ready`].
    pub fn do_gpsnd(&mut self, m: &AppMsg) {
        assert!(self.gpsnd_matches(m), "gpsnd of an unready message");
        match m {
            AppMsg::Val(..) => {
                self.buffer.pop_front();
            }
            AppMsg::Summary(_) => {
                self.status = ProcStatus::Collect;
            }
        }
    }

    /// Whether internal `confirm_p` is enabled:
    /// `primary ∧ order(nextconfirm) ∈ safe-labels`.
    pub fn confirm_ready(&self) -> bool {
        self.primary()
            && self
                .order
                .get(self.nextconfirm as usize - 1)
                .is_some_and(|l| self.safe_labels.contains(l))
    }

    /// Effect of `confirm_p`; returns the confirmed label.
    ///
    /// # Panics
    ///
    /// Panics if not enabled.
    pub fn do_confirm(&mut self) -> Label {
        assert!(self.confirm_ready(), "confirm not enabled");
        let l = self.order[self.nextconfirm as usize - 1];
        self.nextconfirm += 1;
        l
    }

    /// Whether output `brcv(a)_{q,p}` is enabled; returns
    /// `(q, a)` = (origin of the next confirmed label, its value).
    pub fn brcv_ready(&self) -> Option<(ProcId, Value)> {
        self.brcv_ready_ref().map(|(q, a)| (q, a.clone()))
    }

    /// [`VsToToProc::brcv_ready`] without cloning the value — the form
    /// the scheduler's enabledness test uses.
    pub fn brcv_ready_ref(&self) -> Option<(ProcId, &Value)> {
        if self.nextreport < self.nextconfirm {
            let l = self.order.get(self.nextreport as usize - 1)?;
            let a = self.content.get(l)?;
            Some((l.origin, a))
        } else {
            None
        }
    }

    /// Effect of `brcv(a)_{q,p}`.
    ///
    /// # Panics
    ///
    /// Panics if not enabled.
    pub fn do_brcv(&mut self) -> (ProcId, Value) {
        let out = self.brcv_ready().expect("brcv not enabled");
        self.nextreport += 1;
        out
    }

    /// Runs every enabled `label` and `gpsnd` step in one pass,
    /// appending each message to send to `out`; returns whether anything
    /// fired. Equivalent to alternating
    /// [`VsToToProc::do_label`]/[`VsToToProc::do_gpsnd`] until neither is
    /// enabled, with the same redundancy argument as
    /// [`VsToToProc::drain_confirm_brcv`]: the check-then-act pairs walk
    /// `content` twice per sent value (once to materialize the message,
    /// once to re-verify it); here a freshly labelled value is shipped
    /// with the `content` walk skipped entirely, since its bytes are
    /// still in hand.
    pub fn drain_label_gpsnd(&mut self, out: &mut Vec<AppMsg>) -> bool {
        let mut progressed = false;
        let direct = self.status == ProcStatus::Normal && self.buffer.is_empty();
        if let Some(vid) = self.current.as_ref().map(|v| v.id) {
            while let Some(a) = self.delay.pop_front() {
                let l = Label::new(vid, self.nextseqno, self.id);
                self.nextseqno += 1;
                if direct {
                    // label + gpsnd fused: the buffer stays empty, the
                    // message carries the value without a map walk.
                    self.content.insert(l, a.clone());
                    out.push(AppMsg::Val(l, a));
                } else {
                    self.content.insert(l, a);
                    self.buffer.push_back(l);
                }
                progressed = true;
            }
        }
        match self.status {
            ProcStatus::Send => {
                out.push(AppMsg::Summary(self.summary()));
                self.status = ProcStatus::Collect;
                progressed = true;
            }
            ProcStatus::Normal => {
                while let Some(l) = self.buffer.front().copied() {
                    let Some(a) = self.content.get(&l) else { break };
                    out.push(AppMsg::Val(l, a.clone()));
                    self.buffer.pop_front();
                    progressed = true;
                }
            }
            ProcStatus::Collect => {}
        }
        progressed
    }

    /// Runs every enabled `confirm` and `brcv` step in one pass,
    /// appending each delivered `(origin, value)` to `out`; returns
    /// whether anything fired. Equivalent to alternating
    /// [`VsToToProc::do_confirm`]/[`VsToToProc::do_brcv`] until neither
    /// is enabled, but each `order`/`safe-labels`/`content` lookup is
    /// evaluated exactly once — the enabledness probe and the effect
    /// share the walk. This is the per-delivery hot path: the separate
    /// check-then-act calls re-walk three maps per delivered value, and
    /// at ring throughput those redundant walks dominate client-layer
    /// CPU.
    pub fn drain_confirm_brcv(&mut self, out: &mut Vec<(ProcId, Value)>) -> bool {
        let mut progressed = false;
        if self.primary() {
            while let Some(&l) = self.order.get(self.nextconfirm as usize - 1) {
                // Membership test and prune in one walk: a confirmed
                // label is never consulted again (`confirm` only ever
                // probes `order[nextconfirm-1]`, which is past it), so
                // dropping it keeps `safe-labels` at the in-flight
                // window instead of the whole run's history. The spec
                // path (`confirm_ready`/`do_confirm`) keeps the paper's
                // monotone set; a view change's summary exchange may
                // re-add confirmed labels, which is harmless — they are
                // dead weight until the next establishment, nothing
                // queries them.
                if !self.safe_labels.remove(&l) {
                    break;
                }
                self.nextconfirm += 1;
                progressed = true;
            }
        }
        let vals_synced = self.order_vals.len() == self.order.len();
        while self.nextreport < self.nextconfirm {
            let idx = self.nextreport as usize - 1;
            let Some(&l) = self.order.get(idx) else { break };
            let a = if vals_synced {
                match self.order_vals.get_mut(idx) {
                    Some(Some(a)) => a.clone(),
                    Some(slot @ None) => {
                        // Recovery order ran ahead of its content; fill
                        // the cache the first time the value shows up.
                        let Some(a) = self.content.get(&l) else { break };
                        *slot = Some(a.clone());
                        a.clone()
                    }
                    None => break,
                }
            } else {
                let Some(a) = self.content.get(&l) else { break };
                a.clone()
            };
            out.push((l.origin, a));
            self.nextreport += 1;
            progressed = true;
        }
        progressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_model::Majority;

    fn proc(id: u32, n: u32) -> VsToToProc {
        VsToToProc::initial(ProcId(id), &ProcId::range(n), Arc::new(Majority::new(n as usize)))
    }

    fn send_own(p: &mut VsToToProc, x: u64) -> (Label, Value) {
        let a = Value::from_u64(x);
        p.bcast(a.clone());
        let l = p.do_label();
        let m = AppMsg::Val(l, a.clone());
        p.do_gpsnd(&m);
        (l, a)
    }

    #[test]
    fn initial_state_depends_on_p0_membership() {
        let inside = proc(0, 3);
        assert!(inside.current.is_some());
        assert_eq!(inside.highprimary, Some(ViewId::initial()));
        let outside = VsToToProc::initial(ProcId(9), &ProcId::range(3), Arc::new(Majority::new(3)));
        assert!(outside.current.is_none());
        assert!(outside.highprimary.is_none());
        assert!(outside.label_ready().is_none());
    }

    #[test]
    fn normal_flow_confirms_and_reports_in_order() {
        // Single-processor group: p0 alone is a majority of 1.
        let mut p = proc(0, 1);
        let (l, a) = send_own(&mut p, 7);
        // VS loops the message back.
        p.gprcv(ProcId(0), &AppMsg::Val(l, a.clone()));
        assert_eq!(p.order, vec![l]);
        assert!(!p.confirm_ready()); // not yet safe
        p.safe(ProcId(0), &AppMsg::Val(l, a.clone()));
        assert!(p.confirm_ready());
        p.do_confirm();
        assert_eq!(p.brcv_ready(), Some((ProcId(0), a.clone())));
        let (src, got) = p.do_brcv();
        assert_eq!((src, got), (ProcId(0), a));
        assert!(p.brcv_ready().is_none());
    }

    #[test]
    fn non_primary_records_content_but_does_not_order() {
        let mut p = proc(0, 3); // majority of 3 needs 2 members
        let v = View::new(ViewId::new(1, ProcId(0)), [ProcId(0)].into());
        p.newview(v);
        assert!(!p.primary());
        // Recover through the (solo) state exchange.
        let x = p.gpsnd_ready().unwrap();
        p.do_gpsnd(&x);
        let out = p.gprcv(ProcId(0), &x.clone());
        assert!(out.established);
        let (l, a) = send_own(&mut p, 1);
        p.gprcv(ProcId(0), &AppMsg::Val(l, a.clone()));
        assert!(p.content.contains_key(&l));
        assert!(p.order.is_empty(), "non-primary must not extend order");
        p.safe(ProcId(0), &AppMsg::Val(l, a));
        assert!(p.safe_labels.is_empty(), "non-primary ignores safe");
    }

    #[test]
    fn newview_resets_recovery_state_but_keeps_history() {
        let mut p = proc(0, 1);
        let (l, a) = send_own(&mut p, 3);
        p.gprcv(ProcId(0), &AppMsg::Val(l, a.clone()));
        p.safe(ProcId(0), &AppMsg::Val(l, a));
        p.do_confirm();
        let order_before = p.order.clone();
        let v = View::new(ViewId::new(1, ProcId(0)), [ProcId(0)].into());
        p.newview(v);
        assert_eq!(p.status, ProcStatus::Send);
        assert_eq!(p.nextseqno, 1);
        assert!(p.buffer.is_empty() && p.safe_labels.is_empty() && p.gotstate.is_empty());
        assert_eq!(p.order, order_before, "order survives view change");
        assert_eq!(p.nextconfirm, 2, "confirmed prefix survives view change");
    }

    #[test]
    fn state_exchange_in_primary_adopts_fullorder_and_new_highprimary() {
        // Two of three processors form a primary view and exchange state.
        let g1 = ViewId::new(1, ProcId(0));
        let v = View::new(g1, [ProcId(0), ProcId(1)].into());
        let mut p0 = proc(0, 3);
        let mut p1 = proc(1, 3);
        // p1 knows a label that p0 does not.
        let (l1, _a1) = send_own(&mut p1, 10);
        p0.newview(v.clone());
        p1.newview(v.clone());
        let x0 = p0.gpsnd_ready().unwrap();
        p0.do_gpsnd(&x0);
        let x1 = p1.gpsnd_ready().unwrap();
        p1.do_gpsnd(&x1);
        // Deliver both summaries to p0 (VS order).
        assert!(!p0.gprcv(ProcId(0), &x0).established);
        let out = p0.gprcv(ProcId(1), &x1);
        assert!(out.established);
        assert!(p0.primary());
        assert_eq!(p0.highprimary, Some(g1));
        assert!(p0.order.contains(&l1), "fullorder must pick up p1's label");
        assert_eq!(p0.status, ProcStatus::Normal);
        // Safe exchange: labels become safe only when both summaries are safe.
        p0.safe(ProcId(0), &x0);
        assert!(p0.safe_labels.is_empty());
        p0.safe(ProcId(1), &x1);
        assert!(p0.safe_labels.contains(&l1));
    }

    #[test]
    fn state_exchange_in_non_primary_adopts_representative_order() {
        let quorums: Arc<dyn QuorumSystem> = Arc::new(Majority::new(5));
        let p0_set = ProcId::range(5);
        let mut p0 = VsToToProc::initial(ProcId(0), &p0_set, quorums.clone());
        let mut p1 = VsToToProc::initial(ProcId(1), &p0_set, quorums);
        // Minority view {p0, p1} of the 5-processor system.
        let g1 = ViewId::new(1, ProcId(0));
        let v = View::new(g1, [ProcId(0), ProcId(1)].into());
        // p1 has a more advanced history: highprimary g0 with an order.
        let l = Label::new(ViewId::initial(), 1, ProcId(1));
        p1.content.insert(l, Value::from_u64(5));
        p1.order.push(l);
        p0.newview(v.clone());
        p1.newview(v.clone());
        let x0 = p0.gpsnd_ready().unwrap();
        p0.do_gpsnd(&x0);
        let x1 = p1.gpsnd_ready().unwrap();
        p1.do_gpsnd(&x1);
        p0.gprcv(ProcId(0), &x0);
        let out = p0.gprcv(ProcId(1), &x1);
        assert!(out.established);
        assert!(!p0.primary());
        // Both reps have high = g0; chosenrep is the max id (p1), whose
        // order contains l.
        assert_eq!(p0.order, vec![l]);
        assert_eq!(p0.highprimary, Some(ViewId::initial()));
    }

    #[test]
    fn gpsnd_blocked_while_collecting() {
        let mut p = proc(0, 1);
        let v = View::new(ViewId::new(1, ProcId(0)), [ProcId(0)].into());
        p.newview(v);
        p.bcast(Value::from_u64(1));
        p.do_label(); // labelling is allowed during recovery
                      // status = Send: the only send allowed is the summary.
        assert!(matches!(p.gpsnd_ready(), Some(AppMsg::Summary(_))));
        let x = p.gpsnd_ready().unwrap();
        p.do_gpsnd(&x);
        // status = Collect: nothing may be sent.
        assert!(p.gpsnd_ready().is_none());
        p.gprcv(ProcId(0), &x);
        // status = Normal again: the buffered label may go out.
        assert!(matches!(p.gpsnd_ready(), Some(AppMsg::Val(..))));
    }

    #[test]
    fn labels_are_unique_and_increasing_per_view() {
        let mut p = proc(0, 1);
        p.bcast(Value::from_u64(1));
        p.bcast(Value::from_u64(2));
        let l1 = p.do_label();
        let l2 = p.do_label();
        assert!(l1 < l2);
        assert_eq!(l1.seqno, 1);
        assert_eq!(l2.seqno, 2);
    }
}
