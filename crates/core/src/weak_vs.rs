//! The `WeakVS-machine` variant (Section 4.1, Remark) and the
//! createview-reordering construction that proves it trace-equivalent to
//! `VS-machine`.
//!
//! `WeakVS-machine` weakens the `createview(v)` precondition so that it
//! only enforces *unique* identifiers, not in-order creation. The paper
//! observes that the two machines allow exactly the same finite traces,
//! by reordering `createview` events ("pushing any such event earlier
//! than any createview event for a bigger view"); this module implements
//! that reordering ([`reorder_createviews`]) so the claim can be tested
//! on arbitrary executions (experiment E8).

use crate::vs_machine::{VsAction, VsMachine, VsState};
use gcs_ioa::{ActionKind, Automaton};
use gcs_model::View;
use std::collections::BTreeSet;
use std::fmt;

/// `WeakVS-machine`: identical to [`VsMachine`] except that `createview`
/// only requires the new identifier to be distinct from all created ones.
#[derive(Clone, Debug)]
pub struct WeakVsMachine<M> {
    inner: VsMachine<M>,
}

impl<M> WeakVsMachine<M> {
    /// Creates the machine (same parameters as [`VsMachine::new`]).
    pub fn new(procs: BTreeSet<gcs_model::ProcId>, p0: BTreeSet<gcs_model::ProcId>) -> Self {
        WeakVsMachine { inner: VsMachine::new(procs, p0) }
    }

    /// The strong machine with the same parameters.
    pub fn strong(&self) -> &VsMachine<M> {
        &self.inner
    }

    fn weak_createview_enabled(&self, s: &VsState<M>, v: &View) -> bool {
        !v.set.is_empty()
            && v.set.is_subset(self.inner.procs())
            && s.created.iter().all(|w| v.id != w.id)
    }
}

impl<M: Clone + fmt::Debug + PartialEq> Automaton for WeakVsMachine<M> {
    type State = VsState<M>;
    type Action = VsAction<M>;

    fn initial(&self) -> VsState<M> {
        self.inner.initial()
    }

    fn enabled(&self, s: &VsState<M>) -> Vec<VsAction<M>> {
        self.inner.enabled(s)
    }

    fn is_enabled(&self, s: &VsState<M>, action: &VsAction<M>) -> bool {
        match action {
            VsAction::CreateView(v) => self.weak_createview_enabled(s, v),
            other => self.inner.is_enabled(s, other),
        }
    }

    fn apply(&self, s: &mut VsState<M>, action: &VsAction<M>) {
        self.inner.apply(s, action);
    }

    fn kind(&self, action: &VsAction<M>) -> ActionKind {
        self.inner.kind(action)
    }
}

/// Rewrites a `WeakVS-machine` action sequence into a `VS-machine` action
/// sequence with the same trace, by moving `createview` events so they
/// occur in ascending identifier order while still preceding every event
/// that depends on them.
///
/// The construction: let `u₁ < u₂ < … < u_k` be the created views in
/// identifier order, and let `t_i` be the index (in the sequence without
/// `createview` events) of the first event depending on `u_i` (its first
/// `newview`); place `createview(u_i)` just before index
/// `min_{j ≥ i} t_j`, breaking ties by ascending `i`. The result is a
/// valid `VS-machine` execution (checked by the caller via replay) with an
/// unchanged external subsequence, because `createview` is internal.
pub fn reorder_createviews<M: Clone + PartialEq>(actions: &[VsAction<M>]) -> Vec<VsAction<M>> {
    // Split off createview events, remembering the created views.
    let mut views: Vec<View> = Vec::new();
    let mut rest: Vec<VsAction<M>> = Vec::new();
    for a in actions {
        match a {
            VsAction::CreateView(v) => views.push(v.clone()),
            other => rest.push(other.clone()),
        }
    }
    views.sort_by_key(|v| v.id);
    // First dependent position of each view within `rest`.
    let first_dep = |v: &View| -> usize {
        rest.iter()
            .position(|a| matches!(a, VsAction::NewView { v: w, .. } if w.id == v.id))
            .unwrap_or(rest.len())
    };
    let t: Vec<usize> = views.iter().map(first_dep).collect();
    // d_i = min_{j >= i} t_j, computed backwards.
    let mut d = t.clone();
    for i in (0..d.len().saturating_sub(1)).rev() {
        d[i] = d[i].min(d[i + 1]);
    }
    // Interleave: before emitting rest[j], emit every createview with d_i == j.
    let mut out = Vec::with_capacity(actions.len());
    let mut vi = 0;
    for (j, a) in rest.iter().enumerate() {
        while vi < views.len() && d[vi] <= j {
            out.push(VsAction::CreateView(views[vi].clone()));
            vi += 1;
        }
        out.push(a.clone());
    }
    while vi < views.len() {
        out.push(VsAction::CreateView(views[vi].clone()));
        vi += 1;
    }
    out
}

/// Replays `actions` through `machine`, returning `Err` with the index of
/// the first action that is not enabled (the final state otherwise).
pub fn replay<A: Automaton>(machine: &A, actions: &[A::Action]) -> Result<A::State, usize> {
    let mut s = machine.initial();
    for (i, a) in actions.iter().enumerate() {
        if !machine.is_enabled(&s, a) {
            return Err(i);
        }
        machine.apply(&mut s, a);
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_model::{ProcId, Value, ViewId};

    type M = Value;

    fn weak() -> WeakVsMachine<M> {
        WeakVsMachine::new(ProcId::range(3), ProcId::range(3))
    }

    fn strong() -> VsMachine<M> {
        VsMachine::new(ProcId::range(3), ProcId::range(3))
    }

    fn v(epoch: u64, ids: &[u32]) -> View {
        View::new(ViewId::new(epoch, ProcId(ids[0])), ids.iter().map(|&i| ProcId(i)).collect())
    }

    #[test]
    fn weak_machine_allows_out_of_order_creation() {
        let w = weak();
        let mut s = w.initial();
        let v3 = v(3, &[0, 1]);
        let v1 = v(1, &[0, 2]);
        w.apply(&mut s, &VsAction::CreateView(v3.clone()));
        // Out-of-order: enabled in weak, not in strong.
        assert!(w.is_enabled(&s, &VsAction::CreateView(v1.clone())));
        assert!(!strong().is_enabled(&s, &VsAction::CreateView(v1.clone())));
        // Duplicates rejected in both.
        assert!(!w.is_enabled(&s, &VsAction::CreateView(v3)));
    }

    #[test]
    fn reordering_turns_weak_executions_into_strong_ones() {
        // Build a weak execution with descending createview order and
        // interleaved dependent events.
        let w = weak();
        let actions: Vec<VsAction<M>> = vec![
            VsAction::CreateView(v(5, &[0, 1, 2])),
            VsAction::NewView { p: ProcId(0), v: v(5, &[0, 1, 2]) },
            VsAction::GpSnd { p: ProcId(0), m: Value::from_u64(1) },
            VsAction::CreateView(v(2, &[1, 2])),
            VsAction::VsOrder { p: ProcId(0), g: ViewId::new(5, ProcId(0)), m: Value::from_u64(1) },
            VsAction::GpRcv { src: ProcId(0), dst: ProcId(0), m: Value::from_u64(1) },
            VsAction::CreateView(v(1, &[0])),
        ];
        // Valid in the weak machine...
        replay(&w, &actions).expect("weak replay");
        // ...not in the strong machine as-is...
        assert!(replay(&strong(), &actions).is_err());
        // ...but valid after reordering, with the same trace.
        let reordered = reorder_createviews(&actions);
        replay(&strong(), &reordered).expect("strong replay after reordering");
        let ext = |acts: &[VsAction<M>]| -> Vec<VsAction<M>> {
            acts.iter().filter(|a| strong().kind(a).is_external()).cloned().collect()
        };
        assert_eq!(ext(&actions), ext(&reordered));
    }

    #[test]
    fn reordering_is_identity_for_already_ordered_executions() {
        let actions: Vec<VsAction<M>> = vec![
            VsAction::CreateView(v(1, &[0])),
            VsAction::NewView { p: ProcId(0), v: v(1, &[0]) },
            VsAction::CreateView(v(2, &[0, 1])),
            VsAction::NewView { p: ProcId(1), v: v(2, &[0, 1]) },
        ];
        let reordered = reorder_createviews(&actions);
        replay(&strong(), &reordered).expect("strong replay");
        // Dependencies still respected even if exact positions shift.
        let pos = |acts: &[VsAction<M>], pred: &dyn Fn(&VsAction<M>) -> bool| {
            acts.iter().position(pred).unwrap()
        };
        let c2 = pos(&reordered, &|a| matches!(a, VsAction::CreateView(w) if w.id.epoch == 2));
        let n2 =
            pos(&reordered, &|a| matches!(a, VsAction::NewView { v: w, .. } if w.id.epoch == 2));
        assert!(c2 < n2);
    }
}
