//! `TO-machine` trace-membership checking for black-box traces.
//!
//! The forward-simulation check of [`crate::simulation`] certifies the
//! *abstract* composed system, where the global state is visible. For the
//! implementation stack of `gcs-vsimpl` only the external trace is
//! observable; this module decides membership of such a trace in the
//! trace set of `TO-machine` directly from its characterization:
//!
//! 1. **Integrity**: every delivered value was previously broadcast, and
//!    is attributed to its true origin;
//! 2. **No duplication**: no receiver gets the same value twice;
//! 3. **Common total order**: the delivery sequences of any two receivers
//!    are prefix-related (so all are prefixes of one service order);
//! 4. **Per-sender FIFO**: the common order restricted to one sender's
//!    values respects that sender's submission order.
//!
//! Together these are exactly the finite traces of Figure 3's automaton
//! (for unique broadcast values, which the checker verifies first).

use crate::properties::ToObs;
use gcs_model::{ProcId, Value};
use std::collections::BTreeMap;
use std::fmt;

/// The outcome of a `TO-machine` trace-membership check.
#[derive(Clone, Debug, Default)]
pub struct ToTraceReport {
    /// Number of `bcast` events seen.
    pub bcasts: usize,
    /// Number of `brcv` events checked.
    pub brcvs: usize,
    /// Violation descriptions (empty ⇔ the trace is a `TO-machine` trace).
    pub violations: Vec<String>,
}

impl ToTraceReport {
    /// Whether the trace passed every check.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for ToTraceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "to-trace check: {} bcast, {} brcv, {} violations",
            self.bcasts,
            self.brcvs,
            self.violations.len()
        )
    }
}

/// Checks an (untimed) sequence of `TO` interface events for
/// `TO-machine` trace membership. Failure-status events are ignored.
pub fn check_to_trace(events: &[ToObs]) -> ToTraceReport {
    let mut report = ToTraceReport::default();
    // Broadcast log: value → (origin, submission index at that origin).
    let mut bcast: BTreeMap<Value, (ProcId, usize)> = BTreeMap::new();
    let mut submissions: BTreeMap<ProcId, usize> = BTreeMap::new();
    // Delivery sequences per receiver.
    let mut seqs: BTreeMap<ProcId, Vec<(ProcId, Value)>> = BTreeMap::new();

    for (idx, ev) in events.iter().enumerate() {
        match ev {
            ToObs::Bcast { p, a } => {
                report.bcasts += 1;
                let k = submissions.entry(*p).or_insert(0);
                if bcast.insert(a.clone(), (*p, *k)).is_some() {
                    report.violations.push(format!(
                        "event {idx}: value {a:?} broadcast twice; checker needs unique values"
                    ));
                }
                *k += 1;
            }
            ToObs::Brcv { src, dst, a } => {
                report.brcvs += 1;
                match bcast.get(a) {
                    None => report.violations.push(format!(
                        "event {idx}: {dst} delivered {a:?} never broadcast (integrity)"
                    )),
                    Some((origin, _)) if origin != src => report.violations.push(format!(
                        "event {idx}: {dst} delivered {a:?} attributed to {src}, \
                         actually from {origin}"
                    )),
                    Some(_) => {}
                }
                let seq = seqs.entry(*dst).or_default();
                if seq.iter().any(|(_, b)| b == a) {
                    report
                        .violations
                        .push(format!("event {idx}: {dst} delivered {a:?} twice (no-duplication)"));
                }
                seq.push((*src, a.clone()));
            }
            ToObs::Fail { .. } => {}
        }
    }

    // Common total order: all delivery sequences prefix-related.
    let receivers: Vec<&ProcId> = seqs.keys().collect();
    for (i, q1) in receivers.iter().enumerate() {
        for q2 in &receivers[i + 1..] {
            let s1 = &seqs[q1];
            let s2 = &seqs[q2];
            if !gcs_model::seq::is_prefix(s1, s2) && !gcs_model::seq::is_prefix(s2, s1) {
                report.violations.push(format!(
                    "delivery sequences at {q1} and {q2} are not prefix-related \
                     (common total order)"
                ));
            }
        }
    }

    // Per-sender FIFO in the longest sequence.
    if let Some(longest) = seqs.values().max_by_key(|s| s.len()) {
        let mut last_index: BTreeMap<ProcId, usize> = BTreeMap::new();
        for (src, a) in longest {
            if let Some((_, k)) = bcast.get(a) {
                if let Some(prev) = last_index.get(src) {
                    if k <= prev {
                        report.violations.push(format!(
                            "order of {a:?} violates {src}'s submission order (FIFO)"
                        ));
                    }
                }
                last_index.insert(*src, *k);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bc(p: u32, x: u64) -> ToObs {
        ToObs::Bcast { p: ProcId(p), a: Value::from_u64(x) }
    }
    fn rv(src: u32, dst: u32, x: u64) -> ToObs {
        ToObs::Brcv { src: ProcId(src), dst: ProcId(dst), a: Value::from_u64(x) }
    }

    #[test]
    fn clean_trace_passes() {
        let r = check_to_trace(&[bc(0, 1), bc(1, 2), rv(0, 0, 1), rv(1, 0, 2), rv(0, 1, 1)]);
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.brcvs, 3);
    }

    #[test]
    fn phantom_delivery_is_caught() {
        let r = check_to_trace(&[rv(0, 1, 9)]);
        assert!(!r.ok());
        assert!(r.violations[0].contains("integrity"));
    }

    #[test]
    fn wrong_attribution_is_caught() {
        let r = check_to_trace(&[bc(0, 1), rv(2, 1, 1)]);
        assert!(!r.ok());
        assert!(r.violations[0].contains("attributed"));
    }

    #[test]
    fn duplicate_delivery_is_caught() {
        let r = check_to_trace(&[bc(0, 1), rv(0, 1, 1), rv(0, 1, 1)]);
        assert!(!r.ok());
        assert!(r.violations.iter().any(|v| v.contains("no-duplication")));
    }

    #[test]
    fn divergent_orders_are_caught() {
        let r = check_to_trace(&[
            bc(0, 1),
            bc(1, 2),
            rv(0, 0, 1),
            rv(1, 0, 2),
            rv(1, 1, 2),
            rv(0, 1, 1),
        ]);
        assert!(!r.ok());
        assert!(r.violations.iter().any(|v| v.contains("prefix-related")));
    }

    #[test]
    fn sender_fifo_violation_is_caught() {
        let r = check_to_trace(&[bc(0, 1), bc(0, 2), rv(0, 1, 2), rv(0, 1, 1)]);
        assert!(!r.ok());
        assert!(r.violations.iter().any(|v| v.contains("FIFO")));
    }

    #[test]
    fn prefix_deliveries_are_fine() {
        // One receiver far ahead; another has only a prefix.
        let r = check_to_trace(&[bc(0, 1), bc(0, 2), rv(0, 0, 1), rv(0, 0, 2), rv(0, 1, 1)]);
        assert!(r.ok(), "{:?}", r.violations);
    }

    #[test]
    fn abstract_system_traces_pass() {
        use crate::adversary::SystemAdversary;
        use crate::system::{SysAction, VsToToSystem};
        use gcs_ioa::Runner;
        use gcs_model::Majority;
        use std::sync::Arc;
        for seed in 0..3 {
            let procs = ProcId::range(3);
            let sys = VsToToSystem::new(procs.clone(), procs, Arc::new(Majority::new(3)));
            let mut runner = Runner::new(sys, SystemAdversary::default(), seed);
            let exec = runner.run(900).unwrap();
            let events: Vec<ToObs> = exec
                .actions()
                .iter()
                .filter_map(|a| match a {
                    SysAction::Bcast { p, a } => Some(ToObs::Bcast { p: *p, a: a.clone() }),
                    SysAction::Brcv { src, dst, a } => {
                        Some(ToObs::Brcv { src: *src, dst: *dst, a: a.clone() })
                    }
                    _ => None,
                })
                .collect();
            let r = check_to_trace(&events);
            assert!(r.ok(), "seed {seed}: {:?}", r.violations.first());
        }
    }
}
