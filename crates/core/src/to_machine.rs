//! The `TO-machine` specification automaton (Figure 3).
//!
//! `TO-machine` specifies the safety of a totally ordered broadcast
//! service. Clients submit data values with `bcast(a)_p`; an internal
//! `to-order(a,p)` step moves the value from the per-origin `pending`
//! queue into the single global `queue`; and `brcv(a)_{p,q}` delivers the
//! next queue element to the client at `q`. Every client therefore
//! receives a prefix of one common total order, consistent with each
//! sender's submission order.

use gcs_ioa::{ActionKind, Automaton};
use gcs_model::{ProcId, Value};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// An action of `TO-machine`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ToAction {
    /// Input `bcast(a)_p`: the client at `p` submits data value `a`.
    Bcast {
        /// Submitting location.
        p: ProcId,
        /// The data value.
        a: Value,
    },
    /// Internal `to-order(a, p)`: the head of `pending[p]` is appended to
    /// the global queue.
    ToOrder {
        /// Origin of the value being ordered.
        p: ProcId,
        /// The data value (must equal the head of `pending[p]`).
        a: Value,
    },
    /// Output `brcv(a)_{p,q}`: the value `a`, originated at `p`, is
    /// delivered to the client at `q`.
    Brcv {
        /// Origin of the value.
        src: ProcId,
        /// Receiving location.
        dst: ProcId,
        /// The data value.
        a: Value,
    },
}

/// The state of `TO-machine`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ToState {
    /// The global queue of ⟨value, origin⟩ pairs, in service order.
    pub queue: Vec<(Value, ProcId)>,
    /// Per-origin queues of submitted but not yet ordered values.
    pub pending: BTreeMap<ProcId, VecDeque<Value>>,
    /// `next[q]`: 1-based index into `queue` of the next value to deliver
    /// at `q`.
    pub next: BTreeMap<ProcId, u64>,
}

impl ToState {
    /// The start state for the given location set.
    pub fn initial(procs: &BTreeSet<ProcId>) -> Self {
        ToState {
            queue: Vec::new(),
            pending: procs.iter().map(|&p| (p, VecDeque::new())).collect(),
            next: procs.iter().map(|&p| (p, 1)).collect(),
        }
    }

    /// The prefix of the global order already delivered at `q`.
    pub fn delivered_prefix(&self, q: ProcId) -> &[(Value, ProcId)] {
        let n = (self.next.get(&q).copied().unwrap_or(1) - 1) as usize;
        &self.queue[..n.min(self.queue.len())]
    }
}

/// The `TO-machine` automaton over a fixed location set.
#[derive(Clone, Debug)]
pub struct ToMachine {
    procs: BTreeSet<ProcId>,
}

impl ToMachine {
    /// Creates the machine for the given location set *P*.
    pub fn new(procs: BTreeSet<ProcId>) -> Self {
        ToMachine { procs }
    }

    /// The location set *P*.
    pub fn procs(&self) -> &BTreeSet<ProcId> {
        &self.procs
    }
}

impl Automaton for ToMachine {
    type State = ToState;
    type Action = ToAction;

    fn initial(&self) -> ToState {
        ToState::initial(&self.procs)
    }

    fn enabled(&self, s: &ToState) -> Vec<ToAction> {
        let mut out = Vec::new();
        for (&p, pend) in &s.pending {
            if let Some(a) = pend.front() {
                out.push(ToAction::ToOrder { p, a: a.clone() });
            }
        }
        for &q in &self.procs {
            let idx = s.next[&q] as usize;
            if let Some((a, p)) = s.queue.get(idx - 1) {
                out.push(ToAction::Brcv { src: *p, dst: q, a: a.clone() });
            }
        }
        out
    }

    fn is_enabled(&self, s: &ToState, action: &ToAction) -> bool {
        match action {
            ToAction::Bcast { p, .. } => self.procs.contains(p),
            ToAction::ToOrder { p, a } => s.pending.get(p).and_then(|q| q.front()) == Some(a),
            ToAction::Brcv { src, dst, a } => {
                let Some(&next) = s.next.get(dst) else { return false };
                s.queue.get(next as usize - 1) == Some(&(a.clone(), *src))
            }
        }
    }

    fn apply(&self, s: &mut ToState, action: &ToAction) {
        match action {
            ToAction::Bcast { p, a } => {
                s.pending.get_mut(p).expect("unknown location").push_back(a.clone());
            }
            ToAction::ToOrder { p, a } => {
                let head = s.pending.get_mut(p).and_then(|q| q.pop_front());
                debug_assert_eq!(head.as_ref(), Some(a), "to-order of a non-head value");
                s.queue.push((a.clone(), *p));
            }
            ToAction::Brcv { dst, .. } => {
                *s.next.get_mut(dst).expect("unknown location") += 1;
            }
        }
    }

    fn kind(&self, action: &ToAction) -> ActionKind {
        match action {
            ToAction::Bcast { .. } => ActionKind::Input,
            ToAction::ToOrder { .. } => ActionKind::Internal,
            ToAction::Brcv { .. } => ActionKind::Output,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_ioa::automaton::FnEnvironment;
    use gcs_ioa::Runner;
    use rand::Rng;

    fn machine() -> ToMachine {
        ToMachine::new(ProcId::range(3))
    }

    #[test]
    fn bcast_then_order_then_deliver_everywhere() {
        let m = machine();
        let mut s = m.initial();
        let a = Value::from_u64(7);
        m.apply(&mut s, &ToAction::Bcast { p: ProcId(0), a: a.clone() });
        assert!(m.is_enabled(&s, &ToAction::ToOrder { p: ProcId(0), a: a.clone() }));
        m.apply(&mut s, &ToAction::ToOrder { p: ProcId(0), a: a.clone() });
        for q in 0..3 {
            let brcv = ToAction::Brcv { src: ProcId(0), dst: ProcId(q), a: a.clone() };
            assert!(m.is_enabled(&s, &brcv));
            m.apply(&mut s, &brcv);
        }
        assert_eq!(s.delivered_prefix(ProcId(2)).len(), 1);
    }

    #[test]
    fn delivery_respects_queue_order() {
        let m = machine();
        let mut s = m.initial();
        for x in [1u64, 2] {
            let a = Value::from_u64(x);
            m.apply(&mut s, &ToAction::Bcast { p: ProcId(1), a: a.clone() });
        }
        // FIFO per sender: to-order of the second value is not enabled yet.
        assert!(!m.is_enabled(&s, &ToAction::ToOrder { p: ProcId(1), a: Value::from_u64(2) }));
        m.apply(&mut s, &ToAction::ToOrder { p: ProcId(1), a: Value::from_u64(1) });
        // Cannot deliver the second value before the first.
        assert!(!m.is_enabled(
            &s,
            &ToAction::Brcv { src: ProcId(1), dst: ProcId(0), a: Value::from_u64(2) }
        ));
    }

    /// Safety of the spec itself: on random executions, every client's
    /// delivered sequence is a prefix of the global queue, and per-sender
    /// FIFO is preserved.
    #[test]
    fn random_executions_deliver_consistent_prefixes() {
        for seed in 0..10 {
            let env = FnEnvironment(|_: &ToState, step: usize, rng: &mut dyn rand::RngCore| {
                vec![ToAction::Bcast {
                    p: ProcId(rng.gen_range(0..3)),
                    a: Value::from_u64(step as u64),
                }]
            });
            let mut runner = Runner::new(machine(), env, seed);
            runner.add_invariant("next within queue", |s: &ToState| {
                for (&q, &n) in &s.next {
                    if n as usize > s.queue.len() + 1 {
                        return Err(format!("next[{q}] = {n} beyond queue"));
                    }
                }
                Ok(())
            });
            let exec = runner.run(300).unwrap();
            let s = exec.final_state();
            // Delivered sequences are prefixes of one total order by construction;
            // verify per-sender submission order is respected in the queue.
            for p in ProcId::range(3) {
                let sent: Vec<&Value> =
                    s.queue.iter().filter(|(_, o)| *o == p).map(|(a, _)| a).collect();
                let mut sorted = sent.clone();
                sorted.sort_by_key(|v| v.as_u64());
                assert_eq!(sent, sorted, "per-sender FIFO violated for {p}");
            }
        }
    }
}
