//! The message alphabet used by the `VStoTO` algorithm.

use gcs_model::{Label, Summary, Value};
use std::fmt;

/// A message of the `VStoTO` algorithm: *M = (L × A) ∪ summaries*
/// (Figure 9).
///
/// Ordinary messages carry a labelled data value; state-exchange messages
/// carry a summary of the sender's state.
#[derive(Clone, PartialEq, Eq)]
pub enum AppMsg {
    /// An ordinary ⟨label, value⟩ message.
    Val(Label, Value),
    /// A state-exchange summary.
    Summary(Summary),
}

impl AppMsg {
    /// The label, for ordinary messages.
    pub fn label(&self) -> Option<Label> {
        match self {
            AppMsg::Val(l, _) => Some(*l),
            AppMsg::Summary(_) => None,
        }
    }

    /// The summary, for state-exchange messages.
    pub fn summary(&self) -> Option<&Summary> {
        match self {
            AppMsg::Val(..) => None,
            AppMsg::Summary(x) => Some(x),
        }
    }
}

impl fmt::Debug for AppMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppMsg::Val(l, a) => write!(f, "⟨{l},{a:?}⟩"),
            AppMsg::Summary(x) => write!(
                f,
                "Σ(|con|={}, |ord|={}, next={}, high={:?})",
                x.con.len(),
                x.ord.len(),
                x.next,
                x.high
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_model::{ProcId, ViewId};

    #[test]
    fn accessors_distinguish_variants() {
        let l = Label::new(ViewId::new(1, ProcId(0)), 1, ProcId(0));
        let m = AppMsg::Val(l, Value::from_u64(1));
        assert_eq!(m.label(), Some(l));
        assert!(m.summary().is_none());
        let s = AppMsg::Summary(Summary::empty());
        assert!(s.label().is_none());
        assert!(s.summary().is_some());
    }
}
