//! Adversarial environments for the specification automata.
//!
//! The specifications leave two choices entirely to the environment: when
//! clients submit values (`bcast`/`gpsnd` inputs) and when views form
//! (`createview`, an internal action with an unbounded parameter — the
//! paper allows "arbitrary view changes during periods when the underlying
//! network is unstable"). These environments exercise both, with seeded
//! randomness, so that random executions reach deep states: multiple
//! concurrent views, partitions without primaries, merges, and recoveries.

use crate::msg::AppMsg;
use crate::system::{SysAction, SysState, VsToToSystem};
use crate::vs_machine::{VsAction, VsMachine, VsState};
use gcs_ioa::Environment;
use gcs_model::{ProcId, Value, View, ViewId};
use rand::{Rng, RngCore};
use std::collections::BTreeSet;

fn random_membership(procs: &[ProcId], rng: &mut dyn RngCore) -> BTreeSet<ProcId> {
    loop {
        let set: BTreeSet<ProcId> = procs.iter().copied().filter(|_| rng.gen_bool(0.5)).collect();
        if !set.is_empty() {
            return set;
        }
    }
}

/// An adversary for the composed [`VsToToSystem`]: proposes client
/// submissions with globally unique values and capricious view changes.
#[derive(Clone, Debug)]
pub struct SystemAdversary {
    /// Probability of proposing a `bcast` each step.
    pub bcast_prob: f64,
    /// Probability of proposing a `createview` each step.
    pub view_prob: f64,
    /// Stop proposing view changes after this step (lets executions
    /// quiesce into a final view, mirroring stabilization). `usize::MAX`
    /// keeps churning forever.
    pub churn_until: usize,
    /// Stop proposing submissions after this step.
    pub bcast_until: usize,
    next_value: u64,
}

impl Default for SystemAdversary {
    fn default() -> Self {
        SystemAdversary {
            bcast_prob: 0.3,
            view_prob: 0.05,
            churn_until: usize::MAX,
            bcast_until: usize::MAX,
            next_value: 0,
        }
    }
}

impl SystemAdversary {
    /// An adversary that churns views until `churn_until`, then lets the
    /// system quiesce.
    pub fn quiescing(churn_until: usize, bcast_until: usize) -> Self {
        SystemAdversary { churn_until, bcast_until, ..Default::default() }
    }

    /// Overrides the per-step `bcast` proposal probability.
    pub fn with_bcast_prob(mut self, p: f64) -> Self {
        self.bcast_prob = p;
        self
    }

    /// Overrides the per-step `createview` proposal probability.
    pub fn with_view_prob(mut self, p: f64) -> Self {
        self.view_prob = p;
        self
    }

    /// How many distinct values have been proposed so far.
    pub fn values_proposed(&self) -> u64 {
        self.next_value
    }

    fn next_view(s: &SysState, procs: &[ProcId], rng: &mut dyn RngCore) -> View {
        let epoch = s.vs.created.iter().map(|v| v.id.epoch).max().unwrap_or(0) + 1;
        let origin = procs[rng.gen_range(0..procs.len())];
        View::new(ViewId::new(epoch, origin), random_membership(procs, rng))
    }
}

impl Environment<VsToToSystem> for SystemAdversary {
    fn propose(&mut self, s: &SysState, step: usize, rng: &mut dyn RngCore) -> Vec<SysAction> {
        let procs: Vec<ProcId> = s.procs.keys().copied().collect();
        let mut out = Vec::new();
        if step < self.bcast_until && rng.gen_bool(self.bcast_prob) {
            let p = procs[rng.gen_range(0..procs.len())];
            out.push(SysAction::Bcast { p, a: Value::from_u64(self.next_value) });
            self.next_value += 1;
        }
        if step < self.churn_until && rng.gen_bool(self.view_prob) {
            out.push(SysAction::CreateView(Self::next_view(s, &procs, rng)));
        }
        out
    }
}

/// An adversary for a bare [`VsMachine`]: proposes `gpsnd` inputs carrying
/// unique values and capricious `createview` actions.
#[derive(Clone, Debug)]
pub struct VsAdversary {
    /// Probability of proposing a `gpsnd` each step.
    pub send_prob: f64,
    /// Probability of proposing a `createview` each step.
    pub view_prob: f64,
    next_value: u64,
}

impl Default for VsAdversary {
    fn default() -> Self {
        VsAdversary { send_prob: 0.4, view_prob: 0.08, next_value: 0 }
    }
}

impl Environment<VsMachine<Value>> for VsAdversary {
    fn propose(
        &mut self,
        s: &VsState<Value>,
        _step: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<VsAction<Value>> {
        let procs: Vec<ProcId> = s.current_viewid.keys().copied().collect();
        let mut out = Vec::new();
        if rng.gen_bool(self.send_prob) {
            let p = procs[rng.gen_range(0..procs.len())];
            out.push(VsAction::GpSnd { p, m: Value::from_u64(self.next_value) });
            self.next_value += 1;
        }
        if rng.gen_bool(self.view_prob) {
            let epoch = s.created.iter().map(|v| v.id.epoch).max().unwrap_or(0) + 1;
            let origin = procs[rng.gen_range(0..procs.len())];
            out.push(VsAction::CreateView(View::new(
                ViewId::new(epoch, origin),
                random_membership(&procs, rng),
            )));
        }
        out
    }
}

impl Environment<crate::weak_vs::WeakVsMachine<Value>> for VsAdversary {
    fn propose(
        &mut self,
        s: &VsState<Value>,
        step: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<VsAction<Value>> {
        // Same proposals as for the strict machine; the weak machine
        // additionally tolerates out-of-order identifiers, which E8's
        // dedicated adversary exercises.
        <Self as Environment<VsMachine<Value>>>::propose(self, s, step, rng)
    }
}

/// The same adversary shape for a `VsMachine<AppMsg>` is not needed — the
/// composed system's clients go through `bcast` — but scripted sequences
/// are: an environment that proposes a fixed action list in order.
#[derive(Clone, Debug)]
pub struct Scripted<A> {
    script: Vec<A>,
    pos: usize,
}

impl<A> Scripted<A> {
    /// Creates a scripted environment proposing `script` one action at a
    /// time (each until it is taken — callers should ensure proposals are
    /// eventually enabled).
    pub fn new(script: Vec<A>) -> Self {
        Scripted { script, pos: 0 }
    }
}

impl<M, A> Environment<M> for Scripted<A>
where
    M: gcs_ioa::Automaton<Action = A>,
    A: Clone + std::fmt::Debug + PartialEq,
{
    fn propose(&mut self, s: &M::State, _step: usize, _rng: &mut dyn RngCore) -> Vec<A> {
        let _ = s;
        match self.script.get(self.pos) {
            Some(a) => {
                self.pos += 1;
                vec![a.clone()]
            }
            None => Vec::new(),
        }
    }
}

/// Convenience: drive a composed system for `steps` steps under the
/// default adversary and return the number of `brcv` deliveries (a quick
/// health signal used by tests and benches).
pub fn drive_system(system: &VsToToSystem, seed: u64, steps: usize) -> usize {
    use gcs_ioa::Runner;
    let mut runner = Runner::new(system.clone(), SystemAdversary::default(), seed);
    let exec = runner.run(steps).expect("no invariants installed");
    exec.actions().iter().filter(|a| matches!(a, SysAction::Brcv { .. })).count()
}

/// Convenience: the count of ordinary-message `GpRcv` deliveries in an
/// action slice (used in tests).
pub fn count_ordinary_deliveries(actions: &[SysAction]) -> usize {
    actions.iter().filter(|a| matches!(a, SysAction::GpRcv { m: AppMsg::Val(..), .. })).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_model::Majority;
    use std::sync::Arc;

    #[test]
    fn default_adversary_reaches_deliveries() {
        let procs = ProcId::range(3);
        let sys = VsToToSystem::new(procs.clone(), procs, Arc::new(Majority::new(3)));
        // In the stable initial view, random scheduling should confirm and
        // deliver at least something within a few hundred steps.
        let delivered = drive_system(&sys, 1, 1500);
        assert!(delivered > 0, "no deliveries in 1500 steps");
    }

    #[test]
    fn churn_stops_after_deadline() {
        let procs = ProcId::range(3);
        let sys = VsToToSystem::new(procs.clone(), procs, Arc::new(Majority::new(3)));
        let adv = SystemAdversary::quiescing(100, usize::MAX);
        let mut runner = gcs_ioa::Runner::new(sys, adv, 3);
        let exec = runner.run(800).unwrap();
        let last_create =
            exec.actions().iter().rposition(|a| matches!(a, SysAction::CreateView(_)));
        if let Some(idx) = last_create {
            assert!(idx <= 100, "createview proposed after churn deadline");
        }
    }
}
