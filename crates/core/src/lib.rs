//! Executable specifications and the `VStoTO` algorithm from
//! *Specifying and Using a Partitionable Group Communication Service*
//! (Fekete, Lynch, Shvartsman).
//!
//! This crate is the paper's contribution rendered as code:
//!
//! | Paper artifact | Module |
//! |---|---|
//! | `TO-machine` (Figure 3) | [`to_machine`] |
//! | `TO-property(b,d,Q)` (Figure 5) | [`properties`] |
//! | `VS-machine` (Figure 6) | [`vs_machine`] |
//! | `WeakVS-machine` (Section 4.1 remark) | [`weak_vs`] |
//! | the `cause` function and Lemma 4.2 | [`cause`] |
//! | `VS-property(b,d,Q)` (Figure 7) | [`properties`] |
//! | `VStoTO_p` (Figures 8–10) | [`vstoto`] |
//! | `VStoTO-system` with history variables (Section 6) | [`system`] |
//! | derived variables `allstate`, `allcontent`, `allconfirm` | [`derived`] |
//! | the invariants of Lemma 4.1 and Section 6.1 | [`invariants`] |
//! | the simulation relation *f* (Section 6.2, Theorem 6.26) | [`simulation`] |
//!
//! The specification automata are *executable*: their nondeterminism is
//! resolved by the seeded schedulers of [`gcs_ioa`], with adversarially
//! chosen actions (view creation, client submissions) supplied by the
//! environments in [`adversary`]. The invariants and the simulation
//! relation are checked on-line after every step, turning the paper's hand
//! proofs into falsifiable runtime checks.
//!
//! # Example: the abstract stack end to end
//!
//! Run the composed `VStoTO-system` under a random scheduler and verify
//! that the trace it produces is a trace of `TO-machine`:
//!
//! ```
//! use gcs_core::adversary::SystemAdversary;
//! use gcs_core::system::VsToToSystem;
//! use gcs_core::simulation::install_simulation_check;
//! use gcs_ioa::Runner;
//! use gcs_model::{Majority, ProcId};
//! use std::sync::Arc;
//!
//! let procs = ProcId::range(3);
//! let system = VsToToSystem::new(procs.clone(), procs.clone(), Arc::new(Majority::new(3)));
//! let mut runner = Runner::new(system, SystemAdversary::default(), 7);
//! let violations = install_simulation_check(&mut runner);
//! runner.run(500).expect("no invariant violation");
//! assert!(violations.borrow().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod cause;
pub mod completion;
pub mod conformance;
pub mod derived;
pub mod invariants;
pub mod msg;
pub mod properties;
pub mod simulation;
pub mod system;
pub mod to_machine;
pub mod to_trace;
pub mod vs_machine;
pub mod vstoto;
pub mod weak_vs;

pub use conformance::{check_conformance, ConformanceReport};
pub use msg::AppMsg;
pub use system::{SysAction, SysState, VsToToSystem};
pub use to_machine::{ToAction, ToMachine, ToState};
pub use vs_machine::{VsAction, VsMachine, VsState};
pub use vstoto::{ProcStatus, VsToToProc};
