//! One entry point for checking an *implementation* trace against both
//! runtime safety specifications at once.
//!
//! Every harness that records a real execution — the TCP loopback
//! cluster, the threaded runtime, the deterministic simulation harness —
//! ends up with the same two questions: is the `TO` face of the trace a
//! `TO-machine` trace ([`crate::to_trace`]), and does the `VS` face
//! satisfy Lemma 4.2 and per-view prefix delivery ([`crate::cause`])?
//! [`check_conformance`] answers both and folds the outcome into a single
//! [`ConformanceReport`], so drivers (and their failure artifacts) have
//! one summary to print and one `ok()` to gate on.
//!
//! This crate cannot name the implementation's event type (the
//! implementation layers depend on `gcs-core`, not the other way
//! around), so the entry point takes the two *converted* faces — exactly
//! what `gcs_vsimpl::convert::{vs_actions, to_obs}` produce from a merged
//! recording.

use crate::cause::{check_trace, CauseReport};
use crate::msg::AppMsg;
use crate::properties::ToObs;
use crate::to_trace::{check_to_trace, ToTraceReport};
use crate::vs_machine::VsAction;
use gcs_model::ProcId;
use std::collections::BTreeSet;
use std::fmt;

/// The combined outcome of the `TO-machine` trace check and the `VS`
/// cause check over one implementation trace.
#[derive(Clone, Debug)]
pub struct ConformanceReport {
    /// The `TO-machine` trace-membership result.
    pub to: ToTraceReport,
    /// The Lemma 4.2 / prefix-delivery result.
    pub cause: CauseReport,
}

impl ConformanceReport {
    /// Whether both checkers passed.
    pub fn ok(&self) -> bool {
        self.to.ok() && self.cause.ok()
    }

    /// Every violation from both checkers, each prefixed with the
    /// checker that produced it.
    pub fn violations(&self) -> Vec<String> {
        let mut out: Vec<String> =
            self.to.violations.iter().map(|v| format!("to-trace: {v}")).collect();
        out.extend(self.cause.violations.iter().map(|v| format!("cause: {v}")));
        out
    }
}

impl fmt::Display for ConformanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}; {}", self.to, self.cause)
    }
}

/// Checks both runtime safety specifications over one recorded
/// execution: `vs` is the `VS` action face and `to` the untimed `TO`
/// interface face of the same merged trace; `p0` is the initial
/// membership *P₀*.
pub fn check_conformance(
    vs: &[VsAction<AppMsg>],
    to: &[ToObs],
    p0: &BTreeSet<ProcId>,
) -> ConformanceReport {
    ConformanceReport { to: check_to_trace(to), cause: check_trace(vs, p0) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_conforms() {
        let report = check_conformance(&[], &[], &ProcId::range(3));
        assert!(report.ok());
        assert!(report.violations().is_empty());
    }

    #[test]
    fn violations_carry_their_checker_prefix() {
        use gcs_model::Value;
        // A delivery of a value never broadcast: integrity violation.
        let to = [ToObs::Brcv { dst: ProcId(1), src: ProcId(0), a: Value::from_u64(9) }];
        let report = check_conformance(&[], &to, &ProcId::range(2));
        assert!(!report.ok());
        let vs = report.violations();
        assert!(vs.iter().all(|v| v.starts_with("to-trace: ")), "{vs:?}");
    }
}
