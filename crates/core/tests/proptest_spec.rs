//! Property-based tests on the specification layer: random action
//! sequences through the machines, summary algebra, and the createview
//! reordering construction.

use gcs_core::adversary::{SystemAdversary, VsAdversary};
use gcs_core::invariants::install_invariants;
use gcs_core::simulation::install_simulation_check;
use gcs_core::system::VsToToSystem;
use gcs_core::vs_machine::{VsAction, VsMachine};
use gcs_core::weak_vs::{reorder_createviews, replay, WeakVsMachine};
use gcs_ioa::{Automaton, Runner};
use gcs_model::summary::{fullorder, maxnextconfirm, maxprimary, shortorder};
use gcs_model::{GotState, Label, Majority, ProcId, Summary, Value, ViewId};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_label() -> impl Strategy<Value = Label> {
    (0u64..4, 1u64..5, 0u32..4)
        .prop_map(|(e, s, o)| Label::new(ViewId::new(e, ProcId(0)), s, ProcId(o)))
}

fn arb_summary() -> impl Strategy<Value = Summary> {
    (prop::collection::btree_set(arb_label(), 0..6), 1u64..6, prop::option::of((0u64..4, 0u32..3)))
        .prop_map(|(labels, next, high)| {
            let ord: Vec<Label> = labels.iter().copied().collect();
            let con = labels.iter().map(|l| (*l, Value::from_u64(l.seqno))).collect();
            Summary { con, ord, next, high: high.map(|(e, o)| ViewId::new(e, ProcId(o))) }
        })
}

fn arb_gotstate() -> impl Strategy<Value = GotState> {
    prop::collection::btree_map((0u32..4).prop_map(ProcId), arb_summary(), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// `fullorder` extends `shortorder` and contains exactly the labels of
    /// `knowncontent`, each once.
    #[test]
    fn fullorder_properties(y in arb_gotstate()) {
        let short = shortorder(&y);
        let full = fullorder(&y);
        prop_assert!(gcs_model::seq::is_prefix(&short, &full));
        let mut sorted = full.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), full.len(), "fullorder has duplicates");
        let known = gcs_model::summary::knowncontent(&y);
        for l in known.keys() {
            prop_assert!(full.contains(l), "knowncontent label missing from fullorder");
        }
        // Labels beyond shortorder appear in ascending label order.
        let tail = &full[short.len()..];
        prop_assert!(tail.windows(2).all(|w| w[0] < w[1]));
    }

    /// `maxprimary` dominates every summary's high; `maxnextconfirm`
    /// dominates every summary's next.
    #[test]
    fn gotstate_maxima(y in arb_gotstate()) {
        let mp = maxprimary(&y);
        let mn = maxnextconfirm(&y);
        for x in y.values() {
            prop_assert!(x.high <= mp);
            prop_assert!(x.next <= mn);
        }
        prop_assert!(y.values().any(|x| x.next == mn));
    }

    /// `confirm` is always a prefix of `ord` with length `min(next-1, |ord|)`.
    #[test]
    fn confirm_shape(x in arb_summary()) {
        let c = x.confirm();
        prop_assert!(gcs_model::seq::is_prefix(&c, &x.ord));
        prop_assert_eq!(c.len() as u64, (x.next - 1).min(x.ord.len() as u64));
    }

    /// Random seeds: the composed system satisfies all invariants and the
    /// simulation relation (the workhorse refinement property, driven by
    /// proptest-chosen seeds and adversary probabilities).
    #[test]
    fn composed_system_refines_to_machine(
        seed in any::<u64>(),
        bcast_prob in 0.05f64..0.9,
        view_prob in 0.0f64..0.3,
    ) {
        let procs = ProcId::range(3);
        let sys = VsToToSystem::new(procs.clone(), procs, Arc::new(Majority::new(3)));
        let adv = SystemAdversary::default()
            .with_bcast_prob(bcast_prob)
            .with_view_prob(view_prob);
        let mut runner = Runner::new(sys, adv, seed);
        install_invariants(&mut runner);
        let violations = install_simulation_check(&mut runner);
        runner.run(350).map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert!(violations.borrow().is_empty(),
            "{:?}", violations.borrow().first());
    }

    /// Weak executions always reorder into strong executions with the
    /// same trace.
    #[test]
    fn weak_reordering_roundtrip(seed in any::<u64>()) {
        let weak: WeakVsMachine<Value> =
            WeakVsMachine::new(ProcId::range(3), ProcId::range(3));
        // VsAdversary only proposes ascending ids; mix in descending ones
        // by running the weak machine and then injecting artificial
        // creations is already covered in E8 — here seeds explore the
        // scheduler space.
        let mut runner = Runner::new(weak, VsAdversary::default(), seed);
        let exec = runner.run(250).map_err(|e| TestCaseError::fail(format!("{e}")))?;
        let strong: VsMachine<Value> = VsMachine::new(ProcId::range(3), ProcId::range(3));
        let reordered = reorder_createviews(exec.actions());
        prop_assert!(replay(&strong, &reordered).is_ok());
        let ext = |acts: &[VsAction<Value>]| -> Vec<VsAction<Value>> {
            acts.iter().filter(|a| strong.kind(a).is_external()).cloned().collect()
        };
        prop_assert_eq!(ext(exec.actions()), ext(&reordered));
    }

    /// The VS machine's own executions always pass the Lemma 4.2 cause
    /// checker and complete back into the specification.
    #[test]
    fn vs_machine_traces_selfcheck(seed in any::<u64>()) {
        let m: VsMachine<Value> = VsMachine::new(ProcId::range(3), ProcId::range(3));
        let mut runner = Runner::new(m, VsAdversary::default(), seed);
        let exec = runner.run(300).map_err(|e| TestCaseError::fail(format!("{e}")))?;
        let r = gcs_core::cause::check_trace(exec.actions(), &ProcId::range(3));
        prop_assert!(r.ok(), "{:?}", r.violations.first());
        let external: Vec<VsAction<Value>> = exec
            .actions()
            .iter()
            .filter(|a| !matches!(a, VsAction::CreateView(_) | VsAction::VsOrder { .. }))
            .cloned()
            .collect();
        let incl = gcs_core::completion::complete_and_replay(
            &external,
            ProcId::range(3),
            ProcId::range(3),
        );
        prop_assert!(incl.is_ok(), "{:?}", incl.err());
    }
}
