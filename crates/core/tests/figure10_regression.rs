//! Regression test for the Figure 10 corner case documented in DESIGN.md:
//! a value labelled *during recovery* (after `newview`, before the
//! summary is sent) must be delivered to clients exactly once, even
//! though its label reaches `order` both through `fullorder` at
//! establishment and through the ordinary message delivery.

use gcs_core::adversary::Scripted;
use gcs_core::msg::AppMsg;
use gcs_core::simulation::install_simulation_check;
use gcs_core::system::{SysAction, VsToToSystem};
use gcs_ioa::{Automaton, Runner};
use gcs_model::{Majority, ProcId, Value, View, ViewId};
use std::sync::Arc;

fn system() -> VsToToSystem {
    let procs = ProcId::range(2);
    VsToToSystem::new(procs.clone(), procs, Arc::new(Majority::new(2)))
}

/// Drive the exact interleaving by hand: `bcast` lands between `newview`
/// and the summary send, so the label rides inside the summary's
/// `content` *and* goes out later as an ordinary message.
#[test]
fn value_labelled_during_recovery_is_delivered_exactly_once() {
    let sys = system();
    let g1 = ViewId::new(1, ProcId(0));
    let v1 = View::new(g1, ProcId::range(2));
    let a = Value::from_u64(42);

    let mut runner = Runner::new(sys.clone(), Scripted::<SysAction>::new(vec![]), 0);
    let violations = install_simulation_check(&mut runner);

    let do_act = |runner: &mut Runner<VsToToSystem, _>, act: SysAction| {
        assert!(
            runner.automaton().is_enabled(runner.state(), &act),
            "script error: {act:?} not enabled"
        );
        runner.perform(act).expect("no invariants fail");
    };

    // New view announced to both processors.
    do_act(&mut runner, SysAction::CreateView(v1.clone()));
    do_act(&mut runner, SysAction::NewView { p: ProcId(0), v: v1.clone() });
    do_act(&mut runner, SysAction::NewView { p: ProcId(1), v: v1.clone() });
    // The client submits at p0 *during recovery*; p0 labels it while its
    // status is still `send`.
    do_act(&mut runner, SysAction::Bcast { p: ProcId(0), a: a.clone() });
    do_act(&mut runner, SysAction::Label { p: ProcId(0) });
    // Summaries go out; p0's summary now contains the label in `con`.
    let x0 = runner.state().proc(ProcId(0)).gpsnd_ready().expect("summary");
    assert!(
        matches!(&x0, AppMsg::Summary(s) if s.con.len() == 1),
        "the label must ride in the summary: {x0:?}"
    );
    do_act(&mut runner, SysAction::GpSnd { p: ProcId(0), m: x0.clone() });
    let x1 = runner.state().proc(ProcId(1)).gpsnd_ready().expect("summary");
    do_act(&mut runner, SysAction::GpSnd { p: ProcId(1), m: x1.clone() });
    do_act(&mut runner, SysAction::VsOrder { p: ProcId(0), g: g1, m: x0.clone() });
    do_act(&mut runner, SysAction::VsOrder { p: ProcId(1), g: g1, m: x1.clone() });
    // Everyone receives both summaries: both establish; fullorder places
    // the label into order already.
    for dst in [ProcId(0), ProcId(1)] {
        do_act(&mut runner, SysAction::GpRcv { src: ProcId(0), dst, m: x0.clone() });
        do_act(&mut runner, SysAction::GpRcv { src: ProcId(1), dst, m: x1.clone() });
    }
    for p in [ProcId(0), ProcId(1)] {
        assert_eq!(
            runner.state().proc(p).order.len(),
            1,
            "establishment must order the exchanged label at {p}"
        );
    }
    // Now the buffered ordinary message goes out and is delivered — the
    // Figure 10 corner: an unguarded append would double the label here.
    let m = runner.state().proc(ProcId(0)).gpsnd_ready().expect("ordinary message");
    assert!(matches!(m, AppMsg::Val(..)));
    do_act(&mut runner, SysAction::GpSnd { p: ProcId(0), m: m.clone() });
    do_act(&mut runner, SysAction::VsOrder { p: ProcId(0), g: g1, m: m.clone() });
    for dst in [ProcId(0), ProcId(1)] {
        do_act(&mut runner, SysAction::GpRcv { src: ProcId(0), dst, m: m.clone() });
    }
    for p in [ProcId(0), ProcId(1)] {
        assert_eq!(
            runner.state().proc(p).order.len(),
            1,
            "no duplicate label in order at {p} (Figure 10 dedup guard)"
        );
    }
    // Make everything safe and confirm: the value is delivered exactly
    // once at each client. Safe events for the summaries then the value.
    for dst in [ProcId(0), ProcId(1)] {
        do_act(&mut runner, SysAction::Safe { src: ProcId(0), dst, m: x0.clone() });
        do_act(&mut runner, SysAction::Safe { src: ProcId(1), dst, m: x1.clone() });
        do_act(&mut runner, SysAction::Safe { src: ProcId(0), dst, m: m.clone() });
    }
    for p in [ProcId(0), ProcId(1)] {
        do_act(&mut runner, SysAction::Confirm { p });
        do_act(&mut runner, SysAction::Brcv { src: ProcId(0), dst: p, a: a.clone() });
        // A second delivery of the same value must be impossible.
        assert!(
            !runner.automaton().is_enabled(
                runner.state(),
                &SysAction::Brcv { src: ProcId(0), dst: p, a: a.clone() }
            ),
            "duplicate delivery enabled at {p}"
        );
        assert!(!runner.state().proc(p).confirm_ready(), "second confirm enabled at {p}");
    }
    assert!(
        violations.borrow().is_empty(),
        "simulation violated: {:?}",
        violations.borrow().first()
    );
}
