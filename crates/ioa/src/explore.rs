//! Bounded exhaustive exploration: breadth-first search over *all*
//! reachable states of an automaton up to a depth bound, checking
//! invariants (and optionally a forward simulation) on every state.
//!
//! Random scheduling (the [`crate::Runner`]) goes deep; exploration goes
//! wide. For tiny configurations — two or three processors, a couple of
//! values, one adversarial view — the composed `VStoTO-system` has a
//! state space small enough to enumerate exhaustively for a dozen levels,
//! which checks the paper's invariants on *every* reachable state rather
//! than a sampled path.

use crate::automaton::Automaton;
// gcs-lint: allow(determinism, reason = "HashSet is used only as a visited-set for BFS dedup; membership tests are order-free and nothing iterates it, so randomized iteration order cannot reach a digest")
use std::collections::{HashSet, VecDeque};

/// Exploration limits.
#[derive(Clone, Copy, Debug)]
pub struct ExploreLimits {
    /// Maximum BFS depth (number of actions from the start state).
    pub max_depth: usize,
    /// Maximum number of distinct states to visit.
    pub max_states: usize,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits { max_depth: 12, max_states: 200_000 }
    }
}

/// Statistics from a completed exploration.
#[derive(Clone, Debug)]
pub struct ExploreStats {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions (state, action) examined.
    pub transitions: usize,
    /// Depth actually reached.
    pub depth_reached: usize,
    /// Whether exploration was truncated by `max_states`.
    pub truncated: bool,
}

/// The result of an exploration: statistics, or the first failure with a
/// witness action path from the start state.
pub type ExploreResult<A> = Result<ExploreStats, (Vec<<A as Automaton>::Action>, String)>;

/// Explores all states reachable from the start state via the automaton's
/// enabled actions plus the actions proposed by `extra` (an adversary with
/// a *deterministic, finite* proposal set per state — exploration needs
/// reproducible branching, so no RNG here).
///
/// `check` is evaluated on every visited state; the first `Err` aborts the
/// search and returns the action path that reached the offending state.
///
/// States are deduplicated by their `Debug` rendering, which every state
/// type in this workspace derives in full; this keeps the explorer
/// independent of `Hash` implementations at the cost of some string
/// building.
pub fn explore<A: Automaton>(
    automaton: &A,
    extra: impl Fn(&A::State) -> Vec<A::Action>,
    mut check: impl FnMut(&A::State) -> Result<(), String>,
    limits: ExploreLimits,
) -> ExploreResult<A> {
    let initial = automaton.initial();
    check(&initial).map_err(|e| (Vec::new(), e))?;
    // gcs-lint: allow(determinism, reason = "visited-set for BFS dedup: insert/contains only, never iterated, so iteration-order randomization is unobservable")
    let mut seen: HashSet<String> = HashSet::new();
    seen.insert(format!("{initial:?}"));
    let mut queue: VecDeque<(A::State, usize, Vec<A::Action>)> = VecDeque::new();
    queue.push_back((initial, 0, Vec::new()));
    let mut stats = ExploreStats { states: 1, transitions: 0, depth_reached: 0, truncated: false };
    while let Some((state, depth, path)) = queue.pop_front() {
        stats.depth_reached = stats.depth_reached.max(depth);
        if depth >= limits.max_depth {
            continue;
        }
        let mut actions = automaton.enabled(&state);
        actions.extend(extra(&state).into_iter().filter(|a| automaton.is_enabled(&state, a)));
        for action in actions {
            stats.transitions += 1;
            let next = automaton.step(&state, &action);
            let key = format!("{next:?}");
            if !seen.insert(key) {
                continue;
            }
            let mut next_path = path.clone();
            next_path.push(action);
            if let Err(e) = check(&next) {
                return Err((next_path, e));
            }
            stats.states += 1;
            if stats.states >= limits.max_states {
                stats.truncated = true;
                return Ok(stats);
            }
            queue.push_back((next, depth + 1, next_path));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::ActionKind;

    /// A counter mod k with an increment action.
    struct ModK(u32);

    impl Automaton for ModK {
        type State = u32;
        type Action = ();
        fn initial(&self) -> u32 {
            0
        }
        fn enabled(&self, _: &u32) -> Vec<()> {
            vec![()]
        }
        fn is_enabled(&self, _: &u32, _: &()) -> bool {
            true
        }
        fn apply(&self, s: &mut u32, _: &()) {
            *s = (*s + 1) % self.0;
        }
        fn kind(&self, _: &()) -> ActionKind {
            ActionKind::Internal
        }
    }

    #[test]
    fn explores_exactly_the_reachable_states() {
        let stats = explore(&ModK(5), |_| Vec::new(), |_| Ok(()), ExploreLimits::default())
            .expect("no violation");
        assert_eq!(stats.states, 5);
        assert!(!stats.truncated);
    }

    #[test]
    fn violation_returns_shortest_witness_path() {
        let err = explore(
            &ModK(10),
            |_| Vec::new(),
            |s| if *s == 3 { Err("hit 3".into()) } else { Ok(()) },
            ExploreLimits::default(),
        )
        .unwrap_err();
        assert_eq!(err.0.len(), 3, "BFS must find the 3-step witness");
        assert_eq!(err.1, "hit 3");
    }

    #[test]
    fn depth_bound_truncates_search() {
        let stats = explore(
            &ModK(100),
            |_| Vec::new(),
            |_| Ok(()),
            ExploreLimits { max_depth: 4, max_states: 1_000_000 },
        )
        .unwrap();
        assert_eq!(stats.states, 5); // 0..=4
        assert_eq!(stats.depth_reached, 4);
    }

    #[test]
    fn state_cap_reports_truncation() {
        let stats = explore(
            &ModK(1_000),
            |_| Vec::new(),
            |_| Ok(()),
            ExploreLimits { max_depth: usize::MAX, max_states: 10 },
        )
        .unwrap();
        assert!(stats.truncated);
        assert_eq!(stats.states, 10);
    }
}
