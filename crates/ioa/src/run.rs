//! The seeded scheduler: runs an automaton under an environment, recording
//! the execution and checking invariants after every step.

use crate::automaton::{Automaton, Environment};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// A recorded execution: the action sequence performed from the start
/// state, together with the final state.
#[derive(Clone)]
pub struct Execution<A: Automaton> {
    actions: Vec<A::Action>,
    final_state: A::State,
}

impl<A: Automaton> fmt::Debug for Execution<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Execution")
            .field("actions", &self.actions)
            .field("final_state", &self.final_state)
            .finish()
    }
}

impl<A: Automaton> Execution<A> {
    /// The full action sequence (inputs, outputs and internals).
    pub fn actions(&self) -> &[A::Action] {
        &self.actions
    }

    /// The state reached at the end of the execution.
    pub fn final_state(&self) -> &A::State {
        &self.final_state
    }

    /// The trace: the subsequence of external actions.
    pub fn trace(&self, automaton: &A) -> Vec<A::Action> {
        self.actions.iter().filter(|a| automaton.kind(a).is_external()).cloned().collect()
    }
}

/// A reported invariant violation: which named invariant failed, at which
/// step, with the checker's explanation and the action that broke it.
pub struct InvariantViolation<A: Automaton> {
    /// The name passed to [`Runner::add_invariant`].
    pub invariant: &'static str,
    /// Zero-based index of the step after which the violation was observed
    /// (`None` means the start state itself was in violation).
    pub step: Option<usize>,
    /// The action performed in that step.
    pub action: Option<A::Action>,
    /// The checker's explanation.
    pub message: String,
}

impl<A: Automaton> fmt::Debug for InvariantViolation<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant {:?} violated after step {:?} (action {:?}): {}",
            self.invariant, self.step, self.action, self.message
        )
    }
}

impl<A: Automaton> fmt::Display for InvariantViolation<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

type InvariantFn<S> = Box<dyn FnMut(&S) -> Result<(), String>>;
type WeightFn<A> = Box<dyn Fn(&A) -> u32>;
type StepObserver<A> =
    Box<dyn FnMut(&<A as Automaton>::State, &<A as Automaton>::Action, &<A as Automaton>::State)>;

/// A seeded random scheduler for an automaton under an environment.
///
/// At each step the runner pools the automaton's enabled locally controlled
/// actions with the environment's (filtered) proposals, picks one uniformly
/// at random using a deterministic ChaCha8 RNG, applies it, notifies step
/// observers, and evaluates every installed invariant. Execution stops when
/// the step budget is exhausted or no action is available.
pub struct Runner<A: Automaton, E> {
    automaton: A,
    environment: E,
    rng: ChaCha8Rng,
    state: A::State,
    actions: Vec<A::Action>,
    invariants: Vec<(&'static str, InvariantFn<A::State>)>,
    observers: Vec<StepObserver<A>>,
    weight: Option<WeightFn<A::Action>>,
}

impl<A: Automaton, E: Environment<A>> Runner<A, E> {
    /// Creates a runner with a reproducible seed.
    pub fn new(automaton: A, environment: E, seed: u64) -> Self {
        let state = automaton.initial();
        Runner {
            automaton,
            environment,
            rng: ChaCha8Rng::seed_from_u64(seed),
            state,
            actions: Vec::new(),
            invariants: Vec::new(),
            observers: Vec::new(),
            weight: None,
        }
    }

    /// Installs a weight function biasing the scheduler's choice among
    /// enabled candidates: an action with weight `w` is picked with
    /// probability proportional to `w` (weight 0 disables an action
    /// entirely unless everything has weight 0, in which case the choice
    /// falls back to uniform). Weighted scheduling steers long runs —
    /// e.g. toward deliveries over view changes — without changing which
    /// behaviours are *possible*.
    pub fn set_weights(&mut self, weight: impl Fn(&A::Action) -> u32 + 'static) -> &mut Self {
        self.weight = Some(Box::new(weight));
        self
    }

    /// Installs a named invariant checked after every step (and on the
    /// start state when the run begins).
    pub fn add_invariant(
        &mut self,
        name: &'static str,
        check: impl FnMut(&A::State) -> Result<(), String> + 'static,
    ) -> &mut Self {
        self.invariants.push((name, Box::new(check)));
        self
    }

    /// Installs a step observer called with (pre-state, action, post-state)
    /// for every step; used e.g. by the forward-simulation checker.
    pub fn add_observer(
        &mut self,
        observer: impl FnMut(&A::State, &A::Action, &A::State) + 'static,
    ) -> &mut Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// The current state.
    pub fn state(&self) -> &A::State {
        &self.state
    }

    /// The automaton being run.
    pub fn automaton(&self) -> &A {
        &self.automaton
    }

    /// Performs up to `steps` scheduler steps and returns the recorded
    /// execution. A step on which neither the automaton nor the
    /// environment offers an action is *idle*: it consumes budget but
    /// performs nothing (the environment may offer something on a later
    /// step, e.g. a probabilistic adversary).
    ///
    /// # Errors
    ///
    /// Returns the first [`InvariantViolation`] encountered; the run stops
    /// at that point.
    pub fn run(&mut self, steps: usize) -> Result<Execution<A>, InvariantViolation<A>> {
        self.check_invariants(None, None)?;
        for _ in 0..steps {
            self.step_once()?;
        }
        Ok(Execution { actions: self.actions.clone(), final_state: self.state.clone() })
    }

    /// Performs one scheduler step. Returns `Ok(false)` when no action is
    /// available.
    pub fn step_once(&mut self) -> Result<bool, InvariantViolation<A>> {
        let mut candidates = self.automaton.enabled(&self.state);
        let proposed = self.environment.propose(&self.state, self.actions.len(), &mut self.rng);
        candidates
            .extend(proposed.into_iter().filter(|a| self.automaton.is_enabled(&self.state, a)));
        if candidates.is_empty() {
            return Ok(false);
        }
        let idx = match &self.weight {
            None => self.rng.gen_range(0..candidates.len()),
            Some(weight) => {
                let weights: Vec<u32> = candidates.iter().map(weight).collect();
                let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
                if total == 0 {
                    self.rng.gen_range(0..candidates.len())
                } else {
                    let mut pick = self.rng.gen_range(0..total);
                    weights
                        .iter()
                        .position(|&w| {
                            if pick < u64::from(w) {
                                true
                            } else {
                                pick -= u64::from(w);
                                false
                            }
                        })
                        .expect("pick < total")
                }
            }
        };
        let action = candidates.swap_remove(idx);
        self.perform(action)?;
        Ok(true)
    }

    /// Performs a specific action (it must be enabled), recording it and
    /// checking invariants.
    ///
    /// # Panics
    ///
    /// Panics if the action is not enabled.
    pub fn perform(&mut self, action: A::Action) -> Result<(), InvariantViolation<A>> {
        assert!(
            self.automaton.is_enabled(&self.state, &action),
            "perform: action {action:?} not enabled",
        );
        // The pre-state is only materialized for observers; invariant-only
        // runs skip the per-step state clone entirely.
        if self.observers.is_empty() {
            self.automaton.apply(&mut self.state, &action);
        } else {
            let pre = self.state.clone();
            self.automaton.apply(&mut self.state, &action);
            for obs in &mut self.observers {
                obs(&pre, &action, &self.state);
            }
        }
        self.actions.push(action);
        let step = self.actions.len() - 1;
        self.check_invariants(Some(step), self.actions.last().cloned())
    }

    fn check_invariants(
        &mut self,
        step: Option<usize>,
        action: Option<A::Action>,
    ) -> Result<(), InvariantViolation<A>> {
        for (name, check) in &mut self.invariants {
            if let Err(message) = check(&self.state) {
                return Err(InvariantViolation {
                    invariant: name,
                    step,
                    action: action.clone(),
                    message,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{ActionKind, FnEnvironment, NullEnvironment};

    /// A counter that can increment (internal) or emit its value (output).
    struct Counter;

    #[derive(Clone, Debug, PartialEq)]
    enum Act {
        Inc,
        Emit(u32),
        Set(u32), // input
    }

    impl Automaton for Counter {
        type State = u32;
        type Action = Act;
        fn initial(&self) -> u32 {
            0
        }
        fn enabled(&self, s: &u32) -> Vec<Act> {
            vec![Act::Inc, Act::Emit(*s)]
        }
        fn is_enabled(&self, s: &u32, a: &Act) -> bool {
            match a {
                Act::Inc => true,
                Act::Emit(x) => x == s,
                Act::Set(_) => true,
            }
        }
        fn apply(&self, s: &mut u32, a: &Act) {
            match a {
                Act::Inc => *s += 1,
                Act::Emit(_) => {}
                Act::Set(x) => *s = *x,
            }
        }
        fn kind(&self, a: &Act) -> ActionKind {
            match a {
                Act::Inc => ActionKind::Internal,
                Act::Emit(_) => ActionKind::Output,
                Act::Set(_) => ActionKind::Input,
            }
        }
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let run =
            |seed| Runner::new(Counter, NullEnvironment, seed).run(50).unwrap().actions().to_vec();
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8)); // overwhelmingly likely
    }

    #[test]
    fn trace_contains_only_external_actions() {
        let mut runner = Runner::new(Counter, NullEnvironment, 1);
        let exec = runner.run(30).unwrap();
        let trace = exec.trace(runner.automaton());
        assert!(trace.iter().all(|a| matches!(a, Act::Emit(_) | Act::Set(_))));
        assert!(trace.len() < exec.actions().len()); // some Incs happened
    }

    #[test]
    fn environment_inputs_are_applied() {
        let env = FnEnvironment(
            |_: &u32, step: usize, _: &mut dyn rand::RngCore| {
                if step == 0 {
                    vec![Act::Set(100)]
                } else {
                    vec![]
                }
            },
        );
        let mut runner = Runner::new(Counter, env, 3);
        let exec = runner.run(40).unwrap();
        // Eventually Set(100) is either picked at step 0 or never proposed again.
        let picked = exec.actions().iter().any(|a| matches!(a, Act::Set(100)));
        if picked {
            assert!(*exec.final_state() >= 100);
        }
    }

    #[test]
    fn invariant_violation_reports_step_and_action() {
        let mut runner = Runner::new(Counter, NullEnvironment, 1);
        runner.add_invariant("below five", |s: &u32| {
            if *s < 5 {
                Ok(())
            } else {
                Err(format!("counter reached {s}"))
            }
        });
        let err = runner.run(1000).unwrap_err();
        assert_eq!(err.invariant, "below five");
        assert_eq!(err.action, Some(Act::Inc));
        assert!(err.message.contains("5"));
    }

    #[test]
    fn observers_see_pre_and_post() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let log: Rc<RefCell<Vec<(u32, u32)>>> = Rc::new(RefCell::new(vec![]));
        let log2 = log.clone();
        let mut runner = Runner::new(Counter, NullEnvironment, 1);
        runner.add_observer(move |pre, _a, post| log2.borrow_mut().push((*pre, *post)));
        runner.run(10).unwrap();
        for (pre, post) in log.borrow().iter() {
            assert!(*post == *pre || *post == *pre + 1);
        }
        assert_eq!(log.borrow().len(), 10);
    }

    #[test]
    fn perform_records_specific_action() {
        let mut runner = Runner::new(Counter, NullEnvironment, 1);
        runner.perform(Act::Inc).unwrap();
        runner.perform(Act::Emit(1)).unwrap();
        assert_eq!(runner.state(), &1);
    }

    #[test]
    fn weighted_scheduling_biases_choices() {
        // Weight Emit at 0: only Inc should ever be chosen.
        let mut runner = Runner::new(Counter, NullEnvironment, 4);
        runner.set_weights(|a: &Act| match a {
            Act::Inc => 10,
            _ => 0,
        });
        let exec = runner.run(50).unwrap();
        assert!(exec.actions().iter().all(|a| matches!(a, Act::Inc)));
        assert_eq!(*exec.final_state(), 50);
    }

    #[test]
    fn all_zero_weights_fall_back_to_uniform() {
        let mut runner = Runner::new(Counter, NullEnvironment, 4);
        runner.set_weights(|_: &Act| 0);
        let exec = runner.run(50).unwrap();
        assert_eq!(exec.actions().len(), 50);
    }

    #[test]
    #[should_panic(expected = "not enabled")]
    fn perform_rejects_disabled_action() {
        let mut runner = Runner::new(Counter, NullEnvironment, 1);
        runner.perform(Act::Emit(9)).unwrap();
    }
}
