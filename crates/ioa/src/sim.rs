//! Step-by-step forward-simulation checking (Section 6.2 of the paper;
//! Lynch–Vaandrager forward simulations).
//!
//! A forward simulation from a concrete automaton *C* to a specification
//! automaton *S* is given here in its functional form: an abstraction
//! function `f : states(C) → states(S)` together with a *step
//! correspondence* mapping each concrete step to the sequence of abstract
//! actions that simulate it. The checker verifies, for each concrete step
//! `(s, a, s')`:
//!
//! 1. every abstract action in the correspondence is enabled where it is
//!    performed, starting from `f(s)`;
//! 2. executing the sequence ends exactly in `f(s')`;
//! 3. the external projection of the abstract sequence equals the external
//!    projection of `a` (trace preservation).
//!
//! Checking every step of an execution whose first state is initial (plus
//! the base-case check [`ForwardSimulation::check_initial`]) establishes
//! that the recorded trace of *C* is a trace of *S* — the executable
//! counterpart of Theorem 6.26.

use crate::automaton::Automaton;
use std::fmt;

/// Why a simulation step check failed.
#[derive(Clone, Debug)]
pub enum SimulationError<CA: fmt::Debug, SA: fmt::Debug> {
    /// The abstract image of the concrete start state is not the abstract
    /// start state.
    InitialMismatch {
        /// Rendering of the two differing abstract states.
        explanation: String,
    },
    /// An abstract action in the correspondence sequence was not enabled.
    AbstractActionDisabled {
        /// The concrete action whose step was being simulated.
        concrete: CA,
        /// The disabled abstract action.
        abstract_action: SA,
        /// Position within the correspondence sequence.
        position: usize,
    },
    /// After executing the abstract sequence, the abstract state differs
    /// from the image of the concrete post-state.
    PostStateMismatch {
        /// The concrete action whose step was being simulated.
        concrete: CA,
        /// Rendering of the two differing abstract states.
        explanation: String,
    },
    /// The external projections of the concrete step and the abstract
    /// sequence differ.
    TraceMismatch {
        /// The concrete action whose step was being simulated.
        concrete: CA,
        /// External projection of the concrete action, if any.
        concrete_external: Option<SA>,
        /// External abstract actions produced by the correspondence.
        abstract_externals: Vec<SA>,
    },
}

impl<CA: fmt::Debug, SA: fmt::Debug> fmt::Display for SimulationError<CA, SA> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulationError::InitialMismatch { explanation } => {
                write!(f, "abstract image of the initial state is not initial: {explanation}")
            }
            SimulationError::AbstractActionDisabled { concrete, abstract_action, position } => {
                write!(
                    f,
                    "simulating {concrete:?}: abstract action {abstract_action:?} \
                     (position {position}) is not enabled"
                )
            }
            SimulationError::PostStateMismatch { concrete, explanation } => {
                write!(f, "simulating {concrete:?}: post-state mismatch: {explanation}")
            }
            SimulationError::TraceMismatch { concrete, concrete_external, abstract_externals } => {
                write!(
                    f,
                    "simulating {concrete:?}: external projection {concrete_external:?} \
                     vs abstract externals {abstract_externals:?}"
                )
            }
        }
    }
}

impl<CA: fmt::Debug, SA: fmt::Debug> std::error::Error for SimulationError<CA, SA> {}

/// A forward simulation from a concrete automaton to a specification.
///
/// `abstraction` is the function *f* of Section 6.2; `correspondence` maps
/// a concrete step (pre-state and action) to the abstract action sequence
/// simulating it (often empty, for steps that the abstraction absorbs);
/// `project` maps a concrete action to its abstract external counterpart,
/// or `None` when the concrete action is internal (or hidden, like the
/// `gp*` actions in the composed `VStoTO-system`).
pub struct ForwardSimulation<C: Automaton, S: Automaton, F, G, P> {
    spec: S,
    abstraction: F,
    correspondence: G,
    project: P,
    _concrete: std::marker::PhantomData<fn(&C)>,
}

impl<C, S, F, G, P> ForwardSimulation<C, S, F, G, P>
where
    C: Automaton,
    S: Automaton,
    S::State: PartialEq,
    F: Fn(&C::State) -> S::State,
    G: Fn(&C::State, &C::Action) -> Vec<S::Action>,
    P: Fn(&C::Action) -> Option<S::Action>,
{
    /// Creates a checker.
    pub fn new(spec: S, abstraction: F, correspondence: G, project: P) -> Self {
        ForwardSimulation {
            spec,
            abstraction,
            correspondence,
            project,
            _concrete: std::marker::PhantomData,
        }
    }

    /// The specification automaton.
    pub fn spec(&self) -> &S {
        &self.spec
    }

    /// Base case: the abstract image of the concrete start state must be
    /// the abstract start state.
    pub fn check_initial(
        &self,
        concrete_initial: &C::State,
    ) -> Result<(), SimulationError<C::Action, S::Action>> {
        let image = (self.abstraction)(concrete_initial);
        let start = self.spec.initial();
        if image == start {
            Ok(())
        } else {
            Err(SimulationError::InitialMismatch {
                explanation: format!("f(initial) = {image:?}, spec initial = {start:?}"),
            })
        }
    }

    /// Inductive step: checks one concrete step `(pre, action, post)`.
    pub fn check_step(
        &self,
        pre: &C::State,
        action: &C::Action,
        post: &C::State,
    ) -> Result<(), SimulationError<C::Action, S::Action>> {
        let mut abs = (self.abstraction)(pre);
        let seq = (self.correspondence)(pre, action);
        let mut externals = Vec::new();
        for (position, sa) in seq.iter().enumerate() {
            if !self.spec.is_enabled(&abs, sa) {
                return Err(SimulationError::AbstractActionDisabled {
                    concrete: action.clone(),
                    abstract_action: sa.clone(),
                    position,
                });
            }
            if self.spec.kind(sa).is_external() {
                externals.push(sa.clone());
            }
            self.spec.apply(&mut abs, sa);
        }
        let expected = (self.abstraction)(post);
        if abs != expected {
            return Err(SimulationError::PostStateMismatch {
                concrete: action.clone(),
                explanation: format!("reached {abs:?}, expected {expected:?}"),
            });
        }
        let concrete_external = (self.project)(action);
        let trace_ok = match (&concrete_external, externals.as_slice()) {
            (None, []) => true,
            (Some(ce), [ae]) => ce == ae,
            _ => false,
        };
        if !trace_ok {
            return Err(SimulationError::TraceMismatch {
                concrete: action.clone(),
                concrete_external,
                abstract_externals: externals,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::ActionKind;

    /// Concrete: counts by twos using two internal half-steps, then emits.
    /// Abstract: counts by ones, then emits.
    struct ByHalves;
    struct ByOnes;

    #[derive(Clone, Debug, PartialEq)]
    enum CAct {
        Half,
        Emit(u32),
    }
    #[derive(Clone, Debug, PartialEq)]
    enum SAct {
        One,
        Emit(u32),
    }

    impl Automaton for ByHalves {
        type State = (u32, bool); // (value, half-pending)
        type Action = CAct;
        fn initial(&self) -> (u32, bool) {
            (0, false)
        }
        fn enabled(&self, s: &(u32, bool)) -> Vec<CAct> {
            vec![CAct::Half, CAct::Emit(s.0)]
        }
        fn is_enabled(&self, s: &(u32, bool), a: &CAct) -> bool {
            match a {
                CAct::Half => true,
                CAct::Emit(x) => *x == s.0,
            }
        }
        fn apply(&self, s: &mut (u32, bool), a: &CAct) {
            match a {
                CAct::Half => {
                    if s.1 {
                        s.0 += 1;
                        s.1 = false;
                    } else {
                        s.1 = true;
                    }
                }
                CAct::Emit(_) => {}
            }
        }
        fn kind(&self, a: &CAct) -> ActionKind {
            match a {
                CAct::Half => ActionKind::Internal,
                CAct::Emit(_) => ActionKind::Output,
            }
        }
    }

    impl Automaton for ByOnes {
        type State = u32;
        type Action = SAct;
        fn initial(&self) -> u32 {
            0
        }
        fn enabled(&self, s: &u32) -> Vec<SAct> {
            vec![SAct::One, SAct::Emit(*s)]
        }
        fn is_enabled(&self, s: &u32, a: &SAct) -> bool {
            match a {
                SAct::One => true,
                SAct::Emit(x) => x == s,
            }
        }
        fn apply(&self, s: &mut u32, a: &SAct) {
            if matches!(a, SAct::One) {
                *s += 1;
            }
        }
        fn kind(&self, a: &SAct) -> ActionKind {
            match a {
                SAct::One => ActionKind::Internal,
                SAct::Emit(_) => ActionKind::Output,
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn checker() -> ForwardSimulation<
        ByHalves,
        ByOnes,
        impl Fn(&(u32, bool)) -> u32,
        impl Fn(&(u32, bool), &CAct) -> Vec<SAct>,
        impl Fn(&CAct) -> Option<SAct>,
    > {
        ForwardSimulation::<ByHalves, _, _, _, _>::new(
            ByOnes,
            |s: &(u32, bool)| s.0,
            |s: &(u32, bool), a: &CAct| match a {
                // The second half-step corresponds to one abstract increment.
                CAct::Half if s.1 => vec![SAct::One],
                CAct::Half => vec![],
                CAct::Emit(x) => vec![SAct::Emit(*x)],
            },
            |a: &CAct| match a {
                CAct::Half => None,
                CAct::Emit(x) => Some(SAct::Emit(*x)),
            },
        )
    }

    #[test]
    fn valid_simulation_passes_along_executions() {
        let c = ByHalves;
        let sim = checker();
        sim.check_initial(&c.initial()).unwrap();
        let mut s = c.initial();
        for i in 0..20 {
            let a = if i % 3 == 0 { CAct::Emit(s.0) } else { CAct::Half };
            let post = c.step(&s, &a);
            sim.check_step(&s, &a, &post).unwrap();
            s = post;
        }
    }

    #[test]
    fn broken_correspondence_is_detected() {
        let sim = ForwardSimulation::<ByHalves, _, _, _, _>::new(
            ByOnes,
            |s: &(u32, bool)| s.0,
            // Wrong: claims every half-step is an abstract increment.
            |_: &(u32, bool), a: &CAct| match a {
                CAct::Half => vec![SAct::One],
                CAct::Emit(x) => vec![SAct::Emit(*x)],
            },
            |a: &CAct| match a {
                CAct::Half => None,
                CAct::Emit(x) => Some(SAct::Emit(*x)),
            },
        );
        let c = ByHalves;
        let s = c.initial();
        let post = c.step(&s, &CAct::Half); // first half: value unchanged
        let err = sim.check_step(&s, &CAct::Half, &post).unwrap_err();
        assert!(matches!(err, SimulationError::PostStateMismatch { .. }));
    }

    #[test]
    fn trace_mismatch_is_detected() {
        let sim = ForwardSimulation::<ByHalves, _, _, _, _>::new(
            ByOnes,
            |s: &(u32, bool)| s.0,
            // Wrong: drops the external emit.
            |_: &(u32, bool), _: &CAct| vec![],
            |a: &CAct| match a {
                CAct::Half => None,
                CAct::Emit(x) => Some(SAct::Emit(*x)),
            },
        );
        let c = ByHalves;
        let s = c.initial();
        let post = c.step(&s, &CAct::Emit(0));
        let err = sim.check_step(&s, &CAct::Emit(0), &post).unwrap_err();
        assert!(matches!(err, SimulationError::TraceMismatch { .. }));
    }

    #[test]
    fn initial_mismatch_is_detected() {
        let sim = ForwardSimulation::<ByHalves, _, _, _, _>::new(
            ByOnes,
            |s: &(u32, bool)| s.0 + 1, // wrong abstraction
            |_: &(u32, bool), _: &CAct| vec![],
            |_: &CAct| None,
        );
        assert!(matches!(
            sim.check_initial(&ByHalves.initial()),
            Err(SimulationError::InitialMismatch { .. })
        ));
    }

    #[test]
    fn disabled_abstract_action_is_detected() {
        let sim = ForwardSimulation::<ByHalves, _, _, _, _>::new(
            ByOnes,
            |s: &(u32, bool)| s.0,
            // Wrong: emits a stale value abstractly.
            |_: &(u32, bool), a: &CAct| match a {
                CAct::Half => vec![],
                CAct::Emit(_) => vec![SAct::Emit(999)],
            },
            |a: &CAct| match a {
                CAct::Half => None,
                CAct::Emit(x) => Some(SAct::Emit(*x)),
            },
        );
        let c = ByHalves;
        let s = c.initial();
        let post = c.step(&s, &CAct::Emit(0));
        let err = sim.check_step(&s, &CAct::Emit(0), &post).unwrap_err();
        assert!(matches!(err, SimulationError::AbstractActionDisabled { .. }));
    }
}
