//! An I/O automaton framework in the style of Lynch–Tuttle (Section 2 of
//! the paper), specialized for executing and checking the specifications
//! and algorithms of this repository.
//!
//! The paper's formal devices map onto this crate as follows:
//!
//! - an *I/O automaton* (states, start states, signature, transitions) is a
//!   type implementing [`Automaton`]; nondeterminism is explicit — the
//!   automaton enumerates its enabled locally controlled actions and a
//!   scheduler (the [`Runner`]) resolves the choice with a seeded RNG;
//! - *input actions* arrive from an [`Environment`], which can also propose
//!   internal actions whose parameter space is unbounded (for example
//!   `createview(v)` in `VS-machine`, where the adversary picks `v`);
//! - an *execution* is recorded by the [`Runner`] as the sequence of actions
//!   it performed; a *trace* is its restriction to external actions
//!   ([`Execution::trace`]);
//! - *invariant assertions* are per-state predicates installed on the
//!   runner and evaluated after every step ([`Runner::add_invariant`]);
//! - a *forward simulation* (Section 6.2) is checked step by step with
//!   [`sim::ForwardSimulation`]: each concrete step must correspond to a
//!   sequence of abstract actions with the same external projection;
//! - *timed executions* (Section 7) are sequences of time-stamped actions;
//!   [`timed::TimedTrace`] provides the windows-and-stabilization analysis
//!   that the conditional performance properties need.
//!
//! # Example
//!
//! A two-state toggle automaton, run for a few steps under a seeded
//! scheduler while checking an invariant:
//!
//! ```
//! use gcs_ioa::{ActionKind, Automaton, NullEnvironment, Runner};
//!
//! struct Toggle;
//! impl Automaton for Toggle {
//!     type State = bool;
//!     type Action = bool; // the value we toggle to
//!     fn initial(&self) -> bool { false }
//!     fn enabled(&self, s: &bool) -> Vec<bool> { vec![!s] }
//!     fn is_enabled(&self, s: &bool, a: &bool) -> bool { a != s }
//!     fn apply(&self, s: &mut bool, a: &bool) { *s = *a; }
//!     fn kind(&self, _: &bool) -> ActionKind { ActionKind::Output }
//! }
//!
//! let mut runner = Runner::new(Toggle, NullEnvironment, 42);
//! runner.add_invariant("alternates", |s: &bool| { let _ = s; Ok(()) });
//! let exec = runner.run(10).expect("no invariant violation");
//! assert_eq!(exec.actions().len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automaton;
pub mod explore;
pub mod run;
pub mod sim;
pub mod timed;

pub use automaton::{ActionKind, Automaton, Environment, NullEnvironment};
pub use explore::{explore, ExploreLimits, ExploreStats};
pub use run::{Execution, InvariantViolation, Runner};
pub use sim::{ForwardSimulation, SimulationError};
pub use timed::{TimedEvent, TimedTrace};
