//! The [`Automaton`] trait and environments.

use rand::RngCore;
use std::fmt;

/// The signature classification of an action.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ActionKind {
    /// An input action: always enabled, controlled by the environment.
    Input,
    /// An output action: locally controlled, externally visible.
    Output,
    /// An internal action: locally controlled, hidden from traces.
    Internal,
}

impl ActionKind {
    /// Whether actions of this kind appear in traces.
    pub fn is_external(self) -> bool {
        matches!(self, ActionKind::Input | ActionKind::Output)
    }

    /// Whether actions of this kind are chosen by the automaton itself.
    pub fn is_locally_controlled(self) -> bool {
        matches!(self, ActionKind::Output | ActionKind::Internal)
    }
}

/// An I/O automaton: a state set with a distinguished start state, an
/// action signature, and a transition relation given in
/// precondition/effect style.
///
/// The paper's model allows a *set* of start states and multiple automata
/// composed over shared actions; here each specification or composed system
/// is written as one `Automaton` value (composition is performed by the
/// composed type's own `apply`, as the paper's `VStoTO-system` does), and
/// the single start state suffices for every machine in the paper.
pub trait Automaton {
    /// The state type.
    type State: Clone + fmt::Debug;
    /// The action type.
    type Action: Clone + fmt::Debug + PartialEq;

    /// The start state.
    fn initial(&self) -> Self::State;

    /// The locally controlled actions enabled in `s` whose parameter space
    /// is enumerable.
    ///
    /// Locally controlled actions with unbounded parameters (such as
    /// `createview(v)`, where `v` ranges over all higher-id views) are not
    /// enumerated here; an [`Environment`] proposes them instead.
    fn enabled(&self, s: &Self::State) -> Vec<Self::Action>;

    /// Whether `a` is enabled in `s`. Input actions are always enabled
    /// (I/O automata are input-enabled).
    fn is_enabled(&self, s: &Self::State, a: &Self::Action) -> bool;

    /// Applies the effect of `a` to `s`.
    ///
    /// Callers must ensure `is_enabled(s, a)`; implementations may panic
    /// otherwise.
    fn apply(&self, s: &mut Self::State, a: &Self::Action);

    /// The signature classification of `a`.
    fn kind(&self, a: &Self::Action) -> ActionKind;

    /// Runs `a` from `s` and returns the successor state (convenience).
    fn step(&self, s: &Self::State, a: &Self::Action) -> Self::State {
        let mut t = s.clone();
        self.apply(&mut t, a);
        t
    }
}

/// A source of input actions and of adversarially chosen internal actions.
///
/// At each scheduler step the environment may propose candidate actions;
/// the runner pools them with the automaton's own enabled actions and picks
/// one. Proposals that are not enabled in the current state are discarded,
/// so environments may over-approximate freely.
pub trait Environment<A: Automaton + ?Sized> {
    /// Candidate actions for the current step.
    fn propose(&mut self, s: &A::State, step: usize, rng: &mut dyn RngCore) -> Vec<A::Action>;
}

/// The environment that proposes nothing: the automaton runs closed.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullEnvironment;

impl<A: Automaton> Environment<A> for NullEnvironment {
    fn propose(&mut self, _: &A::State, _: usize, _: &mut dyn RngCore) -> Vec<A::Action> {
        Vec::new()
    }
}

/// An environment built from a closure.
pub struct FnEnvironment<F>(pub F);

impl<A, F> Environment<A> for FnEnvironment<F>
where
    A: Automaton,
    F: FnMut(&A::State, usize, &mut dyn RngCore) -> Vec<A::Action>,
{
    fn propose(&mut self, s: &A::State, step: usize, rng: &mut dyn RngCore) -> Vec<A::Action> {
        (self.0)(s, step, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification() {
        assert!(ActionKind::Input.is_external());
        assert!(ActionKind::Output.is_external());
        assert!(!ActionKind::Internal.is_external());
        assert!(!ActionKind::Input.is_locally_controlled());
        assert!(ActionKind::Output.is_locally_controlled());
        assert!(ActionKind::Internal.is_locally_controlled());
    }
}
