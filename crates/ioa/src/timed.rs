//! Timed traces (Section 2 of the paper; Lynch–Vaandrager timed automata).
//!
//! A *timed trace* is a sequence of actions paired with non-decreasing
//! times of occurrence. The conditional performance properties
//! (`TO-property`, `VS-property`) quantify over suffixes of timed traces
//! after a stabilization point; this module provides the bookkeeping those
//! checkers need: ordered insertion, time windows, and searches for the
//! last event satisfying a predicate.

use gcs_model::Time;
use std::fmt;

/// An action paired with its time of occurrence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TimedEvent<A> {
    /// The time of occurrence.
    pub time: Time,
    /// The action.
    pub action: A,
}

impl<A> TimedEvent<A> {
    /// Convenience constructor.
    pub fn new(time: Time, action: A) -> Self {
        TimedEvent { time, action }
    }
}

/// A timed trace: time-stamped actions with non-decreasing times.
///
/// # Example
///
/// ```
/// use gcs_ioa::TimedTrace;
/// let mut t = TimedTrace::new();
/// t.push(1, "a");
/// t.push(3, "b");
/// t.push(3, "c");
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.events_at_or_after(3).count(), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct TimedTrace<A> {
    events: Vec<TimedEvent<A>>,
}

impl<A> Default for TimedTrace<A> {
    fn default() -> Self {
        TimedTrace { events: Vec::new() }
    }
}

impl<A> TimedTrace<A> {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics if `time` is smaller than the time of the last event; timed
    /// traces have non-decreasing times.
    pub fn push(&mut self, time: Time, action: A) {
        if let Some(last) = self.events.last() {
            assert!(
                time >= last.time,
                "timed trace times must be non-decreasing ({time} < {})",
                last.time
            );
        }
        self.events.push(TimedEvent { time, action });
    }

    /// The number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events in order.
    pub fn events(&self) -> &[TimedEvent<A>] {
        &self.events
    }

    /// Iterates over `(time, action)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Time, &A)> {
        self.events.iter().map(|e| (&e.time, &e.action))
    }

    /// The time of the last event, or 0 for an empty trace.
    pub fn last_time(&self) -> Time {
        self.events.last().map(|e| e.time).unwrap_or(0)
    }

    /// Events with `time ≥ t`, in order.
    pub fn events_at_or_after(&self, t: Time) -> impl Iterator<Item = &TimedEvent<A>> {
        self.events.iter().skip_while(move |e| e.time < t)
    }

    /// The time of the last event satisfying `pred`, if any.
    pub fn last_time_where(&self, mut pred: impl FnMut(&A) -> bool) -> Option<Time> {
        self.events.iter().rev().find(|e| pred(&e.action)).map(|e| e.time)
    }

    /// The time of the first event at or after `t` satisfying `pred`.
    pub fn first_time_where_after(
        &self,
        t: Time,
        mut pred: impl FnMut(&A) -> bool,
    ) -> Option<Time> {
        self.events_at_or_after(t).find(|e| pred(&e.action)).map(|e| e.time)
    }

    /// Maps actions, preserving times.
    pub fn map<B>(&self, mut f: impl FnMut(&A) -> B) -> TimedTrace<B> {
        TimedTrace {
            events: self
                .events
                .iter()
                .map(|e| TimedEvent { time: e.time, action: f(&e.action) })
                .collect(),
        }
    }

    /// Keeps only events whose action satisfies `pred`, preserving times.
    pub fn filtered(&self, mut pred: impl FnMut(&A) -> bool) -> TimedTrace<A>
    where
        A: Clone,
    {
        TimedTrace { events: self.events.iter().filter(|e| pred(&e.action)).cloned().collect() }
    }

    /// The untimed action sequence.
    pub fn untimed(&self) -> Vec<A>
    where
        A: Clone,
    {
        self.events.iter().map(|e| e.action.clone()).collect()
    }
}

impl<A: fmt::Debug> fmt::Debug for TimedTrace<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TimedTrace[{} events]", self.events.len())?;
        for e in &self.events {
            writeln!(f, "  t={:<8} {:?}", e.time, e.action)?;
        }
        Ok(())
    }
}

impl<A> FromIterator<(Time, A)> for TimedTrace<A> {
    fn from_iter<I: IntoIterator<Item = (Time, A)>>(iter: I) -> Self {
        let mut t = TimedTrace::new();
        for (time, action) in iter {
            t.push(time, action);
        }
        t
    }
}

impl<A> Extend<(Time, A)> for TimedTrace<A> {
    fn extend<I: IntoIterator<Item = (Time, A)>>(&mut self, iter: I) {
        for (time, action) in iter {
            self.push(time, action);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_time_rejected() {
        let mut t = TimedTrace::new();
        t.push(5, 'a');
        t.push(4, 'b');
    }

    #[test]
    fn equal_times_allowed() {
        let mut t = TimedTrace::new();
        t.push(5, 'a');
        t.push(5, 'b');
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn last_time_where_finds_latest() {
        let t: TimedTrace<char> = [(1, 'a'), (2, 'b'), (3, 'a')].into_iter().collect();
        assert_eq!(t.last_time_where(|a| *a == 'a'), Some(3));
        assert_eq!(t.last_time_where(|a| *a == 'z'), None);
    }

    #[test]
    fn first_time_where_after_respects_bound() {
        let t: TimedTrace<char> = [(1, 'a'), (4, 'a'), (9, 'b')].into_iter().collect();
        assert_eq!(t.first_time_where_after(2, |a| *a == 'a'), Some(4));
        assert_eq!(t.first_time_where_after(5, |a| *a == 'a'), None);
    }

    #[test]
    fn map_and_filter_preserve_times() {
        let t: TimedTrace<u32> = [(1, 10), (2, 11)].into_iter().collect();
        let m = t.map(|x| x * 2);
        assert_eq!(m.events()[1], TimedEvent::new(2, 22));
        let f = t.filtered(|x| x % 2 == 0);
        assert_eq!(f.len(), 1);
        assert_eq!(f.events()[0].time, 1);
    }

    #[test]
    fn untimed_drops_times() {
        let t: TimedTrace<char> = [(1, 'x'), (2, 'y')].into_iter().collect();
        assert_eq!(t.untimed(), vec!['x', 'y']);
    }
}
