//! Schedule determinism: the repro contract. Same model + same
//! schedule string ⇒ the identical execution (digest-for-digest),
//! regardless of worker count; failing schedules replay to the same
//! failure.

use gcs_mc::{
    AtomicU64Api, Checker, DataApi, FailureKind, JoinApi, McShims, MutexApi, Schedule, Shims,
};
use std::sync::atomic::Ordering;
use std::sync::Arc;

type McAtomicU64 = <McShims as Shims>::AtomicU64;
type McMutex<T> = <McShims as Shims>::Mutex<T>;
type McData<T> = <McShims as Shims>::Data<T>;

/// A small but branchy clean model: three threads, RMW chains, a
/// mutex, and weak loads (so schedules have real decisions in them).
fn busy_model() {
    let c = Arc::new(McAtomicU64::new(0));
    let m = Arc::new(McMutex::new(0u64));
    let mut joins = Vec::new();
    for _ in 0..2 {
        let (c2, m2) = (Arc::clone(&c), Arc::clone(&m));
        joins.push(McShims::spawn(move || {
            // ordering: AcqRel — chained increments; the final Acquire
            // load below reads the chain.
            c2.fetch_add(1, Ordering::AcqRel);
            *m2.lock_clean() += 1;
            // ordering: Relaxed — a stale-readable observation point,
            // deliberately weak so the read-from choice branches.
            let _ = c2.load(Ordering::Relaxed);
        }));
    }
    for j in joins {
        j.join();
    }
    // ordering: Acquire — pairs with the AcqRel RMW chain.
    assert_eq!(c.load(Ordering::Acquire), 2);
    assert_eq!(*m.lock_clean(), 2);
}

#[test]
fn exhaustive_exploration_is_repeatable() {
    let a = Checker::new("det-dfs-a").preemption_bound(1).check(busy_model);
    let b = Checker::new("det-dfs-b").preemption_bound(1).check(busy_model);
    a.assert_ok();
    b.assert_ok();
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.digest, b.digest);
}

#[test]
fn same_schedule_same_digest_across_worker_counts() {
    // The sampled fan-out must produce a combined digest that is a
    // pure function of (model, seeds, bound) — not of how many worker
    // threads carved up the seed space.
    let s1 = Checker::new("det-sample-1").sample(busy_model, 64, 3, 1);
    let s4 = Checker::new("det-sample-4").sample(busy_model, 64, 3, 4);
    s1.assert_ok();
    s4.assert_ok();
    assert_eq!(s1.digest, s4.digest, "worker count changed the sampled digest");
    assert_eq!(s1.executions, s4.executions);
}

#[test]
fn failing_schedule_replays_to_the_same_failure() {
    let racy = || {
        let d = Arc::new(McData::<u64>::new(0));
        let d2 = Arc::clone(&d);
        let t = McShims::spawn(move || d2.set(1));
        d.set(2);
        t.join();
    };
    let found = Checker::new("det-replay-src").preemption_bound(1).check(racy);
    let f = found.expect_failure();
    let hex = f.schedule.to_hex();
    // Round-trip through the artifact text form, as a user would.
    let schedule = Schedule::from_hex(&hex).expect("hex round-trip");
    for i in 0..3 {
        let r = Checker::new("det-replay").replay(racy, &schedule);
        let rf = r.expect_failure();
        assert!(
            matches!(rf.kind, FailureKind::Race { .. }),
            "replay {i}: expected Race, got {}",
            rf.kind
        );
        assert_eq!(rf.digest, f.digest, "replay {i} diverged");
        let FailureKind::Race { first, second } = &rf.kind else { unreachable!() };
        let FailureKind::Race { first: f1, second: f2 } = &f.kind else {
            panic!("original failure was {}", f.kind)
        };
        assert_eq!((first.file, first.line), (f1.file, f1.line));
        assert_eq!((second.file, second.line), (f2.file, f2.line));
    }
}

#[test]
fn sampled_failures_pick_the_lowest_seed_deterministically() {
    let racy = || {
        let d = Arc::new(McData::<u64>::new(0));
        let d2 = Arc::clone(&d);
        let t = McShims::spawn(move || d2.set(1));
        d.set(2);
        t.join();
    };
    let a = Checker::new("det-sample-fail-1").sample(racy, 16, 2, 1);
    let b = Checker::new("det-sample-fail-4").sample(racy, 16, 2, 4);
    let fa = a.expect_failure();
    let fb = b.expect_failure();
    assert_eq!(fa.schedule, fb.schedule, "different seed won under different workers");
    assert_eq!(fa.digest, fb.digest);
}

#[test]
fn edited_schedule_reports_divergence_not_garbage() {
    let model = busy_model;
    let found = Checker::new("det-diverge-src").preemption_bound(1).check(model);
    found.assert_ok();
    // A hand-mangled schedule must fail loudly as diverged (or pick a
    // different valid path), never panic the harness.
    let mangled = Schedule(vec![0xee, 0xee, 0xee, 0xee]);
    let r = Checker::new("det-diverge").replay(model, &mangled);
    let f = r.expect_failure();
    assert!(
        matches!(f.kind, FailureKind::ScheduleDiverged),
        "expected ScheduleDiverged, got {}",
        f.kind
    );
}
