//! Engine self-tests: small models with known-good and known-bad
//! concurrency, checking that the checker's verdicts (and reported
//! sites) match.

use gcs_mc::{
    AtomicU64Api, Checker, CondvarApi, DataApi, FailureKind, JoinApi, McShims, MutexApi, Shims,
};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

type McAtomicU64 = <McShims as Shims>::AtomicU64;
type McMutex<T> = <McShims as Shims>::Mutex<T>;
type McData<T> = <McShims as Shims>::Data<T>;
type McCondvar = <McShims as Shims>::Condvar;

#[test]
fn release_acquire_message_passing_is_clean() {
    let report = Checker::new("mp-rel-acq").preemption_bound(2).check(|| {
        let data = Arc::new(McData::<u64>::new(0));
        let flag = Arc::new(McAtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = McShims::spawn(move || {
            d2.set(42);
            // ordering: Release — publishes the Data write to the
            // acquiring reader below.
            f2.store(1, Ordering::Release);
        });
        // ordering: Acquire — pairs with the Release store above; the
        // Data read is only reached when the flag is observed set.
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.get(), 42);
        }
        t.join();
    });
    report.assert_ok();
    // 2 threads, a handful of ops: exploration must stay tiny.
    assert!(report.executions < 200, "explored {}", report.executions);
}

#[test]
fn relaxed_message_passing_races() {
    let report = Checker::new("mp-relaxed").preemption_bound(2).check(|| {
        let data = Arc::new(McData::<u64>::new(0));
        let flag = Arc::new(McAtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = McShims::spawn(move || {
            d2.set(42);
            // ordering: Relaxed — the bug under test: the flag no
            // longer publishes the Data write.
            f2.store(1, Ordering::Relaxed);
        });
        // ordering: Relaxed — reading the flag relaxed on purpose.
        if flag.load(Ordering::Relaxed) == 1 {
            let _ = data.get();
        }
        t.join();
    });
    let f = report.expect_failure();
    match &f.kind {
        FailureKind::Race { first, second } => {
            assert!(first.file.ends_with("models.rs"), "first site: {first}");
            assert!(second.file.ends_with("models.rs"), "second site: {second}");
            assert_ne!((first.file, first.line), (second.file, second.line));
        }
        other => panic!("expected Race, got {other}"),
    }
    assert!(!f.schedule.0.is_empty() || f.schedule.to_hex().is_empty());
}

#[test]
fn vacuous_acquire_is_reported_with_both_sites() {
    let report = Checker::new("vacuous-acquire").preemption_bound(1).check(|| {
        let flag = Arc::new(McAtomicU64::new(0));
        let f2 = Arc::clone(&flag);
        let t = McShims::spawn(move || {
            // ordering: Relaxed — deliberately NOT Release; the
            // acquire load below claims an edge this store never
            // provides.
            f2.store(1, Ordering::Relaxed);
        });
        // ordering: Acquire — the vacuous half of the broken pair.
        let _ = flag.load(Ordering::Acquire);
        t.join();
    });
    let f = report.expect_failure();
    match &f.kind {
        FailureKind::VacuousAcquire { store, load } => {
            assert!(store.file.ends_with("models.rs"), "store site: {store}");
            assert!(load.file.ends_with("models.rs"), "load site: {load}");
        }
        other => panic!("expected VacuousAcquire, got {other}"),
    }
}

#[test]
fn mutex_protected_data_is_clean_and_counts() {
    let report = Checker::new("mutex-count").preemption_bound(1).check(|| {
        let cell = Arc::new(McMutex::new(0u64));
        let mut joins = Vec::new();
        for _ in 0..2 {
            let c = Arc::clone(&cell);
            joins.push(McShims::spawn(move || {
                *c.lock_clean() += 1;
            }));
        }
        for j in joins {
            j.join();
        }
        assert_eq!(*cell.lock_clean(), 2);
    });
    report.assert_ok();
}

#[test]
fn lost_update_is_found_without_preemptions_via_weak_reads() {
    // Two threads each do a non-atomic read-modify-write (load; store).
    // Even with zero preemptions the weak-memory read-from choice lets
    // the second thread read the stale initial value — the lost update
    // is found at bound 0.
    let report = Checker::new("lost-update").preemption_bound(0).check(|| {
        let c = Arc::new(McAtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = McShims::spawn(move || {
            // ordering: Relaxed — the bug under test (should be a
            // single atomic RMW).
            let v = c2.load(Ordering::Relaxed);
            c2.store(v + 1, Ordering::Relaxed);
        });
        // ordering: Relaxed — as above.
        let v = c.load(Ordering::Relaxed);
        c.store(v + 1, Ordering::Relaxed);
        t.join();
        // ordering: Relaxed — final observation; the join edge makes
        // both stores visible.
        assert_eq!(c.load(Ordering::Relaxed), 2);
    });
    let f = report.expect_failure();
    assert!(
        matches!(&f.kind, FailureKind::Panic { .. }),
        "expected assertion Panic, got {}",
        f.kind
    );
}

#[test]
fn rmw_counter_is_exact() {
    let report = Checker::new("rmw-counter").preemption_bound(1).check(|| {
        let c = Arc::new(McAtomicU64::new(0));
        let mut joins = Vec::new();
        for _ in 0..3 {
            let c2 = Arc::clone(&c);
            joins.push(McShims::spawn(move || {
                // ordering: AcqRel — RMW atomicity is the point; the
                // release half chains the increments.
                c2.fetch_add(1, Ordering::AcqRel);
            }));
        }
        for j in joins {
            j.join();
        }
        // ordering: Acquire — reads the last RMW in the release chain.
        assert_eq!(c.load(Ordering::Acquire), 3);
    });
    report.assert_ok();
}

#[test]
fn ab_ba_deadlock_needs_one_preemption() {
    let model = || {
        let a = Arc::new(McMutex::new(()));
        let b = Arc::new(McMutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = McShims::spawn(move || {
            let _ga = a2.lock_clean();
            let _gb = b2.lock_clean();
        });
        {
            let _gb = b.lock_clean();
            let _ga = a.lock_clean();
        }
        t.join();
    };
    let clean = Checker::new("ab-ba-bound0").preemption_bound(0).check(model);
    clean.assert_ok();
    let report = Checker::new("ab-ba-bound1").preemption_bound(1).check(model);
    let f = report.expect_failure();
    match &f.kind {
        FailureKind::Deadlock { blocked } => {
            assert_eq!(blocked.len(), 2, "both threads blocked: {:?}", f.kind);
            for (_, site) in blocked {
                assert!(site.file.ends_with("models.rs"), "site: {site}");
            }
        }
        other => panic!("expected Deadlock, got {other}"),
    }
    // The failing schedule must replay to the same deadlock.
    let replayed = Checker::new("ab-ba-replay").replay(model, &f.schedule);
    let rf = replayed.expect_failure();
    assert!(matches!(rf.kind, FailureKind::Deadlock { .. }), "{}", rf.kind);
    assert_eq!(rf.digest, f.digest, "replay reaches the same execution");
}

#[test]
fn condvar_timeout_fires_only_when_all_blocked() {
    let report = Checker::new("cv-timeout").preemption_bound(1).check(|| {
        let mx = Arc::new(McMutex::new(false));
        let cv = Arc::new(McCondvar::new());
        let guard = mx.lock_clean();
        // Nobody will ever notify: the timed wait must come back as a
        // timeout (all live threads blocked) instead of deadlocking.
        let (guard, timed_out) = McShims::cv_wait_timeout(&cv, guard, Duration::from_millis(50));
        assert!(timed_out);
        assert!(!*guard);
    });
    report.assert_ok();
}

#[test]
fn condvar_notify_wakes_waiter() {
    let report = Checker::new("cv-notify").preemption_bound(1).check(|| {
        let mx = Arc::new(McMutex::new(false));
        let cv = Arc::new(McCondvar::new());
        let (mx2, cv2) = (Arc::clone(&mx), Arc::clone(&cv));
        let t = McShims::spawn(move || {
            *mx2.lock_clean() = true;
            McShims::cv_notify_all(&cv2);
        });
        let mut guard = mx.lock_clean();
        let mut timed = false;
        while !*guard {
            let (g, to) = McShims::cv_wait_timeout(&cv, guard, Duration::from_millis(50));
            guard = g;
            timed = to;
        }
        drop(guard);
        t.join();
        // Whether the wait timed out depends on the interleaving; the
        // loop exiting with the flag set is the contract.
        let _ = timed;
    });
    report.assert_ok();
}

#[test]
fn artifact_is_written_for_failures() {
    let dir = std::env::temp_dir().join("gcs-mc-artifacts");
    let report = Checker::new("artifact-check").preemption_bound(1).check(|| {
        let d = Arc::new(McData::<u64>::new(0));
        let d2 = Arc::clone(&d);
        let t = McShims::spawn(move || d2.set(1));
        d.set(2);
        t.join();
    });
    let f = report.expect_failure();
    let path = report.artifact.as_ref().expect("artifact written");
    assert!(path.starts_with(&dir) || std::env::var("GCS_MC_ARTIFACT_DIR").is_ok());
    let body = std::fs::read_to_string(path).expect("artifact readable");
    assert!(body.contains("model: artifact-check"), "{body}");
    assert!(body.contains(&format!("schedule: {}", f.schedule)), "{body}");
}

#[test]
fn thread_ordinal_is_model_tid() {
    let report = Checker::new("ordinal").preemption_bound(0).check(|| {
        assert_eq!(McShims::thread_ordinal(), 0);
        let t = McShims::spawn(|| {
            assert_eq!(McShims::thread_ordinal(), 1);
        });
        t.join();
    });
    report.assert_ok();
}
