//! Vector clocks: the happens-before lattice used by the checker.
//!
//! One component per model thread. Every visible operation a thread
//! performs bumps its own component; synchronizing operations (spawn,
//! join, mutex hand-off, release-store → acquire-load) join clocks.
//! `a` happened-before `b` iff `a`'s thread component at the time of
//! `a` is covered by `b`'s thread's clock at the time of `b`.

/// A grow-on-demand vector clock. Missing components read as zero, so
/// clones taken before a thread is spawned stay valid.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    /// The component for thread `t` (zero if never touched).
    pub(crate) fn get(&self, t: usize) -> u32 {
        self.0.get(t).copied().unwrap_or(0)
    }

    /// Increment thread `t`'s own component (a new epoch for `t`).
    pub(crate) fn bump(&mut self, t: usize) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] += 1;
    }

    /// Pointwise maximum: fold `other`'s knowledge into `self`.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// Does this clock cover epoch `epoch` of thread `t`? True means
    /// the event `(t, epoch)` happened-before whoever holds `self`.
    pub(crate) fn covers(&self, t: usize, epoch: u32) -> bool {
        self.get(t) >= epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max_and_covers_tracks_epochs() {
        let mut a = VClock::default();
        a.bump(0);
        a.bump(0); // a = [2]
        let mut b = VClock::default();
        b.bump(2); // b = [0,0,1]
        b.join(&a);
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(2), 1);
        assert!(b.covers(0, 2));
        assert!(!b.covers(0, 3));
        assert!(b.covers(7, 0)); // unknown threads read as epoch 0
    }
}
