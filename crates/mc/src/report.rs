//! Failure reporting: what the checker found and how to reproduce it.

use crate::sched::Schedule;
use std::fmt;
use std::panic::Location;
use std::path::PathBuf;

/// A source location (file:line:column) of one side of a finding.
/// Shim operations are `#[track_caller]`, so this points at the call
/// site inside the ported structure, not inside gcs-mc.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Site {
    /// Source file as recorded by the compiler.
    pub file: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub column: u32,
}

impl Site {
    pub(crate) fn of(loc: &'static Location<'static>) -> Site {
        Site { file: loc.file(), line: loc.line(), column: loc.column() }
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.file, self.line, self.column)
    }
}

/// What went wrong in an execution.
#[derive(Clone, Debug)]
pub enum FailureKind {
    /// Two unsynchronized conflicting plain (`Data`) accesses: no
    /// happens-before path between them and at least one is a write.
    Race {
        /// The earlier access (in this execution's order).
        first: Site,
        /// The later, racing access.
        second: Site,
    },
    /// An `Acquire` (or stronger) load observed a store that carries
    /// no release clock: the declared acquire edge synchronizes with
    /// nothing, so every "this pairs with…" claim about it is wrong.
    /// This is how a `Relaxed`-downgraded publish is reported even
    /// when the checked invariants happen to survive.
    VacuousAcquire {
        /// The store that was read (declared weaker than `Release`).
        store: Site,
        /// The acquire load that read it.
        load: Site,
    },
    /// Every live thread is blocked and none holds a timed wait.
    Deadlock {
        /// `(thread ordinal, blocking site)` for each blocked thread.
        blocked: Vec<(usize, Site)>,
    },
    /// A model thread panicked (assertion failure in the model).
    Panic {
        /// Thread ordinal that panicked.
        thread: usize,
        /// Rendered panic payload.
        message: String,
    },
    /// A replayed schedule did not match the execution (model drift
    /// or a hand-edited schedule string).
    ScheduleDiverged,
    /// The same DFS prefix produced different decision points across
    /// executions: the model itself is nondeterministic (uses time,
    /// randomness, or unshimmed sync).
    Nondeterminism,
    /// An execution exceeded the per-execution step budget — almost
    /// always a model spinning on a condition the scheduler never
    /// flips; restructure the model to block instead of spin.
    StepCap,
    /// Exploration exceeded the execution budget before exhausting
    /// the space; raise the budget or shrink the model.
    ExecutionCap,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Race { first, second } => {
                write!(f, "data race: {first} conflicts with {second} (no happens-before)")
            }
            FailureKind::VacuousAcquire { store, load } => write!(
                f,
                "vacuous acquire: load at {load} declares Acquire but reads a store at \
                 {store} with no Release ordering — the claimed synchronization edge \
                 does not exist"
            ),
            FailureKind::Deadlock { blocked } => {
                write!(f, "deadlock: all live threads blocked:")?;
                for (t, site) in blocked {
                    write!(f, " [t{t} at {site}]")?;
                }
                Ok(())
            }
            FailureKind::Panic { thread, message } => {
                write!(f, "model panic on t{thread}: {message}")
            }
            FailureKind::ScheduleDiverged => {
                write!(f, "schedule replay diverged from the execution")
            }
            FailureKind::Nondeterminism => write!(
                f,
                "model is nondeterministic under a fixed schedule (uses time, \
                 randomness, or unshimmed synchronization)"
            ),
            FailureKind::StepCap => write!(f, "per-execution step budget exceeded"),
            FailureKind::ExecutionCap => write!(f, "execution budget exceeded"),
        }
    }
}

/// A failing execution: the finding plus everything needed to replay
/// it deterministically.
#[derive(Clone, Debug)]
pub struct Failure {
    /// What was found.
    pub kind: FailureKind,
    /// The schedule that reaches it (feed to `Checker::replay`).
    pub schedule: Schedule,
    /// Execution digest at the failure point.
    pub digest: u64,
}

/// The outcome of a `check`, `sample`, or `replay` run.
#[derive(Debug)]
pub struct Report {
    /// Model name (artifact file stem).
    pub name: String,
    /// Executions explored.
    pub executions: u64,
    /// Digest of the last completed execution (replay determinism
    /// tests compare this across runs and worker counts).
    pub digest: u64,
    /// The first failure found, if any.
    pub failure: Option<Failure>,
    /// Where the repro artifact was written, if a failure was found.
    pub artifact: Option<PathBuf>,
}

impl Report {
    /// Panic (with the schedule and both sites) if a failure was found.
    #[track_caller]
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "gcs-mc model '{}' failed after {} execution(s): {}\n  repro schedule: {}\n  \
                 artifact: {}",
                self.name,
                self.executions,
                f.kind,
                f.schedule,
                self.artifact
                    .as_ref()
                    .map(|p| p.display().to_string())
                    .unwrap_or_else(|| "<none>".into()),
            );
        }
    }

    /// The failure, or panic if the model unexpectedly passed.
    #[track_caller]
    pub fn expect_failure(&self) -> &Failure {
        match &self.failure {
            Some(f) => f,
            None => panic!(
                "gcs-mc model '{}' passed ({} executions) but a failure was expected",
                self.name, self.executions
            ),
        }
    }
}
