//! The exploration driver: systematic DFS with iterative preemption
//! bounding, seeded random sampling, and single-schedule replay.

use crate::engine::{self, Engine};
use crate::report::{Failure, FailureKind, Report};
use crate::sched::{Dfs, Schedule, Source};
use std::path::PathBuf;
use std::sync::Arc;

/// Execution-count ceiling: a runaway model fails loudly instead of
/// hanging CI.
const DEFAULT_MAX_EXECUTIONS: u64 = 200_000;
/// Per-execution visible-op ceiling (see [`FailureKind::StepCap`]).
const DEFAULT_MAX_STEPS: u64 = 20_000;

/// A configured model checker for one named model.
///
/// ```no_run
/// use gcs_mc::{Checker, McShims, Shims, AtomicU64Api};
/// use std::sync::Arc;
/// use std::sync::atomic::Ordering;
///
/// let report = Checker::new("counter").check(|| {
///     let c = Arc::new(<McShims as Shims>::AtomicU64::new(0));
///     let c2 = Arc::clone(&c);
///     let t = McShims::spawn(move || {
///         c2.fetch_add(1, Ordering::AcqRel);
///     });
///     c.fetch_add(1, Ordering::AcqRel);
///     use gcs_mc::JoinApi;
///     t.join();
///     assert_eq!(c.load(Ordering::Acquire), 2);
/// });
/// report.assert_ok();
/// ```
#[derive(Debug)]
pub struct Checker {
    name: String,
    bound: usize,
    max_executions: u64,
    max_steps: u64,
}

/// Outcome of a single execution (internal).
struct Exec {
    failure: Option<Failure>,
    digest: u64,
    source: Source,
}

fn run_one(model: &Arc<dyn Fn() + Send + Sync>, source: Source, max_steps: u64) -> Exec {
    let eng = Arc::new(Engine::new(source, max_steps));
    engine::install_root(&eng);
    let m = Arc::clone(model);
    let eng2 = Arc::clone(&eng);
    let root = std::thread::Builder::new()
        .name("mc-0".into())
        .stack_size(256 * 1024)
        .spawn(move || engine::model_thread(eng2, 0, Box::new(move || m())))
        .expect("spawn mc root thread");
    let mut st = eng.wait_done();
    let (failure, digest, source, handles) = st.harvest();
    drop(st);
    for h in handles {
        let _ = h.join();
    }
    let _ = root.join();
    Exec { failure, digest, source }
}

impl Checker {
    /// A checker named `name` (names the repro artifact). The
    /// preemption bound defaults to `GCS_MC_BOUND` (tier-1 CI sets 1;
    /// nightly sets 2) or 1.
    pub fn new(name: &str) -> Checker {
        let bound =
            std::env::var("GCS_MC_BOUND").ok().and_then(|v| v.parse::<usize>().ok()).unwrap_or(1);
        Checker {
            name: name.to_string(),
            bound,
            max_executions: DEFAULT_MAX_EXECUTIONS,
            max_steps: DEFAULT_MAX_STEPS,
        }
    }

    /// Override the preemption bound (`0` = no preemptions, CHESS
    /// round 0).
    pub fn preemption_bound(mut self, bound: usize) -> Checker {
        self.bound = bound;
        self
    }

    /// Override the execution budget.
    pub fn max_executions(mut self, n: u64) -> Checker {
        self.max_executions = n;
        self
    }

    /// Where failure artifacts go: `GCS_MC_ARTIFACT_DIR`, else
    /// `<tmp>/gcs-mc-artifacts`.
    fn artifact_dir() -> PathBuf {
        std::env::var_os("GCS_MC_ARTIFACT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("gcs-mc-artifacts"))
    }

    fn write_artifact(&self, f: &Failure, executions: u64) -> Option<PathBuf> {
        let dir = Self::artifact_dir();
        std::fs::create_dir_all(&dir).ok()?;
        let path = dir.join(format!("{}.repro", self.name));
        let body = format!(
            "model: {}\nkind: {}\nschedule: {}\ndigest: {:016x}\nexecutions: {}\n\
             replay: Checker::new(\"{}\").replay(model, &Schedule::from_hex(\"{}\").unwrap())\n",
            self.name, f.kind, f.schedule, f.digest, executions, self.name, f.schedule,
        );
        std::fs::write(&path, body).ok()?;
        Some(path)
    }

    fn finish(&self, executions: u64, digest: u64, failure: Option<Failure>) -> Report {
        let artifact = failure.as_ref().and_then(|f| self.write_artifact(f, executions));
        Report { name: self.name.clone(), executions, digest, failure, artifact }
    }

    /// Systematically explore `model`: exhaust all schedules with 0
    /// preemptions, then 1, … up to the bound (CHESS-style iterative
    /// preemption bounding — shallow bug first, smallest repro first).
    /// Stops at the first failure; the report carries its replayable
    /// schedule.
    pub fn check<F: Fn() + Send + Sync + 'static>(&self, model: F) -> Report {
        let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
        let mut executions: u64 = 0;
        let mut last_digest = 0u64;
        for b in 0..=self.bound {
            // Each round re-explores the lower-preemption prefix space
            // (CHESS does too); the duplicated work is tiny next to
            // the new frontier and keeps the driver state trivial.
            let mut dfs = Dfs::new(b);
            loop {
                if executions >= self.max_executions {
                    let failure = Failure {
                        kind: FailureKind::ExecutionCap,
                        schedule: Schedule(Vec::new()),
                        digest: last_digest,
                    };
                    return self.finish(executions, last_digest, Some(failure));
                }
                dfs.begin();
                let exec = run_one(&model, Source::Dfs(dfs), self.max_steps);
                executions += 1;
                last_digest = exec.digest;
                if let Some(f) = exec.failure {
                    return self.finish(executions, last_digest, Some(f));
                }
                let Source::Dfs(d) = exec.source else {
                    unreachable!("dfs source round-trips");
                };
                dfs = d;
                if !dfs.backtrack() {
                    break;
                }
            }
        }
        self.finish(executions, last_digest, None)
    }

    /// Replay one schedule (e.g. from a `.repro` artifact). The report
    /// digest identifies the execution; a failing schedule reproduces
    /// the same failure deterministically.
    pub fn replay<F: Fn() + Send + Sync + 'static>(&self, model: F, schedule: &Schedule) -> Report {
        let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
        let exec = run_one(&model, Source::replay(schedule), self.max_steps);
        self.finish(1, exec.digest, exec.failure)
    }

    /// Seeded random schedule sampling for depth beyond the exhaustive
    /// bound: `seeds` executions with preemptions allowed up to
    /// `sample_bound`, fanned out over `workers` OS threads. The
    /// combined digest and the reported failure (lowest failing seed
    /// wins) are independent of `workers` — the determinism tests gate
    /// on exactly that.
    pub fn sample<F: Fn() + Send + Sync + 'static>(
        &self,
        model: F,
        seeds: u64,
        sample_bound: usize,
        workers: usize,
    ) -> Report {
        let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
        let workers = workers.max(1);
        let mut digests: Vec<u64> = vec![0; seeds as usize];
        let mut failures: Vec<(u64, Failure)> = Vec::new();
        std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for w in 0..workers {
                let model = Arc::clone(&model);
                let max_steps = self.max_steps;
                joins.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut seed = w as u64;
                    while seed < seeds {
                        let exec = run_one(&model, Source::random(seed, sample_bound), max_steps);
                        out.push((seed, exec.digest, exec.failure));
                        seed += workers as u64;
                    }
                    out
                }));
            }
            for j in joins {
                for (seed, digest, failure) in j.join().expect("sample worker") {
                    digests[seed as usize] = digest;
                    if let Some(f) = failure {
                        failures.push((seed, f));
                    }
                }
            }
        });
        // Combine in seed order so the digest is worker-count
        // independent.
        let mut combined = 0xcbf2_9ce4_8422_2325u64;
        for d in &digests {
            combined = (combined ^ d).wrapping_mul(0x0000_0100_0000_01b3);
        }
        failures.sort_by_key(|(seed, _)| *seed);
        let failure = failures.into_iter().next().map(|(_, f)| f);
        self.finish(seeds, combined, failure)
    }
}
