//! `McShims`: the model-checking instantiation. Every cell is an id
//! into the engine's location tables; every operation is a visible op
//! with a schedule point and happens-before bookkeeping. All shim
//! entry points are `#[track_caller]` (via the trait declarations), so
//! findings point at the line *inside the ported structure* that
//! performed the access.
//!
//! This module owns all the crate's `unsafe`: the `UnsafeCell` payloads
//! of `McMutex` and `McData`. Both are safe because the engine
//! serializes model threads (exactly one ever runs) and flags any
//! unsynchronized `Data` access as a race before it happens.

use crate::api::{
    AtomicBoolApi, AtomicI64Api, AtomicU64Api, AtomicUsizeApi, CondvarApi, DataApi, JoinApi,
    MutexApi, Shims,
};
use crate::engine::{self, RmwKind};
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// The model-checking shim family; only usable inside
/// [`Checker::check`](crate::Checker::check).
#[derive(Debug)]
pub struct McShims;

/// Engine-backed `AtomicU64`.
#[derive(Debug)]
pub struct McAtomicU64 {
    id: usize,
}

impl AtomicU64Api for McAtomicU64 {
    fn new(v: u64) -> Self {
        McAtomicU64 { id: engine::alloc_atomic(v, Location::caller()) }
    }
    fn load(&self, order: Ordering) -> u64 {
        engine::atomic_load(self.id, order, Location::caller())
    }
    fn store(&self, v: u64, order: Ordering) {
        engine::atomic_store(self.id, v, order, Location::caller())
    }
    fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
        engine::atomic_rmw(self.id, RmwKind::Add, v, order, Location::caller())
    }
    fn fetch_max(&self, v: u64, order: Ordering) -> u64 {
        engine::atomic_rmw(self.id, RmwKind::Max, v, order, Location::caller())
    }
    fn fetch_min(&self, v: u64, order: Ordering) -> u64 {
        engine::atomic_rmw(self.id, RmwKind::Min, v, order, Location::caller())
    }
}

/// Engine-backed `AtomicI64` (values bit-cast through u64).
#[derive(Debug)]
pub struct McAtomicI64 {
    id: usize,
}

impl AtomicI64Api for McAtomicI64 {
    fn new(v: i64) -> Self {
        McAtomicI64 { id: engine::alloc_atomic(v as u64, Location::caller()) }
    }
    fn load(&self, order: Ordering) -> i64 {
        engine::atomic_load(self.id, order, Location::caller()) as i64
    }
    fn store(&self, v: i64, order: Ordering) {
        engine::atomic_store(self.id, v as u64, order, Location::caller())
    }
    fn fetch_add(&self, v: i64, order: Ordering) -> i64 {
        // Two's-complement wrapping add in u64 space equals i64 add.
        engine::atomic_rmw(self.id, RmwKind::Add, v as u64, order, Location::caller()) as i64
    }
}

/// Engine-backed `AtomicUsize`.
#[derive(Debug)]
pub struct McAtomicUsize {
    id: usize,
}

impl AtomicUsizeApi for McAtomicUsize {
    fn new(v: usize) -> Self {
        McAtomicUsize { id: engine::alloc_atomic(v as u64, Location::caller()) }
    }
    fn load(&self, order: Ordering) -> usize {
        engine::atomic_load(self.id, order, Location::caller()) as usize
    }
    fn store(&self, v: usize, order: Ordering) {
        engine::atomic_store(self.id, v as u64, order, Location::caller())
    }
    fn fetch_add(&self, v: usize, order: Ordering) -> usize {
        engine::atomic_rmw(self.id, RmwKind::Add, v as u64, order, Location::caller()) as usize
    }
    fn fetch_sub(&self, v: usize, order: Ordering) -> usize {
        engine::atomic_rmw(self.id, RmwKind::Sub, v as u64, order, Location::caller()) as usize
    }
}

/// Engine-backed `AtomicBool` (0/1 in u64 space).
#[derive(Debug)]
pub struct McAtomicBool {
    id: usize,
}

impl AtomicBoolApi for McAtomicBool {
    fn new(v: bool) -> Self {
        McAtomicBool { id: engine::alloc_atomic(v as u64, Location::caller()) }
    }
    fn load(&self, order: Ordering) -> bool {
        engine::atomic_load(self.id, order, Location::caller()) != 0
    }
    fn store(&self, v: bool, order: Ordering) {
        engine::atomic_store(self.id, v as u64, order, Location::caller())
    }
}

/// Engine-backed mutex. The payload lives here; the engine only tracks
/// ownership and the hand-off clock.
#[derive(Debug)]
pub struct McMutex<T> {
    mid: usize,
    cell: UnsafeCell<T>,
}

// Safety: the engine guarantees at most one model thread holds the
// lock (so at most one `McMutexGuard` derefs the cell), and model
// threads are serialized by the engine mutex, which also carries the
// memory fence between real OS threads.
unsafe impl<T: Send> Send for McMutex<T> {}
unsafe impl<T: Send> Sync for McMutex<T> {}

/// Guard for [`McMutex`]; unlocks (as a visible op) on drop.
pub struct McMutexGuard<'a, T: Send + 'static> {
    mx: &'a McMutex<T>,
}

impl<T: Send + 'static> Deref for McMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: guard existence == engine-tracked ownership.
        unsafe { &*self.mx.cell.get() }
    }
}

impl<T: Send + 'static> DerefMut for McMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: as for deref; `&mut self` gives uniqueness.
        unsafe { &mut *self.mx.cell.get() }
    }
}

impl<T: Send + 'static> Drop for McMutexGuard<'_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Unwinding (model assertion or engine abort): release
            // ownership without a schedule point — a schedule point
            // could itself unwind, and a double panic aborts the
            // whole test process.
            engine::mutex_unlock_quiet(self.mx.mid);
        } else {
            engine::mutex_unlock(self.mx.mid);
        }
    }
}

impl<T: Send + 'static> MutexApi<T> for McMutex<T> {
    type Guard<'a>
        = McMutexGuard<'a, T>
    where
        T: 'a;
    fn new(t: T) -> Self {
        McMutex { mid: engine::alloc_mutex(), cell: UnsafeCell::new(t) }
    }
    fn lock_clean(&self) -> McMutexGuard<'_, T> {
        engine::mutex_lock(self.mid, Location::caller());
        McMutexGuard { mx: self }
    }
}

/// Engine-backed condvar.
#[derive(Debug)]
pub struct McCondvar {
    cid: usize,
}

impl CondvarApi for McCondvar {
    fn new() -> Self {
        McCondvar { cid: engine::alloc_cv() }
    }
}

/// Engine-backed race-checked plain cell.
#[derive(Debug)]
pub struct McData<T> {
    id: usize,
    cell: UnsafeCell<T>,
}

// Safety: every access goes through `engine::plain_access`, which
// aborts the execution (before touching the cell) if the access races;
// non-racing accesses are ordered by happens-before, and the engine
// mutex bracketing each access carries the fence between OS threads.
unsafe impl<T: Send> Send for McData<T> {}
unsafe impl<T: Send> Sync for McData<T> {}

impl<T: Copy + Send + 'static> DataApi<T> for McData<T> {
    fn new(v: T) -> Self {
        McData { id: engine::alloc_plain(), cell: UnsafeCell::new(v) }
    }
    fn get(&self) -> T {
        engine::plain_access(self.id, false, Location::caller());
        // Safety: see the Send/Sync impls above.
        unsafe { *self.cell.get() }
    }
    fn set(&self, v: T) {
        engine::plain_access(self.id, true, Location::caller());
        // Safety: see the Send/Sync impls above.
        unsafe { *self.cell.get() = v }
    }
}

/// Handle to a model thread; `join` is a visible op.
#[derive(Debug)]
pub struct McJoinHandle {
    target: usize,
}

impl JoinApi for McJoinHandle {
    fn join(self) {
        engine::join_model(self.target, Location::caller());
    }
}

impl Shims for McShims {
    type AtomicU64 = McAtomicU64;
    type AtomicI64 = McAtomicI64;
    type AtomicUsize = McAtomicUsize;
    type AtomicBool = McAtomicBool;
    type Mutex<T: Send + 'static> = McMutex<T>;
    type Condvar = McCondvar;
    type Data<T: Copy + Send + 'static> = McData<T>;
    type JoinHandle = McJoinHandle;

    fn spawn<F: FnOnce() + Send + 'static>(f: F) -> McJoinHandle {
        McJoinHandle { target: engine::spawn_model(Box::new(f)) }
    }

    fn thread_ordinal() -> usize {
        engine::cur_tid()
    }

    fn yield_now() {
        engine::yield_op(Location::caller());
    }

    fn cv_wait_timeout<'a, T: Send + 'static>(
        cv: &McCondvar,
        guard: McMutexGuard<'a, T>,
        _timeout: Duration,
    ) -> (McMutexGuard<'a, T>, bool)
    where
        McMutex<T>: 'a,
    {
        // The engine's wait releases and reacquires the mutex itself;
        // forget the guard (skipping its unlock-on-drop) and mint a
        // fresh one for the reacquired lock.
        let mx = guard.mx;
        std::mem::forget(guard);
        let timed_out = engine::cv_wait(cv.cid, mx.mid, Location::caller());
        (McMutexGuard { mx }, timed_out)
    }

    fn cv_notify_all(cv: &McCondvar) {
        engine::cv_notify_all(cv.cid);
    }
}
