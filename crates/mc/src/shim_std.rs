//! `StdShims`: the production instantiation. Every method is an
//! `#[inline(always)]` delegation to the `std` primitive, so a
//! structure generic over [`Shims`](crate::Shims) monomorphizes to
//! exactly the code it replaced. The loopback/shard bench floors in
//! ci.sh gate on this staying true.

use crate::api::{
    AtomicBoolApi, AtomicI64Api, AtomicU64Api, AtomicUsizeApi, CondvarApi, DataApi, JoinApi,
    MutexApi, Shims,
};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// The zero-cost production shim family (plain `std::sync` types).
#[derive(Debug)]
pub struct StdShims;

impl AtomicU64Api for AtomicU64 {
    #[inline(always)]
    fn new(v: u64) -> Self {
        AtomicU64::new(v)
    }
    #[inline(always)]
    fn load(&self, order: Ordering) -> u64 {
        AtomicU64::load(self, order)
    }
    #[inline(always)]
    fn store(&self, v: u64, order: Ordering) {
        AtomicU64::store(self, v, order)
    }
    #[inline(always)]
    fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
        AtomicU64::fetch_add(self, v, order)
    }
    #[inline(always)]
    fn fetch_max(&self, v: u64, order: Ordering) -> u64 {
        AtomicU64::fetch_max(self, v, order)
    }
    #[inline(always)]
    fn fetch_min(&self, v: u64, order: Ordering) -> u64 {
        AtomicU64::fetch_min(self, v, order)
    }
}

impl AtomicI64Api for AtomicI64 {
    #[inline(always)]
    fn new(v: i64) -> Self {
        AtomicI64::new(v)
    }
    #[inline(always)]
    fn load(&self, order: Ordering) -> i64 {
        AtomicI64::load(self, order)
    }
    #[inline(always)]
    fn store(&self, v: i64, order: Ordering) {
        AtomicI64::store(self, v, order)
    }
    #[inline(always)]
    fn fetch_add(&self, v: i64, order: Ordering) -> i64 {
        AtomicI64::fetch_add(self, v, order)
    }
}

impl AtomicUsizeApi for AtomicUsize {
    #[inline(always)]
    fn new(v: usize) -> Self {
        AtomicUsize::new(v)
    }
    #[inline(always)]
    fn load(&self, order: Ordering) -> usize {
        AtomicUsize::load(self, order)
    }
    #[inline(always)]
    fn store(&self, v: usize, order: Ordering) {
        AtomicUsize::store(self, v, order)
    }
    #[inline(always)]
    fn fetch_add(&self, v: usize, order: Ordering) -> usize {
        AtomicUsize::fetch_add(self, v, order)
    }
    #[inline(always)]
    fn fetch_sub(&self, v: usize, order: Ordering) -> usize {
        AtomicUsize::fetch_sub(self, v, order)
    }
}

impl AtomicBoolApi for AtomicBool {
    #[inline(always)]
    fn new(v: bool) -> Self {
        AtomicBool::new(v)
    }
    #[inline(always)]
    fn load(&self, order: Ordering) -> bool {
        AtomicBool::load(self, order)
    }
    #[inline(always)]
    fn store(&self, v: bool, order: Ordering) {
        AtomicBool::store(self, v, order)
    }
}

impl<T: Send + 'static> MutexApi<T> for Mutex<T> {
    type Guard<'a>
        = MutexGuard<'a, T>
    where
        T: 'a;
    #[inline(always)]
    fn new(t: T) -> Self {
        Mutex::new(t)
    }
    #[inline(always)]
    fn lock_clean(&self) -> MutexGuard<'_, T> {
        // A poisoned registry/ring/queue mutex means a panicking
        // holder elsewhere; the data is a plain value, so recover the
        // guard instead of cascading the panic (the PR 5 fix).
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl CondvarApi for Condvar {
    #[inline(always)]
    fn new() -> Self {
        Condvar::new()
    }
}

/// Safe mutex-backed plain cell; only models use `Data`, so this is
/// never on a production hot path.
#[derive(Debug)]
pub struct StdData<T>(Mutex<T>);

impl<T: Copy + Send + 'static> DataApi<T> for StdData<T> {
    #[inline(always)]
    fn new(v: T) -> Self {
        StdData(Mutex::new(v))
    }
    #[inline(always)]
    fn get(&self) -> T {
        *self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
    #[inline(always)]
    fn set(&self, v: T) {
        *self.0.lock().unwrap_or_else(PoisonError::into_inner) = v;
    }
}

impl JoinApi for std::thread::JoinHandle<()> {
    #[inline(always)]
    fn join(self) {
        // Worker panics already poisoned/aborted whatever they were
        // doing; joining is best-effort cleanup, so swallow the payload
        // rather than re-panic in the joiner.
        let _ = std::thread::JoinHandle::join(self);
    }
}

/// Ticket counter + thread-local for dense per-thread ordinals (used
/// for shard pinning by the ported structures).
static NEXT_ORDINAL: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_ORDINAL: usize =
        // ordering: Relaxed — a pure ticket draw; nothing is published
        // through this counter, uniqueness is all that matters.
        NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed);
}

impl Shims for StdShims {
    type AtomicU64 = AtomicU64;
    type AtomicI64 = AtomicI64;
    type AtomicUsize = AtomicUsize;
    type AtomicBool = AtomicBool;
    type Mutex<T: Send + 'static> = Mutex<T>;
    type Condvar = Condvar;
    type Data<T: Copy + Send + 'static> = StdData<T>;
    type JoinHandle = std::thread::JoinHandle<()>;

    #[inline(always)]
    fn spawn<F: FnOnce() + Send + 'static>(f: F) -> Self::JoinHandle {
        std::thread::spawn(f)
    }

    #[inline(always)]
    fn thread_ordinal() -> usize {
        MY_ORDINAL.with(|o| *o)
    }

    #[inline(always)]
    fn yield_now() {
        std::thread::yield_now()
    }

    #[inline(always)]
    fn cv_wait_timeout<'a, T: Send + 'static>(
        cv: &Condvar,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool)
    where
        Mutex<T>: 'a,
    {
        let (guard, res) = cv.wait_timeout(guard, timeout).unwrap_or_else(PoisonError::into_inner);
        (guard, res.timed_out())
    }

    #[inline(always)]
    fn cv_notify_all(cv: &Condvar) {
        cv.notify_all()
    }
}
