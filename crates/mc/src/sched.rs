//! Schedule sources: where scheduling decisions come from.
//!
//! Every multi-option decision point (which thread runs next; which
//! store a weak load reads) asks the execution's [`Source`] for a
//! choice. Three sources exist:
//!
//! - [`Dfs`]: systematic depth-first enumeration with a preemption
//!   bound (CHESS-style). The driver replays the recorded prefix,
//!   takes the default at the frontier, and backtracks the deepest
//!   decision with an unexplored alternative after each execution.
//! - `Replay`: a fixed byte string (one byte per multi-option
//!   decision) — the repro format every failure ships.
//! - `Random`: seeded SplitMix64 sampling for depths beyond the
//!   exhaustive bound.
//!
//! Decisions are positional: byte `i` answers the `i`-th multi-option
//! decision of the execution. Single-option points consume nothing,
//! which keeps schedules short and replay robust.

/// A replayable schedule: the byte string of choices taken at each
/// multi-option decision point, rendered as hex (the same artifact
/// style as gcs-sim's scenario `.hex` corpus).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule(pub Vec<u8>);

impl Schedule {
    /// Render as lowercase hex (empty schedule ⇒ empty string).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(self.0.len() * 2);
        for b in &self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap_or('?'));
            s.push(char::from_digit((b & 0xf) as u32, 16).unwrap_or('?'));
        }
        s
    }

    /// Parse a hex string produced by [`Schedule::to_hex`].
    pub fn from_hex(s: &str) -> Option<Schedule> {
        let s = s.trim();
        if !s.len().is_multiple_of(2) {
            return None;
        }
        let mut out = Vec::with_capacity(s.len() / 2);
        let bytes = s.as_bytes();
        for pair in bytes.chunks(2) {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            out.push(((hi << 4) | lo) as u8);
        }
        Some(Schedule(out))
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Why a source could not produce a choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DecideErr {
    /// Replay bytes ran out or named an option that does not exist.
    Diverged,
    /// A DFS prefix replay saw a different option set than the run
    /// that recorded it — the model itself is nondeterministic.
    Nondeterminism,
}

/// One recorded multi-option decision in a DFS prefix.
#[derive(Clone, Debug)]
pub(crate) struct Decision {
    /// The option bytes, default (non-preemptive) first.
    options: Vec<u8>,
    /// Whether picking option `i` preempts a still-runnable thread.
    preemptive: Vec<bool>,
    /// Index into `options` chosen on the current path.
    chosen: usize,
    /// Preemptions already spent before this decision.
    preemptions_before: usize,
}

/// Depth-first systematic exploration with a preemption bound.
#[derive(Debug)]
pub(crate) struct Dfs {
    prefix: Vec<Decision>,
    cursor: usize,
    bound: usize,
}

impl Dfs {
    pub(crate) fn new(bound: usize) -> Dfs {
        Dfs { prefix: Vec::new(), cursor: 0, bound }
    }

    /// Reset the replay cursor before an execution.
    pub(crate) fn begin(&mut self) {
        self.cursor = 0;
    }

    /// Advance to the next unexplored path: bump the deepest decision
    /// with a bound-allowed alternative, popping exhausted ones.
    /// Returns false when the space (at this bound) is exhausted.
    pub(crate) fn backtrack(&mut self) -> bool {
        loop {
            let bound = self.bound;
            let Some(d) = self.prefix.last_mut() else {
                return false;
            };
            let mut next = d.chosen + 1;
            while next < d.options.len() && d.preemptive[next] && d.preemptions_before >= bound {
                next += 1;
            }
            if next < d.options.len() {
                d.chosen = next;
                return true;
            }
            self.prefix.pop();
        }
    }
}

/// SplitMix64: the repo-standard tiny deterministic PRNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A decision source for one (or a sequence of) executions.
#[derive(Debug)]
pub(crate) enum Source {
    /// Systematic DFS (persists across executions; driver backtracks).
    Dfs(Dfs),
    /// Fixed byte string replay.
    Replay { bytes: Vec<u8>, pos: usize },
    /// Seeded random sampling with a (large) preemption bound.
    Random { state: u64, bound: usize, taken: Vec<u8> },
}

impl Source {
    pub(crate) fn replay(schedule: &Schedule) -> Source {
        Source::Replay { bytes: schedule.0.clone(), pos: 0 }
    }

    pub(crate) fn random(seed: u64, bound: usize) -> Source {
        // Mix the seed so seed 0 and seed 1 diverge immediately.
        let mut state = seed ^ 0x6a09_e667_f3bc_c909;
        splitmix64(&mut state);
        Source::Random { state, bound, taken: Vec::new() }
    }

    /// Answer a multi-option decision. `options` lists the candidate
    /// bytes with the non-preemptive default first; `preemptive[i]`
    /// says whether option `i` would preempt a runnable thread;
    /// `preemptions_now` is the count already spent this execution.
    /// Returns the chosen byte and whether it was a preemption.
    pub(crate) fn decide(
        &mut self,
        options: &[u8],
        preemptive: &[bool],
        preemptions_now: usize,
    ) -> Result<(u8, bool), DecideErr> {
        debug_assert!(options.len() >= 2);
        match self {
            Source::Dfs(dfs) => {
                if dfs.cursor < dfs.prefix.len() {
                    let d = &dfs.prefix[dfs.cursor];
                    if d.options != options {
                        return Err(DecideErr::Nondeterminism);
                    }
                    let idx = d.chosen;
                    dfs.cursor += 1;
                    Ok((options[idx], preemptive[idx]))
                } else {
                    // Frontier: take the default. Option 0 is always
                    // bound-allowed (it is only preemptive when no
                    // non-preemptive option exists, which cannot
                    // happen: a preemption requires the previous
                    // thread to still be runnable, and then that
                    // thread is itself option 0).
                    dfs.prefix.push(Decision {
                        options: options.to_vec(),
                        preemptive: preemptive.to_vec(),
                        chosen: 0,
                        preemptions_before: preemptions_now,
                    });
                    dfs.cursor += 1;
                    Ok((options[0], preemptive[0]))
                }
            }
            Source::Replay { bytes, pos } => {
                let Some(&b) = bytes.get(*pos) else {
                    return Err(DecideErr::Diverged);
                };
                let Some(idx) = options.iter().position(|&o| o == b) else {
                    return Err(DecideErr::Diverged);
                };
                *pos += 1;
                Ok((b, preemptive[idx]))
            }
            Source::Random { state, bound, taken } => {
                let allowed: Vec<usize> = (0..options.len())
                    .filter(|&i| !preemptive[i] || preemptions_now < *bound)
                    .collect();
                let r = splitmix64(state);
                let idx = allowed[(r % allowed.len() as u64) as usize];
                taken.push(options[idx]);
                Ok((options[idx], preemptive[idx]))
            }
        }
    }

    /// The byte string of every decision taken so far this execution
    /// — the repro schedule attached to failures.
    pub(crate) fn taken(&self) -> Schedule {
        match self {
            Source::Dfs(dfs) => {
                Schedule(dfs.prefix[..dfs.cursor].iter().map(|d| d.options[d.chosen]).collect())
            }
            Source::Replay { bytes, pos } => Schedule(bytes[..*pos].to_vec()),
            Source::Random { taken, .. } => Schedule(taken.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        let s = Schedule(vec![0x00, 0x1f, 0xab]);
        assert_eq!(s.to_hex(), "001fab");
        assert_eq!(Schedule::from_hex("001fab"), Some(s));
        assert_eq!(Schedule::from_hex("0"), None);
        assert_eq!(Schedule::from_hex("zz"), None);
    }

    #[test]
    fn dfs_enumerates_binary_tree_within_bound() {
        // Two back-to-back binary decisions where the second option is
        // always a preemption: bound 0 explores only the default path,
        // bound 1 explores paths with at most one '1'.
        let run = |bound: usize| {
            let mut dfs = Dfs::new(bound);
            let mut paths = Vec::new();
            loop {
                dfs.begin();
                let mut src = Source::Dfs(dfs);
                let mut path = Vec::new();
                let mut preempts = 0;
                for _ in 0..2 {
                    let (b, p) = src.decide(&[0, 1], &[false, true], preempts).unwrap();
                    if p {
                        preempts += 1;
                    }
                    path.push(b);
                }
                paths.push(path);
                let Source::Dfs(d) = src else { unreachable!() };
                dfs = d;
                if !dfs.backtrack() {
                    break;
                }
            }
            paths
        };
        assert_eq!(run(0), vec![vec![0, 0]]);
        assert_eq!(run(1), vec![vec![0, 0], vec![0, 1], vec![1, 0]]);
        assert_eq!(run(2), vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn replay_diverges_on_unknown_option_or_exhaustion() {
        let mut src = Source::replay(&Schedule(vec![1]));
        assert_eq!(src.decide(&[0, 1], &[false, true], 0), Ok((1, true)));
        assert_eq!(src.decide(&[0, 1], &[false, true], 1), Err(DecideErr::Diverged));
        let mut src = Source::replay(&Schedule(vec![7]));
        assert_eq!(src.decide(&[0, 1], &[false, true], 0), Err(DecideErr::Diverged));
    }

    #[test]
    fn random_is_deterministic_per_seed_and_respects_bound() {
        let drive = |seed: u64| {
            let mut src = Source::random(seed, 0);
            let mut got = Vec::new();
            for _ in 0..16 {
                // Option 1 is preemptive and the bound is 0, so only
                // the default may ever be chosen.
                let (b, p) = src.decide(&[0, 1], &[false, true], 0).unwrap();
                assert!(!p);
                got.push(b);
            }
            got
        };
        assert_eq!(drive(42), vec![0; 16]);
        // With read-style (never-preemptive) options the draw varies.
        let mut a = Source::random(7, 0);
        let mut b = Source::random(7, 0);
        for _ in 0..32 {
            let x = a.decide(&[3, 2, 1], &[false; 3], 0).unwrap();
            let y = b.decide(&[3, 2, 1], &[false; 3], 0).unwrap();
            assert_eq!(x, y);
        }
    }
}
