//! The cooperative scheduler and happens-before checker.
//!
//! One real OS thread per model thread, but exactly one ever runs at a
//! time: a baton (the `active` slot of the engine state, guarded by a
//! single mutex + condvar) is handed from thread to thread at every
//! *visible operation* (atomic access, plain `Data` access, mutex
//! lock/unlock, condvar wait/notify, spawn, join, yield, exit). Before
//! each visible op the running thread parks, the engine consults the
//! schedule [`Source`] for who runs next, and the chosen thread
//! performs its pending op while holding the engine lock — so the
//! interleaving is exactly the decision string and nothing else.
//!
//! The happens-before state rides along: every thread carries a vector
//! clock; spawn/join/mutex-hand-off/release-acquire chains join
//! clocks; atomic locations keep their full store history so weak
//! loads can read stale-but-coherent values (which stores are readable
//! is itself a scheduling decision); plain `Data` accesses keep an
//! access history and report the first unsynchronized conflicting
//! pair. See docs/CONCURRENCY.md for the model written out.

use crate::clock::VClock;
use crate::report::{Failure, FailureKind, Site};
use crate::sched::{DecideErr, Source};
use std::cell::RefCell;
use std::panic::Location;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

pub(crate) type Tid = usize;

/// Model threads are capped well below the u8 schedule-byte range;
/// real models use 2-5 threads.
const MAX_THREADS: usize = 16;
/// Store-history cap per atomic location: ts must stay a unique byte
/// for the read-from decision encoding.
const MAX_STORES: u32 = 250;

/// Sentinel unwind payload for "execution aborted, unwind quietly".
/// Raised with `resume_unwind` (not `panic_any`) so the panic hook
/// stays silent during the thousands of normal exploration aborts.
pub(crate) struct Abort;

/// Run state of one model thread.
#[derive(Clone, Copy, Debug)]
enum Run {
    Ready,
    Running,
    BlockedMutex(usize),
    BlockedJoin(Tid),
    BlockedCv { cv: usize, notified: bool },
    Finished,
}

struct ThreadSt {
    run: Run,
    clock: VClock,
    /// Per-atomic-location floor on readable store timestamps
    /// (coherence: monotone reads + read-own-writes).
    view: Vec<u32>,
    /// Where this thread blocked (deadlock reports).
    blocked_at: Option<Site>,
    /// Set when the scheduler fired this thread's timed cv wait (all
    /// live threads were blocked); read and cleared by `cv_wait`.
    timed_fired: bool,
}

impl ThreadSt {
    fn new(clock: VClock, view: Vec<u32>) -> ThreadSt {
        ThreadSt { run: Run::Ready, clock, view, blocked_at: None, timed_fired: false }
    }
}

/// One store in an atomic location's history.
struct StoreRec {
    val: u64,
    /// Modification-order timestamp (unique per location).
    ts: u32,
    tid: Tid,
    /// Writer's clock at the store (for "store happened-before
    /// reader" visibility floors).
    wclock: VClock,
    /// The clock an acquire load of this store synchronizes with:
    /// `Some` for release stores, and carried forward through RMWs
    /// (C++20 release sequences). `None` means "acquiring this store
    /// synchronizes with nothing".
    release: Option<VClock>,
    /// The initial value written at construction; exempt from the
    /// vacuous-acquire check (reading "nothing happened yet" is fine).
    init: bool,
    site: Site,
}

struct AtomicLoc {
    stores: Vec<StoreRec>,
    next_ts: u32,
}

/// One recorded access to a plain `Data` location.
struct AccessRec {
    tid: Tid,
    /// The accessor's own clock component at the access.
    epoch: u32,
    write: bool,
    site: Site,
}

struct MutexLoc {
    owner: Option<Tid>,
    /// Clock released by the last unlocker; joined by the next locker.
    clock: VClock,
}

/// Which RMW the shim asked for (value math is done in u64 space;
/// i64/usize/bool are bit-cast by the shim layer).
#[derive(Clone, Copy, Debug)]
pub(crate) enum RmwKind {
    Add,
    Sub,
    Max,
    Min,
}

impl RmwKind {
    fn apply(self, old: u64, operand: u64) -> u64 {
        match self {
            RmwKind::Add => old.wrapping_add(operand),
            RmwKind::Sub => old.wrapping_sub(operand),
            RmwKind::Max => old.max(operand),
            RmwKind::Min => old.min(operand),
        }
    }
}

/// The whole engine state, guarded by `Engine::st`.
pub(crate) struct EngSt {
    source: Option<Source>,
    threads: Vec<ThreadSt>,
    atomics: Vec<AtomicLoc>,
    plains: Vec<Vec<AccessRec>>,
    mutexes: Vec<MutexLoc>,
    n_cvs: usize,
    active: Option<Tid>,
    last_running: Option<Tid>,
    preemptions: usize,
    live: usize,
    steps: u64,
    max_steps: u64,
    digest: u64,
    pub(crate) failure: Option<Failure>,
    aborting: bool,
    pub(crate) done: bool,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Engine {
    st: Mutex<EngSt>,
    cv: Condvar,
}

impl Engine {
    pub(crate) fn new(source: Source, max_steps: u64) -> Engine {
        Engine {
            st: Mutex::new(EngSt {
                source: Some(source),
                threads: Vec::new(),
                atomics: Vec::new(),
                plains: Vec::new(),
                mutexes: Vec::new(),
                n_cvs: 0,
                active: None,
                last_running: None,
                preemptions: 0,
                live: 0,
                steps: 0,
                max_steps,
                digest: 0xcbf2_9ce4_8422_2325, // FNV-1a offset basis
                failure: None,
                aborting: false,
                done: false,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Poison-tolerant lock: aborts unwind while holding this mutex by
    /// design, so poisoning is routine, not a bug signal.
    pub(crate) fn lock(&self) -> MutexGuard<'_, EngSt> {
        self.st.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn wake_all(&self) {
        self.cv.notify_all();
    }

    /// Driver: block until the execution is over.
    pub(crate) fn wait_done(&self) -> MutexGuard<'_, EngSt> {
        let mut st = self.lock();
        while !st.done {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st
    }
}

impl EngSt {
    /// Harvest the per-execution results (driver side, after done).
    pub(crate) fn harvest(
        &mut self,
    ) -> (Option<Failure>, u64, Source, Vec<std::thread::JoinHandle<()>>) {
        (
            self.failure.take(),
            self.digest,
            self.source.take().expect("source present at harvest"),
            std::mem::take(&mut self.os_handles),
        )
    }

    fn fold(&mut self, x: u64) {
        // FNV-1a folded per u64 word: cheap, deterministic, and only
        // compared for equality across replays.
        self.digest = (self.digest ^ x).wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn fold_op(&mut self, tid: Tid, code: u64, loc: usize, val: u64) {
        self.fold(tid as u64);
        self.fold(code);
        self.fold(loc as u64);
        self.fold(val);
    }

    fn enabled(&self, t: Tid) -> bool {
        match self.threads[t].run {
            Run::Ready | Run::Running => true,
            Run::BlockedMutex(m) => self.mutexes[m].owner.is_none(),
            Run::BlockedJoin(j) => matches!(self.threads[j].run, Run::Finished),
            Run::BlockedCv { notified, .. } => notified,
            Run::Finished => false,
        }
    }
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Engine>, Tid)>> = const { RefCell::new(None) };
}

/// Run `f` with the current model thread's engine context. Panics
/// (plainly — this is a usage error, not a model failure) when called
/// outside `Checker::check`.
fn with_ctx<R>(f: impl FnOnce(&Arc<Engine>, Tid) -> R) -> R {
    CTX.with(|c| {
        let b = c.borrow();
        let (eng, tid) =
            b.as_ref().expect("gcs-mc shim used outside a Checker::check model thread");
        f(eng, *tid)
    })
}

pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

fn abort_check(st: &EngSt) {
    if st.aborting {
        std::panic::resume_unwind(Box::new(Abort));
    }
}

/// Record a failure (first wins) and flip the engine into abort mode;
/// callers must `wake_all` afterwards so parked threads unwind.
fn fail(st: &mut EngSt, kind: FailureKind) {
    if st.failure.is_none() {
        let schedule = st
            .source
            .as_ref()
            .map(|s| s.taken())
            .unwrap_or_else(|| crate::sched::Schedule(Vec::new()));
        st.failure = Some(Failure { kind, schedule, digest: st.digest });
    }
    st.aborting = true;
}

/// Pick who runs next. Called with no active thread. Handles timed-cv
/// timeout firing and deadlock detection.
fn pick_next(st: &mut EngSt) {
    if st.live == 0 {
        st.done = true;
        return;
    }
    if st.aborting {
        return;
    }
    let mut enabled: Vec<Tid> = (0..st.threads.len()).filter(|&t| st.enabled(t)).collect();
    if enabled.is_empty() {
        // Every live thread is blocked. Timed condvar waits now time
        // out — all of them, deterministically; this is the model's
        // stand-in for "enough wall time passed" and only triggers
        // when nothing else can move, which keeps executions finite
        // without a clock.
        let mut fired = false;
        for t in 0..st.threads.len() {
            if let Run::BlockedCv { cv, notified: false } = st.threads[t].run {
                st.threads[t].run = Run::BlockedCv { cv, notified: true };
                st.threads[t].timed_fired = true;
                fired = true;
            }
        }
        if !fired {
            let blocked: Vec<(usize, Site)> = (0..st.threads.len())
                .filter(|&t| !matches!(st.threads[t].run, Run::Finished))
                .map(|t| {
                    (
                        t,
                        st.threads[t].blocked_at.unwrap_or(Site {
                            file: "<unknown>",
                            line: 0,
                            column: 0,
                        }),
                    )
                })
                .collect();
            fail(st, FailureKind::Deadlock { blocked });
            return;
        }
        enabled = (0..st.threads.len()).filter(|&t| st.enabled(t)).collect();
    }
    // Default = keep the last-running thread if it can continue (the
    // non-preemptive choice), else the lowest runnable tid.
    let default = match st.last_running {
        Some(p) if enabled.contains(&p) => p,
        _ => enabled[0],
    };
    let prev_runnable = st.last_running.filter(|p| enabled.contains(p));
    let mut options: Vec<u8> = vec![default as u8];
    options.extend(enabled.iter().filter(|&&t| t != default).map(|&t| t as u8));
    let preemptive: Vec<bool> =
        options.iter().map(|&o| prev_runnable.is_some_and(|p| p != o as Tid)).collect();
    let chosen = if options.len() == 1 {
        options[0]
    } else {
        let preemptions = st.preemptions;
        let src = st.source.as_mut().expect("source present");
        match src.decide(&options, &preemptive, preemptions) {
            Ok((b, was_preempt)) => {
                if was_preempt {
                    st.preemptions += 1;
                }
                b
            }
            Err(DecideErr::Diverged) => {
                fail(st, FailureKind::ScheduleDiverged);
                return;
            }
            Err(DecideErr::Nondeterminism) => {
                fail(st, FailureKind::Nondeterminism);
                return;
            }
        }
    };
    let t = chosen as Tid;
    st.threads[t].run = Run::Running;
    st.threads[t].blocked_at = None;
    st.active = Some(t);
    st.last_running = Some(t);
}

/// Park until this thread holds the baton (or the execution aborts).
fn wait_running<'a>(
    eng: &'a Engine,
    mut st: MutexGuard<'a, EngSt>,
    tid: Tid,
) -> MutexGuard<'a, EngSt> {
    loop {
        abort_check(&st);
        if matches!(st.threads[tid].run, Run::Running) {
            return st;
        }
        st = eng.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
}

/// The schedule point at the head of every visible op: yield the
/// baton, let the source pick the next runner, park until it is us.
/// Returns with the engine locked and this thread Running.
fn schedule_point<'a>(eng: &'a Engine, tid: Tid) -> MutexGuard<'a, EngSt> {
    let mut st = eng.lock();
    abort_check(&st);
    st.steps += 1;
    if st.steps > st.max_steps {
        fail(&mut st, FailureKind::StepCap);
        eng.wake_all();
        abort_check(&st);
    }
    st.threads[tid].run = Run::Ready;
    st.active = None;
    pick_next(&mut st);
    eng.wake_all();
    wait_running(eng, st, tid)
}

/// Block the current thread with `run`, schedule someone else, park
/// until granted again.
fn block_self<'a>(
    eng: &'a Engine,
    mut st: MutexGuard<'a, EngSt>,
    tid: Tid,
    run: Run,
    site: Site,
) -> MutexGuard<'a, EngSt> {
    st.threads[tid].run = run;
    st.threads[tid].blocked_at = Some(site);
    st.active = None;
    pick_next(&mut st);
    eng.wake_all();
    wait_running(eng, st, tid)
}

// ---------------------------------------------------------------------------
// Allocation (not visible ops: no schedule point, just registration).
// ---------------------------------------------------------------------------

pub(crate) fn alloc_atomic(init: u64, loc: &'static Location<'static>) -> usize {
    with_ctx(|eng, tid| {
        let mut st = eng.lock();
        abort_check(&st);
        let id = st.atomics.len();
        let wclock = st.threads[tid].clock.clone();
        st.atomics.push(AtomicLoc {
            stores: vec![StoreRec {
                val: init,
                ts: 0,
                tid,
                wclock,
                release: None,
                init: true,
                site: Site::of(loc),
            }],
            next_ts: 1,
        });
        id
    })
}

pub(crate) fn alloc_plain() -> usize {
    with_ctx(|eng, _| {
        let mut st = eng.lock();
        abort_check(&st);
        let id = st.plains.len();
        st.plains.push(Vec::new());
        id
    })
}

pub(crate) fn alloc_mutex() -> usize {
    with_ctx(|eng, _| {
        let mut st = eng.lock();
        abort_check(&st);
        let id = st.mutexes.len();
        st.mutexes.push(MutexLoc { owner: None, clock: VClock::default() });
        id
    })
}

pub(crate) fn alloc_cv() -> usize {
    with_ctx(|eng, _| {
        let mut st = eng.lock();
        abort_check(&st);
        let id = st.n_cvs;
        st.n_cvs += 1;
        id
    })
}

// ---------------------------------------------------------------------------
// Ordering interpretation.
// ---------------------------------------------------------------------------

use std::sync::atomic::Ordering;

// ordering: these two matches *interpret* the Ordering a ported
// structure declared — Acquire/AcqRel/SeqCst on the load side join the
// store's release clock; Release/AcqRel/SeqCst on the store side
// publish the writer's clock. SeqCst is treated as AcqRel (no global
// SC order is modeled; documented in docs/CONCURRENCY.md).
fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

// ordering: see is_acquire — the store-side half of the interpreter.
fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

// ---------------------------------------------------------------------------
// Visible operations.
// ---------------------------------------------------------------------------

/// Apply the acquire side of reading `store`: join its release clock,
/// or report a vacuous acquire (an Acquire load whose observed store
/// published nothing — every claimed pairing is fiction).
#[allow(clippy::too_many_arguments)] // a store's identity is genuinely this wide
fn acquire_read(
    eng: &Engine,
    st: &mut MutexGuard<'_, EngSt>,
    tid: Tid,
    order: Ordering,
    release: &Option<VClock>,
    store_init: bool,
    store_site: Site,
    load_site: Site,
) {
    if !is_acquire(order) {
        return;
    }
    match release {
        Some(rc) => {
            let rc = rc.clone();
            st.threads[tid].clock.join(&rc);
        }
        None if !store_init => {
            fail(st, FailureKind::VacuousAcquire { store: store_site, load: load_site });
            eng.wake_all();
            abort_check(st);
        }
        None => {}
    }
}

pub(crate) fn atomic_load(id: usize, order: Ordering, loc: &'static Location<'static>) -> u64 {
    with_ctx(|eng, tid| {
        let mut st = schedule_point(eng, tid);
        let site = Site::of(loc);
        // Readable set: at least the thread's coherence floor for this
        // location, and at least every store that happened-before this
        // load (a store the loader already "knows about" cannot be
        // unread). Which readable store is observed is a scheduling
        // decision, newest (SC-like) first.
        let view_floor = st.threads[tid].view.get(id).copied().unwrap_or(0);
        let hb_floor = {
            let clock = &st.threads[tid].clock;
            st.atomics[id]
                .stores
                .iter()
                .filter(|s| clock.covers(s.tid, s.wclock.get(s.tid)))
                .map(|s| s.ts)
                .max()
                .unwrap_or(0)
        };
        let floor = view_floor.max(hb_floor);
        let mut readable: Vec<(u32, u8)> = st.atomics[id]
            .stores
            .iter()
            .filter(|s| s.ts >= floor)
            .map(|s| (s.ts, (s.ts & 0xff) as u8))
            .collect();
        readable.sort_by_key(|r| std::cmp::Reverse(r.0));
        let chosen_ts = if readable.len() == 1 {
            readable[0].0
        } else {
            let options: Vec<u8> = readable.iter().map(|r| r.1).collect();
            let preemptive = vec![false; options.len()];
            let preemptions = st.preemptions;
            let src = st.source.as_mut().expect("source present");
            match src.decide(&options, &preemptive, preemptions) {
                Ok((b, _)) => readable.iter().find(|r| r.1 == b).map(|r| r.0).unwrap_or(0),
                Err(e) => {
                    let kind = match e {
                        DecideErr::Diverged => FailureKind::ScheduleDiverged,
                        DecideErr::Nondeterminism => FailureKind::Nondeterminism,
                    };
                    fail(&mut st, kind);
                    eng.wake_all();
                    abort_check(&st);
                    unreachable!("abort_check unwinds");
                }
            }
        };
        let idx = st.atomics[id]
            .stores
            .iter()
            .position(|s| s.ts == chosen_ts)
            .expect("chosen store exists");
        let (val, release, init, store_site) = {
            let s = &st.atomics[id].stores[idx];
            (s.val, s.release.clone(), s.init, s.site)
        };
        if st.threads[tid].view.len() <= id {
            st.threads[tid].view.resize(id + 1, 0);
        }
        st.threads[tid].view[id] = chosen_ts;
        acquire_read(eng, &mut st, tid, order, &release, init, store_site, site);
        st.threads[tid].clock.bump(tid);
        st.fold_op(tid, 1, id, val);
        val
    })
}

/// Append a store to the location history; shared by store and RMW.
fn push_store(
    st: &mut MutexGuard<'_, EngSt>,
    tid: Tid,
    id: usize,
    val: u64,
    release: Option<VClock>,
    site: Site,
) -> u32 {
    let ts = st.atomics[id].next_ts;
    if ts >= MAX_STORES {
        fail(st, FailureKind::StepCap);
        return ts;
    }
    st.atomics[id].next_ts += 1;
    let wclock = st.threads[tid].clock.clone();
    st.atomics[id].stores.push(StoreRec { val, ts, tid, wclock, release, init: false, site });
    if st.threads[tid].view.len() <= id {
        st.threads[tid].view.resize(id + 1, 0);
    }
    st.threads[tid].view[id] = ts;
    ts
}

pub(crate) fn atomic_store(id: usize, val: u64, order: Ordering, loc: &'static Location<'static>) {
    with_ctx(|eng, tid| {
        let mut st = schedule_point(eng, tid);
        st.threads[tid].clock.bump(tid);
        let release = is_release(order).then(|| st.threads[tid].clock.clone());
        push_store(&mut st, tid, id, val, release, Site::of(loc));
        st.fold_op(tid, 2, id, val);
        if st.aborting {
            eng.wake_all();
            abort_check(&st);
        }
    })
}

pub(crate) fn atomic_rmw(
    id: usize,
    kind: RmwKind,
    operand: u64,
    order: Ordering,
    loc: &'static Location<'static>,
) -> u64 {
    with_ctx(|eng, tid| {
        let mut st = schedule_point(eng, tid);
        let site = Site::of(loc);
        // An RMW always reads the latest store (atomicity pins it to
        // the end of the modification order) and continues its release
        // sequence: the predecessor's release clock is carried forward
        // so a later acquire load synchronizes with the whole chain.
        let (old, carried, pred_init, pred_site) = {
            let s = st.atomics[id].stores.last().expect("atomic has init store");
            (s.val, s.release.clone(), s.init, s.site)
        };
        acquire_read(eng, &mut st, tid, order, &carried, pred_init, pred_site, site);
        let newv = kind.apply(old, operand);
        st.threads[tid].clock.bump(tid);
        let release = if is_release(order) {
            let mut c = st.threads[tid].clock.clone();
            if let Some(cc) = &carried {
                c.join(cc);
            }
            Some(c)
        } else {
            carried
        };
        push_store(&mut st, tid, id, newv, release, site);
        st.fold_op(tid, 3, id, newv);
        if st.aborting {
            eng.wake_all();
            abort_check(&st);
        }
        old
    })
}

/// A checked plain access: report the first unsynchronized conflicting
/// pair, then record this access in the location history.
pub(crate) fn plain_access(id: usize, write: bool, loc: &'static Location<'static>) {
    with_ctx(|eng, tid| {
        let mut st = schedule_point(eng, tid);
        let site = Site::of(loc);
        let racy = st.plains[id]
            .iter()
            .find(|a| {
                (a.write || write) && a.tid != tid && !st.threads[tid].clock.covers(a.tid, a.epoch)
            })
            .map(|a| a.site);
        if let Some(first) = racy {
            fail(&mut st, FailureKind::Race { first, second: site });
            eng.wake_all();
            abort_check(&st);
        }
        st.threads[tid].clock.bump(tid);
        let epoch = st.threads[tid].clock.get(tid);
        st.plains[id].push(AccessRec { tid, epoch, write, site });
        st.fold_op(tid, if write { 5 } else { 4 }, id, 0);
    })
}

pub(crate) fn mutex_lock(mid: usize, loc: &'static Location<'static>) {
    with_ctx(|eng, tid| {
        let mut st = schedule_point(eng, tid);
        let site = Site::of(loc);
        loop {
            if st.mutexes[mid].owner.is_none() {
                st.mutexes[mid].owner = Some(tid);
                let mclock = st.mutexes[mid].clock.clone();
                st.threads[tid].clock.join(&mclock);
                st.threads[tid].clock.bump(tid);
                st.fold_op(tid, 6, mid, 0);
                return;
            }
            st = block_self(eng, st, tid, Run::BlockedMutex(mid), site);
        }
    })
}

pub(crate) fn mutex_unlock(mid: usize) {
    with_ctx(|eng, tid| {
        let mut st = schedule_point(eng, tid);
        st.threads[tid].clock.bump(tid);
        let clock = st.threads[tid].clock.clone();
        st.mutexes[mid].clock.join(&clock);
        st.mutexes[mid].owner = None;
        st.fold_op(tid, 7, mid, 0);
    })
}

/// Unlock without a schedule point or any chance of unwinding: the
/// guard-drop path while the thread is already panicking (model
/// assertion or engine abort). Double panic would abort the process.
pub(crate) fn mutex_unlock_quiet(mid: usize) {
    with_ctx(|eng, tid| {
        let mut st = eng.lock();
        if st.mutexes[mid].owner == Some(tid) {
            let clock = st.threads[tid].clock.clone();
            st.mutexes[mid].clock.join(&clock);
            st.mutexes[mid].owner = None;
        }
        eng.wake_all();
    })
}

/// Condvar wait: atomically release the mutex and block; on wake,
/// reacquire. Returns whether the (always-timed) wait timed out —
/// which under the model happens only when every live thread was
/// blocked. No happens-before edge flows through the condvar itself;
/// the mutex hand-off carries it, as with real condvars.
pub(crate) fn cv_wait(cvid: usize, mid: usize, loc: &'static Location<'static>) -> bool {
    with_ctx(|eng, tid| {
        let mut st = schedule_point(eng, tid);
        let site = Site::of(loc);
        st.threads[tid].clock.bump(tid);
        let clock = st.threads[tid].clock.clone();
        st.mutexes[mid].clock.join(&clock);
        st.mutexes[mid].owner = None;
        st.fold_op(tid, 8, cvid, 0);
        st = block_self(eng, st, tid, Run::BlockedCv { cv: cvid, notified: false }, site);
        let timed_out = std::mem::take(&mut st.threads[tid].timed_fired);
        // Reacquire the mutex before returning (condvar contract).
        loop {
            if st.mutexes[mid].owner.is_none() {
                st.mutexes[mid].owner = Some(tid);
                let mclock = st.mutexes[mid].clock.clone();
                st.threads[tid].clock.join(&mclock);
                st.threads[tid].clock.bump(tid);
                break;
            }
            st = block_self(eng, st, tid, Run::BlockedMutex(mid), site);
        }
        timed_out
    })
}

pub(crate) fn cv_notify_all(cvid: usize) {
    with_ctx(|eng, tid| {
        let mut st = schedule_point(eng, tid);
        for t in 0..st.threads.len() {
            if let Run::BlockedCv { cv, notified: false } = st.threads[t].run {
                if cv == cvid {
                    st.threads[t].run = Run::BlockedCv { cv, notified: true };
                }
            }
        }
        st.threads[tid].clock.bump(tid);
        st.fold_op(tid, 9, cvid, 0);
    })
}

pub(crate) fn yield_op(_loc: &'static Location<'static>) {
    with_ctx(|eng, tid| {
        let mut st = schedule_point(eng, tid);
        st.threads[tid].clock.bump(tid);
        st.fold_op(tid, 10, 0, 0);
    })
}

pub(crate) fn cur_tid() -> usize {
    with_ctx(|_, tid| tid)
}

// ---------------------------------------------------------------------------
// Threads.
// ---------------------------------------------------------------------------

pub(crate) fn spawn_model(body: Box<dyn FnOnce() + Send>) -> Tid {
    with_ctx(|eng, tid| {
        let mut st = schedule_point(eng, tid);
        let child = st.threads.len();
        if child >= MAX_THREADS {
            fail(&mut st, FailureKind::StepCap);
            eng.wake_all();
            abort_check(&st);
        }
        st.threads[tid].clock.bump(tid);
        let mut cclock = st.threads[tid].clock.clone();
        cclock.bump(child);
        let cview = st.threads[tid].view.clone();
        st.threads.push(ThreadSt::new(cclock, cview));
        st.live += 1;
        st.fold_op(tid, 11, child, 0);
        let eng2 = Arc::clone(eng);
        let handle = std::thread::Builder::new()
            .name(format!("mc-{child}"))
            .stack_size(256 * 1024)
            .spawn(move || model_thread(eng2, child, body))
            .expect("spawn model OS thread");
        st.os_handles.push(handle);
        child
    })
}

pub(crate) fn join_model(target: Tid, loc: &'static Location<'static>) {
    with_ctx(|eng, tid| {
        let mut st = schedule_point(eng, tid);
        let site = Site::of(loc);
        loop {
            if matches!(st.threads[target].run, Run::Finished) {
                let tclock = st.threads[target].clock.clone();
                st.threads[tid].clock.join(&tclock);
                st.threads[tid].clock.bump(tid);
                st.fold_op(tid, 12, target, 0);
                return;
            }
            st = block_self(eng, st, tid, Run::BlockedJoin(target), site);
        }
    })
}

fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The OS-thread body wrapping one model thread: install the context,
/// wait for the first baton grant, run, and tear down through the
/// engine whatever way the body ended.
pub(crate) fn model_thread(eng: Arc<Engine>, tid: Tid, body: Box<dyn FnOnce() + Send>) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&eng), tid)));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let st = eng.lock();
        drop(wait_running(&eng, st, tid));
        body();
    }));
    let clean = match result {
        Ok(()) => true,
        Err(p) if p.downcast_ref::<Abort>().is_some() => false,
        Err(p) => {
            let mut st = eng.lock();
            fail(&mut st, FailureKind::Panic { thread: tid, message: payload_msg(&*p) });
            false
        }
    };
    let mut st = eng.lock();
    st.threads[tid].run = Run::Finished;
    st.threads[tid].clock.bump(tid);
    st.live -= 1;
    if st.active == Some(tid) {
        st.active = None;
    }
    if st.live == 0 {
        st.done = true;
    } else if clean && !st.aborting && st.active.is_none() {
        pick_next(&mut st);
    }
    drop(st);
    eng.wake_all();
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Driver-side: register the root thread (tid 0) and grant it the
/// baton. Called once per execution before spawning the root.
pub(crate) fn install_root(eng: &Engine) {
    let mut st = eng.lock();
    let mut clock = VClock::default();
    clock.bump(0);
    st.threads.push(ThreadSt::new(clock, Vec::new()));
    st.live = 1;
    st.threads[0].run = Run::Running;
    st.active = Some(0);
    st.last_running = Some(0);
}
