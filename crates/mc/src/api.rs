//! The shim trait family: the sync surface a ported structure is
//! allowed to use.
//!
//! A structure that wants model-checking coverage becomes generic over
//! [`Shims`] instead of naming `std::sync` types directly. Production
//! code instantiates it with [`crate::StdShims`] — every method is an
//! `#[inline(always)]` delegation to the `std` primitive, so the
//! monomorphized result is byte-for-byte the direct code (the bench
//! floors in ci.sh are the proof). Model tests instantiate
//! [`crate::McShims`], which routes every access through the
//! cooperative scheduler and the happens-before checker.
//!
//! The surface is deliberately the *subset* the ported structures
//! need, not all of `std::sync` — a smaller surface is easier to give
//! faithful model semantics.

use std::ops::DerefMut;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Shim for `std::sync::atomic::AtomicU64`.
pub trait AtomicU64Api: Send + Sync + 'static {
    /// New cell holding `v`.
    #[track_caller]
    fn new(v: u64) -> Self;
    /// Atomic load with the declared ordering.
    #[track_caller]
    fn load(&self, order: Ordering) -> u64;
    /// Atomic store with the declared ordering.
    #[track_caller]
    fn store(&self, v: u64, order: Ordering);
    /// Atomic add; returns the previous value.
    #[track_caller]
    fn fetch_add(&self, v: u64, order: Ordering) -> u64;
    /// Atomic max; returns the previous value.
    #[track_caller]
    fn fetch_max(&self, v: u64, order: Ordering) -> u64;
    /// Atomic min; returns the previous value.
    #[track_caller]
    fn fetch_min(&self, v: u64, order: Ordering) -> u64;
}

/// Shim for `std::sync::atomic::AtomicI64`.
pub trait AtomicI64Api: Send + Sync + 'static {
    /// New cell holding `v`.
    #[track_caller]
    fn new(v: i64) -> Self;
    /// Atomic load with the declared ordering.
    #[track_caller]
    fn load(&self, order: Ordering) -> i64;
    /// Atomic store with the declared ordering.
    #[track_caller]
    fn store(&self, v: i64, order: Ordering);
    /// Atomic add; returns the previous value.
    #[track_caller]
    fn fetch_add(&self, v: i64, order: Ordering) -> i64;
}

/// Shim for `std::sync::atomic::AtomicUsize`.
pub trait AtomicUsizeApi: Send + Sync + 'static {
    /// New cell holding `v`.
    #[track_caller]
    fn new(v: usize) -> Self;
    /// Atomic load with the declared ordering.
    #[track_caller]
    fn load(&self, order: Ordering) -> usize;
    /// Atomic store with the declared ordering.
    #[track_caller]
    fn store(&self, v: usize, order: Ordering);
    /// Atomic add; returns the previous value.
    #[track_caller]
    fn fetch_add(&self, v: usize, order: Ordering) -> usize;
    /// Atomic subtract; returns the previous value.
    #[track_caller]
    fn fetch_sub(&self, v: usize, order: Ordering) -> usize;
}

/// Shim for `std::sync::atomic::AtomicBool`.
pub trait AtomicBoolApi: Send + Sync + 'static {
    /// New cell holding `v`.
    #[track_caller]
    fn new(v: bool) -> Self;
    /// Atomic load with the declared ordering.
    #[track_caller]
    fn load(&self, order: Ordering) -> bool;
    /// Atomic store with the declared ordering.
    #[track_caller]
    fn store(&self, v: bool, order: Ordering);
}

/// Shim for `std::sync::Mutex`.
///
/// Only `lock_clean` (the poison-tolerant lock the daemon code uses —
/// recover the guard from a poisoned mutex instead of cascading the
/// panic) is exposed: under the model there is no poisoning, and
/// exposing plain `lock().unwrap()` would let ported code reintroduce
/// the cascade-kill bug PR 5 fixed.
pub trait MutexApi<T: Send>: Send + Sync + 'static {
    /// The guard type; derefs to the protected value.
    type Guard<'a>: DerefMut<Target = T>
    where
        Self: 'a,
        T: 'a;
    /// New mutex around `t`.
    #[track_caller]
    fn new(t: T) -> Self;
    /// Lock, recovering from poisoning (std) / never poisoned (mc).
    #[track_caller]
    fn lock_clean(&self) -> Self::Guard<'_>;
}

/// Shim for `std::sync::Condvar`. Waits and notifies go through
/// [`Shims::cv_wait_timeout`] / [`Shims::cv_notify_all`] because the
/// mc implementation needs engine context the condvar alone lacks.
pub trait CondvarApi: Send + Sync + 'static {
    /// New condition variable.
    #[track_caller]
    fn new() -> Self;
}

/// A non-atomic shared cell for plain data the checker should treat as
/// race-checked (any unsynchronized conflicting pair is a bug, not a
/// value choice). Under `StdShims` this is a safe mutex-backed cell;
/// models are the only users, so it is never on a production hot path.
pub trait DataApi<T: Copy + Send>: Send + Sync + 'static {
    /// New cell holding `v`.
    #[track_caller]
    fn new(v: T) -> Self;
    /// Read the value (a checked plain read under mc).
    #[track_caller]
    fn get(&self) -> T;
    /// Overwrite the value (a checked plain write under mc).
    #[track_caller]
    fn set(&self, v: T);
}

/// Shim for `std::thread::JoinHandle<()>`.
pub trait JoinApi {
    /// Join the thread; propagates model aborts under mc.
    #[track_caller]
    fn join(self);
}

/// The full shim family. See the module docs; production code uses
/// `StdShims`, model tests use `McShims`.
pub trait Shims: Sized + Send + Sync + 'static {
    /// `AtomicU64` shim.
    type AtomicU64: AtomicU64Api;
    /// `AtomicI64` shim.
    type AtomicI64: AtomicI64Api;
    /// `AtomicUsize` shim.
    type AtomicUsize: AtomicUsizeApi;
    /// `AtomicBool` shim.
    type AtomicBool: AtomicBoolApi;
    /// `Mutex` shim.
    type Mutex<T: Send + 'static>: MutexApi<T>;
    /// `Condvar` shim.
    type Condvar: CondvarApi;
    /// Race-checked plain cell.
    type Data<T: Copy + Send + 'static>: DataApi<T>;
    /// Thread join handle.
    type JoinHandle: JoinApi;

    /// Spawn a thread (a model thread under mc).
    #[track_caller]
    fn spawn<F: FnOnce() + Send + 'static>(f: F) -> Self::JoinHandle;

    /// A small dense per-thread ordinal (0, 1, 2, …) stable for the
    /// thread's lifetime. Ported code uses it for shard pinning; under
    /// mc it is the model thread id, so shard assignment is a
    /// deterministic function of the schedule.
    #[track_caller]
    fn thread_ordinal() -> usize;

    /// Cooperative yield: a scheduling point under mc, a
    /// `std::thread::yield_now` otherwise.
    #[track_caller]
    fn yield_now();

    /// Wait on `cv` with `guard`'s mutex released, until notified or
    /// timed out. Returns the reacquired guard and whether the wait
    /// timed out. Under mc the timeout fires only when every live
    /// thread is blocked (the deterministic stand-in for "enough real
    /// time passed"), which also makes it the deadlock-vs-timeout
    /// discriminator.
    #[track_caller]
    fn cv_wait_timeout<'a, T: Send + 'static>(
        cv: &Self::Condvar,
        guard: <Self::Mutex<T> as MutexApi<T>>::Guard<'a>,
        timeout: Duration,
    ) -> (<Self::Mutex<T> as MutexApi<T>>::Guard<'a>, bool)
    where
        Self::Mutex<T>: 'a;

    /// Wake all waiters on `cv`.
    #[track_caller]
    fn cv_notify_all(cv: &Self::Condvar);
}
