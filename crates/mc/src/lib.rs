//! gcs-mc: a hand-rolled, loom-style concurrency model checker.
//!
//! The protocol layer of this repo is checked exhaustively (I/O
//! automata, 29 invariants, bounded exploration); this crate gives the
//! *memory-model* layer the same treatment. A structure becomes
//! generic over the [`Shims`] trait family instead of naming
//! `std::sync` types; production code instantiates [`StdShims`]
//! (zero-cost `#[inline(always)]` delegation, gated by the bench
//! floors) and model tests instantiate [`McShims`], which routes every
//! atomic access, mutex operation, condvar wait, spawn and join
//! through a cooperative scheduler:
//!
//! - **Exploration**: DFS over the decision tree with iterative
//!   preemption bounding (exhaust 0-preemption schedules, then 1, then
//!   2 — CHESS-style), plus seeded random sampling beyond the bound.
//! - **Replay**: every multi-option decision is one byte; the byte
//!   string is the schedule, every failure ships one, and
//!   [`Checker::replay`] reruns it deterministically.
//! - **Happens-before checking**: vector clocks over spawn/join,
//!   mutex hand-off, and release→acquire edges per the *declared*
//!   `Ordering`; weak loads may read stale-but-coherent stores (a
//!   scheduling decision); plain [`DataApi`] accesses are race-checked
//!   with file:line on both sides; an `Acquire` load that observes a
//!   non-`Release` store is reported as a vacuous acquire.
//!
//! See docs/CONCURRENCY.md for the memory model in prose, how to write
//! a model, and the table tying each ported structure's `// ordering:`
//! comments to its model.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod api;
mod checker;
mod clock;
mod engine;
mod report;
mod sched;
mod shim_mc;
mod shim_std;

pub use api::{
    AtomicBoolApi, AtomicI64Api, AtomicU64Api, AtomicUsizeApi, CondvarApi, DataApi, JoinApi,
    MutexApi, Shims,
};
pub use checker::Checker;
pub use report::{Failure, FailureKind, Report, Site};
pub use sched::Schedule;
pub use shim_mc::{
    McAtomicBool, McAtomicI64, McAtomicU64, McAtomicUsize, McCondvar, McData, McJoinHandle,
    McMutex, McMutexGuard, McShims,
};
pub use shim_std::{StdData, StdShims};

/// True while the calling thread is a model thread inside
/// [`Checker::check`] — lets shared test helpers branch.
pub fn in_model() -> bool {
    engine::in_model()
}
