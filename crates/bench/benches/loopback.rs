//! Loopback TCP cluster benchmarks: end-to-end delivery throughput of
//! the real transport stack (binary codec + sockets + node runtime),
//! measured two ways — direct submission into a node's event loop, and
//! the full TCP client protocol (`Submit`/`Deliver` frames) driven by
//! the closed-loop load generator.
//!
//! Throughput here is protocol-paced: a value is delivered only after
//! its label has been seen safe, i.e. after two full token rotations, so
//! these numbers measure the ring and the transport together, not the
//! codec alone.

use criterion::{criterion_group, criterion_main, Criterion};
use gcs_model::{ProcId, Value};
use gcs_net::cluster::{ClusterConfig, LoopbackCluster};
use gcs_net::load::{run_load, LoadConfig, LoadMode};
use std::cell::Cell;
use std::time::Duration;

const BATCH: u64 = 100;

fn bench_direct_submit(c: &mut Criterion) {
    let cluster = LoopbackCluster::start(ClusterConfig::patient(3)).expect("bind loopback");
    // Values must be distinct across iterations; hand each batch its own
    // disjoint range and wait for the cumulative delivery count.
    let next = Cell::new(1u64);
    let mut g = c.benchmark_group("loopback_tcp");
    g.sample_size(10);
    g.bench_function("deliver_100_direct", |b| {
        b.iter(|| {
            let base = next.get();
            next.set(base + BATCH);
            for i in 0..BATCH {
                cluster.submit(ProcId((i % 3) as u32), Value::from_u64(base + i));
            }
            let target = (base - 1 + BATCH) as usize;
            assert!(
                cluster.await_deliveries(target, Duration::from_secs(60)),
                "deliveries stalled before {target}"
            );
        })
    });
    g.finish();
    cluster.stop();
}

fn bench_tcp_client(c: &mut Criterion) {
    let cluster = LoopbackCluster::start(ClusterConfig::patient(3)).expect("bind loopback");
    let addr = cluster.addr(ProcId(0));
    let next = Cell::new(1u64);
    let mut g = c.benchmark_group("loopback_tcp");
    g.sample_size(10);
    g.bench_function("client_closed_loop_100", |b| {
        b.iter(|| {
            let base = next.get();
            next.set(base + BATCH);
            let report = run_load(
                addr,
                &LoadConfig {
                    ops: BATCH,
                    value_base: base,
                    mode: LoadMode::Closed { window: 16 },
                    idle_timeout: Duration::from_secs(30),
                    warmup: 0,
                },
            )
            .expect("client connects");
            assert_eq!(report.delivered, BATCH, "client lost operations");
        })
    });
    g.finish();
    cluster.stop();
}

criterion_group!(benches, bench_direct_submit, bench_tcp_client);
criterion_main!(benches);
