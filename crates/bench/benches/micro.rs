//! Component micro-benchmarks: scheduler step rate of the abstract
//! composed system, simulated-network event throughput, token-ring
//! end-to-end message throughput, invariant-suite evaluation cost, and
//! trace-checker throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcs_bench::{abstract_system, run_abstract, run_stack};
use gcs_core::adversary::SystemAdversary;
use gcs_core::derived::DerivedState;
use gcs_core::invariants::all_invariants;
use gcs_core::system::SysState;
use gcs_core::to_trace::check_to_trace;
use gcs_ioa::Runner;
use gcs_model::ProcId;
use gcs_vsimpl::{Stack, StackConfig};

fn bench_abstract_steps(c: &mut Criterion) {
    let mut g = c.benchmark_group("abstract_scheduler_steps");
    for n in [3u32, 5] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| run_abstract(n, 500, 7))
        });
    }
    g.finish();
}

fn bench_stack_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("token_ring_stack");
    g.sample_size(10);
    for n in [3u32, 5, 9] {
        g.bench_with_input(BenchmarkId::new("deliver_30_msgs", n), &n, |b, &n| {
            b.iter(|| run_stack(n, 30, 11))
        });
    }
    g.finish();
}

/// A mid-execution state of the composed system, used as the fixture for
/// the invariant and derived-state benchmarks.
fn mid_execution_state() -> SysState {
    let sys = abstract_system(3);
    let mut runner = Runner::new(sys, SystemAdversary::default(), 3);
    let exec = runner.run(600).expect("no invariants");
    exec.final_state().clone()
}

fn bench_invariant_suite(c: &mut Criterion) {
    let state = mid_execution_state();
    let checks = all_invariants();
    c.bench_function("invariant_suite_one_state", |b| {
        b.iter(|| {
            // One shared snapshot serves the whole suite.
            let d = DerivedState::new(&state);
            let mut bad = 0;
            for (_, check) in &checks {
                if check(&state, &d).is_err() {
                    bad += 1;
                }
            }
            criterion::black_box(bad)
        })
    });
    // And the abstraction function alone.
    c.bench_function("simulation_abstraction_one_state", |b| {
        b.iter(|| criterion::black_box(gcs_core::simulation::abstraction(&state).queue.len()))
    });
}

fn bench_derived_state(c: &mut Criterion) {
    let state = mid_execution_state();
    c.bench_function("derived_state_snapshot", |b| {
        b.iter(|| criterion::black_box(DerivedState::new(&state).entries.len()))
    });
}

fn bench_checkers(c: &mut Criterion) {
    // Fixture: a recorded implementation trace.
    let mut stack = Stack::new(StackConfig::standard(3, 5, 5));
    let pi = stack.config().pi;
    for i in 0..50u64 {
        stack.schedule_bcast(4 * pi + i * 10, ProcId((i % 3) as u32));
    }
    stack.run_until(4 * pi + 500 + 60 * pi);
    let to_events = stack.to_obs().untimed();
    let vs_actions = stack.vs_actions();
    c.bench_function("to_trace_checker", |b| {
        b.iter(|| criterion::black_box(check_to_trace(&to_events).brcvs))
    });
    c.bench_function("cause_checker", |b| {
        b.iter(|| {
            criterion::black_box(
                gcs_core::cause::check_trace(&vs_actions, &ProcId::range(3)).gprcv_checked,
            )
        })
    });
}

fn bench_netsim_events(c: &mut Criterion) {
    c.bench_function("netsim_50msg_stack_events", |b| {
        b.iter(|| {
            let mut stack = Stack::new(StackConfig::standard(4, 5, 23));
            let pi = stack.config().pi;
            for i in 0..50u64 {
                stack.schedule_bcast(4 * pi + i * 5, ProcId((i % 4) as u32));
            }
            criterion::black_box(stack.run_until(4 * pi + 250 + 40 * pi))
        })
    });
}

fn bench_obs_overhead(c: &mut Criterion) {
    use gcs_obs::{EventKind, Obs};
    let obs = Obs::new();
    // Pre-resolved handles, as the transport hot paths hold them.
    let counter = obs.registry.counter_labeled("bench_frames_total", &[("node", "0")]);
    let hist = obs.registry.histogram("bench_latency_us");
    let mut g = c.benchmark_group("obs_overhead");
    // Registry off: the bare hot-path work (frame bookkeeping stand-in).
    let mut x = 0u64;
    g.bench_function("frame_path_bare", |b| {
        b.iter(|| {
            x = x.wrapping_add(1);
            criterion::black_box(x)
        })
    });
    // Registry on: what one instrumented frame costs — a counter bump
    // plus a structured trace event.
    g.bench_function("frame_path_instrumented", |b| {
        b.iter(|| {
            counter.inc();
            obs.trace.record(EventKind::Send { from: 0, to: 1 });
        })
    });
    g.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    g.bench_function("histogram_record", |b| {
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            hist.record(v >> 40);
        })
    });
    g.bench_function("trace_record", |b| {
        b.iter(|| obs.trace.record(EventKind::Recv { node: 0, from: 1 }))
    });
    // Cold-path lookup cost (label resolution through the shard map).
    g.bench_function("counter_labeled_lookup", |b| {
        b.iter(|| {
            criterion::black_box(
                obs.registry.counter_labeled("bench_frames_total", &[("node", "0")]).get(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_abstract_steps,
    bench_stack_throughput,
    bench_invariant_suite,
    bench_derived_state,
    bench_checkers,
    bench_netsim_events,
    bench_obs_overhead
);
criterion_main!(benches);
