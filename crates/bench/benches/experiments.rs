//! One Criterion benchmark per experiment of the reproduction index
//! (E1–E14). Each times the reduced (`quick`) variant of the same code
//! the `gcs-harness` binaries run, so regressions in any layer of the
//! stack — simulator, protocol, algorithm, or checkers — show up here.

use criterion::{criterion_group, criterion_main, Criterion};
use gcs_harness::experiments;

macro_rules! exp_bench {
    ($fn_name:ident, $module:ident, $label:literal) => {
        fn $fn_name(c: &mut Criterion) {
            let mut g = c.benchmark_group("experiments");
            g.sample_size(10);
            g.bench_function($label, |b| {
                b.iter(|| {
                    let tables = experiments::$module::run(true);
                    criterion::black_box(tables.len())
                })
            });
            g.finish();
        }
    };
}

exp_bench!(bench_e1, e01, "e1_to_conformance");
exp_bench!(bench_e2, e02, "e2_to_bounds");
exp_bench!(bench_e3, e03, "e3_vs_conformance");
exp_bench!(bench_e4, e04, "e4_vs_bounds");
exp_bench!(bench_e5, e05, "e5_simulation");
exp_bench!(bench_e6, e06, "e6_invariants");
exp_bench!(bench_e7, e07, "e7_recovery");
exp_bench!(bench_e8, e08, "e8_weakvs");
exp_bench!(bench_e9, e09, "e9_gap_ablation");
exp_bench!(bench_e10, e10, "e10_membership");
exp_bench!(bench_e11, e11, "e11_quorum");
exp_bench!(bench_e12, e12, "e12_seqmem");
exp_bench!(bench_e13, e13, "e13_exchange_cost");
exp_bench!(bench_e14, e14, "e14_baseline");

criterion_group!(
    benches, bench_e1, bench_e2, bench_e3, bench_e4, bench_e5, bench_e6, bench_e7, bench_e8,
    bench_e9, bench_e10, bench_e11, bench_e12, bench_e13, bench_e14
);
criterion_main!(benches);
