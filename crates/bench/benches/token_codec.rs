//! Wire-codec micro-benchmarks for the batched token: encode and decode
//! cost of a `Token` frame as the entry batch grows from a single
//! message to a full pipeline rotation's worth. The per-message cost
//! should fall sharply with batch size — that amortization is the whole
//! premise of the batched ring — so a regression here shows up long
//! before it is visible in the end-to-end loopback numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcs_core::msg::AppMsg;
use gcs_model::{Label, ProcId, Value, View, ViewId};
use gcs_net::codec::{decode_payload, encode_payload_into, Frame};
use gcs_vsimpl::{Token, TokenMsg, Wire};

const BATCH_SIZES: [usize; 4] = [1, 16, 256, 4096];

/// A mid-rotation token carrying `batch` freshly sequenced entries, the
/// shape a member sees on the hot path of a loaded ring.
fn token_with_batch(batch: usize) -> Frame {
    let view = View::new(ViewId::new(3, ProcId(0)), ProcId::range(5));
    let mut t = Token::new(&view);
    t.round = 42;
    t.seq_start = 10_000;
    t.acked = 9_000;
    for (p, d) in t.delivered.iter_mut() {
        *d = 9_500 + p.0 as u64;
    }
    for i in 0..batch {
        let l = Label::new(view.id, t.seq_start + i as u64, ProcId((i % 5) as u32));
        t.entries.push(TokenMsg {
            src: ProcId((i % 5) as u32),
            mid: i as u64,
            msg: AppMsg::Val(l, Value::from_u64(i as u64)),
        });
    }
    Frame::Peer(Wire::Token(Box::new(t)))
}

fn bench_token_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("token_codec/encode");
    for batch in BATCH_SIZES {
        let frame = token_with_batch(batch);
        let mut buf = Vec::with_capacity(1 << 20);
        g.bench_with_input(BenchmarkId::from_parameter(batch), &frame, |b, frame| {
            b.iter(|| {
                // Reuse the buffer: the hot send path encodes into the
                // writer's scratch Vec, never a fresh allocation.
                buf.clear();
                encode_payload_into(&mut buf, frame);
                criterion::black_box(buf.len())
            })
        });
    }
    g.finish();
}

fn bench_token_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("token_codec/decode");
    for batch in BATCH_SIZES {
        let frame = token_with_batch(batch);
        let mut bytes = Vec::new();
        encode_payload_into(&mut bytes, &frame);
        g.bench_with_input(BenchmarkId::from_parameter(batch), &bytes, |b, bytes| {
            b.iter(|| criterion::black_box(decode_payload(bytes).expect("valid frame")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_token_encode, bench_token_decode);
criterion_main!(benches);
