//! Benchmark support: shared fixtures for the Criterion benches.
//!
//! The benches live in `benches/`:
//!
//! - `experiments` — one Criterion benchmark per experiment of the
//!   reproduction index (E1–E14), timing the reduced (`--quick`) variant
//!   of exactly the code the harness binaries run;
//! - `micro` — component micro-benchmarks: abstract scheduler steps,
//!   network-simulation event throughput, token-ring message throughput,
//!   invariant-suite evaluation cost, and checker throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gcs_core::adversary::SystemAdversary;
use gcs_core::system::VsToToSystem;
use gcs_ioa::Runner;
use gcs_model::{Majority, ProcId, Time};
use gcs_vsimpl::{Stack, StackConfig};
use std::sync::Arc;

/// Builds the standard abstract composed system over `n` processors with
/// majority quorums.
pub fn abstract_system(n: u32) -> VsToToSystem {
    let procs = ProcId::range(n);
    VsToToSystem::new(procs.clone(), procs, Arc::new(Majority::new(n as usize)))
}

/// Runs `steps` scheduler steps of the abstract system and returns the
/// number of recorded actions (for throughput reporting).
pub fn run_abstract(n: u32, steps: usize, seed: u64) -> usize {
    let mut runner = Runner::new(abstract_system(n), SystemAdversary::default(), seed);
    runner.run(steps).expect("no invariants installed").actions().len()
}

/// Runs a stable implementation-stack workload and returns the total
/// number of client deliveries.
pub fn run_stack(n: u32, msgs: usize, seed: u64) -> usize {
    let mut stack = Stack::new(StackConfig::standard(n, 5, seed));
    let pi = stack.config().pi;
    for i in 0..msgs {
        stack.schedule_bcast(4 * pi + i as Time * 10, ProcId(i as u32 % n));
    }
    stack.run_until(4 * pi + msgs as Time * 10 + 60 * pi);
    (0..n).map(|i| stack.delivered(ProcId(i)).len()).sum()
}

#[cfg(test)]
mod tests {
    #[test]
    fn fixtures_do_work() {
        assert!(super::run_abstract(3, 200, 1) > 0);
        assert_eq!(super::run_stack(3, 5, 2), 15);
    }
}
