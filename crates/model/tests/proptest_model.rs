//! Property-based tests of the model layer: quorum intersection (the
//! property the whole primary-view mechanism rests on), failure-script
//! algebra, and view/label ordering laws.

use gcs_model::failure::FailureScript;
use gcs_model::{FailureMap, Label, Majority, ProcId, QuorumSystem, View, ViewId, Weighted};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_set(n: u32) -> impl Strategy<Value = BTreeSet<ProcId>> {
    prop::collection::btree_set((0..n).prop_map(ProcId), 0..=n as usize)
}

proptest! {
    /// Any two majority quorums intersect — so two disjoint views can
    /// never both be primary.
    #[test]
    fn majority_quorums_intersect(
        n in 1usize..=9,
        a in arb_set(9),
        b in arb_set(9),
    ) {
        let q = Majority::new(n);
        let a: BTreeSet<ProcId> = a.into_iter().filter(|p| (p.0 as usize) < n).collect();
        let b: BTreeSet<ProcId> = b.into_iter().filter(|p| (p.0 as usize) < n).collect();
        if q.is_quorum(&a) && q.is_quorum(&b) {
            prop_assert!(!a.is_disjoint(&b), "disjoint majorities of {n}: {a:?} {b:?}");
        }
    }

    /// Weighted quorums (strict majority of total weight) also pairwise
    /// intersect, for any weight assignment.
    #[test]
    fn weighted_quorums_intersect(
        weights in prop::collection::vec(0u64..5, 1..8),
        a in arb_set(8),
        b in arb_set(8),
    ) {
        let total: u64 = weights.iter().sum();
        prop_assume!(total > 0);
        let q = Weighted::new(
            weights.iter().enumerate().map(|(i, &w)| (ProcId(i as u32), w)),
        );
        let n = weights.len() as u32;
        let a: BTreeSet<ProcId> = a.into_iter().filter(|p| p.0 < n).collect();
        let b: BTreeSet<ProcId> = b.into_iter().filter(|p| p.0 < n).collect();
        if q.is_quorum(&a) && q.is_quorum(&b) {
            prop_assert!(!a.is_disjoint(&b), "disjoint weighted quorums: {a:?} {b:?}");
        }
    }

    /// Applying a partition script always yields a map that satisfies the
    /// stabilization hypothesis for each scripted group.
    #[test]
    fn partition_scripts_stabilize_their_groups(
        n in 2u32..=6,
        cut in 1u32..=5,
    ) {
        let cut = cut.min(n - 1);
        let ambient = ProcId::range(n);
        let left = ProcId::range(cut);
        let right: BTreeSet<ProcId> = ambient.difference(&left).copied().collect();
        let mut script = FailureScript::new();
        script.partition(7, &[left.clone(), right.clone()], &ambient);
        let mut fm = FailureMap::all_good();
        for ev in script.sorted_events() {
            fm.apply(&ev);
        }
        prop_assert!(fm.stabilized_for(&left, &ambient));
        prop_assert!(fm.stabilized_for(&right, &ambient));
        prop_assert!(!fm.stabilized_for(&ambient, &ambient));
    }

    /// Label order is lexicographic and total: any two distinct labels
    /// compare, and view dominates seqno dominates origin.
    #[test]
    fn label_order_laws(
        e1 in 0u64..4, s1 in 1u64..4, o1 in 0u32..4,
        e2 in 0u64..4, s2 in 1u64..4, o2 in 0u32..4,
    ) {
        let l1 = Label::new(ViewId::new(e1, ProcId(0)), s1, ProcId(o1));
        let l2 = Label::new(ViewId::new(e2, ProcId(0)), s2, ProcId(o2));
        if e1 != e2 {
            prop_assert_eq!(l1 < l2, e1 < e2);
        } else if s1 != s2 {
            prop_assert_eq!(l1 < l2, s1 < s2);
        } else {
            prop_assert_eq!(l1 < l2, o1 < o2);
        }
    }

    /// Ring successors visit every member exactly once per lap.
    #[test]
    fn ring_traversal_is_a_cycle(members in prop::collection::btree_set(0u32..10, 1..8)) {
        let set: BTreeSet<ProcId> = members.iter().map(|&i| ProcId(i)).collect();
        let v = View::new(ViewId::new(1, ProcId(0)), set.clone());
        let start = v.leader().expect("nonempty");
        let mut seen = vec![start];
        let mut cur = start;
        for _ in 1..set.len() {
            cur = v.ring_successor(cur).expect("member");
            seen.push(cur);
        }
        prop_assert_eq!(v.ring_successor(cur), Some(start), "lap must close");
        let distinct: BTreeSet<ProcId> = seen.iter().copied().collect();
        prop_assert_eq!(distinct, set);
    }
}
