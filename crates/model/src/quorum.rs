//! Quorum systems (Section 5).
//!
//! The `VStoTO` algorithm fixes a set 𝒬 of quorums, pairwise intersecting,
//! and calls a view *primary* when its membership contains a quorum. The
//! paper notes that 𝒬 "need not necessarily be precomputed, for example, we
//! can define 𝒬 to be the set of majorities"; this module provides the
//! majority system, explicit quorum lists, and weighted-vote systems.

use crate::ProcId;
use std::collections::BTreeSet;
use std::fmt;

/// A quorum system over the ambient processor set.
///
/// Implementations must guarantee pairwise intersection: any two quorums
/// share at least one processor. This is what makes the `highprimary`
/// information flow of the algorithm work (Lemma 6.18 picks an element of
/// `w.set ∩ v.set`).
pub trait QuorumSystem: fmt::Debug + Send + Sync {
    /// Whether `set` contains a quorum (the primary-view test:
    /// *∃Q ∈ 𝒬 : Q ⊆ set*).
    fn is_quorum(&self, set: &BTreeSet<ProcId>) -> bool;

    /// A short human-readable name for experiment tables.
    fn name(&self) -> &str;
}

/// The majority quorum system over `n` processors: any set with more than
/// `n/2` members contains a quorum.
///
/// # Example
///
/// ```
/// use gcs_model::{Majority, ProcId, QuorumSystem};
/// let q = Majority::new(5);
/// assert!(q.is_quorum(&ProcId::range(3)));
/// assert!(!q.is_quorum(&ProcId::range(2)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Majority {
    n: usize,
}

impl Majority {
    /// Creates the majority system for an ambient set of `n` processors.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "majority quorum system needs at least one processor");
        Majority { n }
    }

    /// The ambient set size.
    pub fn ambient_size(&self) -> usize {
        self.n
    }
}

impl QuorumSystem for Majority {
    fn is_quorum(&self, set: &BTreeSet<ProcId>) -> bool {
        2 * set.len() > self.n
    }

    fn name(&self) -> &str {
        "majority"
    }
}

/// An error constructing an explicit quorum system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvalidQuorumError {
    /// Two listed quorums do not intersect; they are returned for diagnosis.
    DisjointPair(BTreeSet<ProcId>, BTreeSet<ProcId>),
    /// The quorum list is empty, so no view could ever be primary —
    /// almost certainly a configuration mistake.
    Empty,
}

impl fmt::Display for InvalidQuorumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidQuorumError::DisjointPair(a, b) => {
                write!(f, "quorums {a:?} and {b:?} do not intersect")
            }
            InvalidQuorumError::Empty => write!(f, "quorum list is empty"),
        }
    }
}

impl std::error::Error for InvalidQuorumError {}

/// An explicitly enumerated quorum system.
///
/// # Example
///
/// ```
/// use gcs_model::{Explicit, ProcId, QuorumSystem};
/// use std::collections::BTreeSet;
/// let q = Explicit::new(vec![
///     [ProcId(0), ProcId(1)].into_iter().collect(),
///     [ProcId(0), ProcId(2)].into_iter().collect(),
/// ])?;
/// assert!(q.is_quorum(&ProcId::range(2)));
/// assert!(!q.is_quorum(&[ProcId(1), ProcId(2)].into_iter().collect()));
/// # Ok::<(), gcs_model::quorum::InvalidQuorumError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Explicit {
    quorums: Vec<BTreeSet<ProcId>>,
}

impl Explicit {
    /// Creates an explicit quorum system, validating pairwise intersection.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidQuorumError`] if the list is empty or two quorums
    /// are disjoint.
    pub fn new(quorums: Vec<BTreeSet<ProcId>>) -> Result<Self, InvalidQuorumError> {
        if quorums.is_empty() {
            return Err(InvalidQuorumError::Empty);
        }
        for (i, a) in quorums.iter().enumerate() {
            for b in &quorums[i + 1..] {
                if a.is_disjoint(b) {
                    return Err(InvalidQuorumError::DisjointPair(a.clone(), b.clone()));
                }
                // A quorum disjoint from itself is empty.
            }
            if a.is_empty() {
                return Err(InvalidQuorumError::DisjointPair(a.clone(), a.clone()));
            }
        }
        Ok(Explicit { quorums })
    }

    /// The listed quorums.
    pub fn quorums(&self) -> &[BTreeSet<ProcId>] {
        &self.quorums
    }
}

impl QuorumSystem for Explicit {
    fn is_quorum(&self, set: &BTreeSet<ProcId>) -> bool {
        self.quorums.iter().any(|q| q.is_subset(set))
    }

    fn name(&self) -> &str {
        "explicit"
    }
}

/// A weighted-vote quorum system: a set is a quorum when its total weight
/// strictly exceeds half the total weight of all processors.
///
/// # Example
///
/// ```
/// use gcs_model::{ProcId, QuorumSystem, Weighted};
/// // p0 carries 3 votes out of 5: it is a quorum by itself.
/// let q = Weighted::new([(ProcId(0), 3), (ProcId(1), 1), (ProcId(2), 1)]);
/// assert!(q.is_quorum(&[ProcId(0)].into_iter().collect()));
/// assert!(!q.is_quorum(&[ProcId(1), ProcId(2)].into_iter().collect()));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Weighted {
    weights: std::collections::BTreeMap<ProcId, u64>,
    total: u64,
}

impl Weighted {
    /// Creates a weighted-vote system from per-processor weights.
    ///
    /// # Panics
    ///
    /// Panics if the total weight is zero.
    pub fn new(weights: impl IntoIterator<Item = (ProcId, u64)>) -> Self {
        let weights: std::collections::BTreeMap<ProcId, u64> = weights.into_iter().collect();
        let total: u64 = weights.values().sum();
        assert!(total > 0, "weighted quorum system needs positive total weight");
        Weighted { weights, total }
    }
}

impl QuorumSystem for Weighted {
    fn is_quorum(&self, set: &BTreeSet<ProcId>) -> bool {
        let w: u64 = set.iter().filter_map(|p| self.weights.get(p)).sum();
        2 * w > self.total
    }

    fn name(&self) -> &str {
        "weighted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> BTreeSet<ProcId> {
        ids.iter().map(|&i| ProcId(i)).collect()
    }

    #[test]
    fn majority_threshold_is_strict() {
        let q = Majority::new(4);
        assert!(!q.is_quorum(&set(&[0, 1])));
        assert!(q.is_quorum(&set(&[0, 1, 2])));
        let q = Majority::new(1);
        assert!(q.is_quorum(&set(&[0])));
        assert!(!q.is_quorum(&set(&[])));
    }

    #[test]
    fn any_two_majorities_intersect() {
        // Sanity: for n = 5 every pair of 3-subsets intersects, so the
        // primary views chosen by Majority can never be concurrent in
        // disjoint partitions.
        let q = Majority::new(5);
        let a = set(&[0, 1, 2]);
        let b = set(&[2, 3, 4]);
        assert!(q.is_quorum(&a) && q.is_quorum(&b));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn explicit_rejects_disjoint_quorums() {
        let err = Explicit::new(vec![set(&[0]), set(&[1])]).unwrap_err();
        assert!(matches!(err, InvalidQuorumError::DisjointPair(..)));
        assert!(Explicit::new(vec![]).is_err());
        assert!(Explicit::new(vec![set(&[])]).is_err());
    }

    #[test]
    fn explicit_subset_test() {
        let q = Explicit::new(vec![set(&[0, 1]), set(&[1, 2])]).unwrap();
        assert!(q.is_quorum(&set(&[0, 1, 3])));
        assert!(!q.is_quorum(&set(&[0, 2])));
    }

    #[test]
    fn weighted_counts_only_listed_members() {
        let q = Weighted::new([(ProcId(0), 2), (ProcId(1), 2)]);
        // p9 has no weight.
        assert!(!q.is_quorum(&set(&[9, 0])) || q.is_quorum(&set(&[0])));
        assert!(q.is_quorum(&set(&[0, 1])));
        assert!(!q.is_quorum(&set(&[0])));
    }
}
