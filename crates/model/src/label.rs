//! Message labels: *L = G × ℕ⁺ × P* (Figure 8).

use crate::{ProcId, ViewId};
use std::fmt;

/// A system-wide unique message label, *⟨id, seqno, origin⟩ ∈ L*.
///
/// The `VStoTO` algorithm assigns each submitted data value a label made of
/// the view identifier current at the submitting processor, a per-view
/// sequence number, and the processor identifier. Labels are ordered
/// lexicographically; this order is total because identifiers break ties,
/// and it is the order used by `fullorder` when a primary view arranges
/// leftover labels (Figure 8).
///
/// # Example
///
/// ```
/// use gcs_model::{Label, ProcId, ViewId};
/// let g = ViewId::new(1, ProcId(0));
/// let a = Label::new(g, 1, ProcId(2));
/// let b = Label::new(g, 2, ProcId(0));
/// assert!(a < b); // seqno dominates origin
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label {
    /// The view identifier current when the value was labelled (*l.id*).
    pub view: ViewId,
    /// The per-view sequence number, starting at 1 (*l.seqno*).
    pub seqno: u64,
    /// The processor where the value originated (*l.origin*).
    pub origin: ProcId,
}

impl Label {
    /// Creates a label.
    ///
    /// # Panics
    ///
    /// Panics if `seqno` is zero; sequence numbers are drawn from ℕ⁺.
    pub fn new(view: ViewId, seqno: u64, origin: ProcId) -> Self {
        assert!(seqno > 0, "label sequence numbers start at 1");
        Label { view, seqno, origin }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{},{},{}⟩", self.view, self.seqno, self.origin)
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_lexicographic_view_seqno_origin() {
        let g1 = ViewId::new(1, ProcId(0));
        let g2 = ViewId::new(2, ProcId(0));
        assert!(Label::new(g1, 9, ProcId(9)) < Label::new(g2, 1, ProcId(0)));
        assert!(Label::new(g1, 1, ProcId(9)) < Label::new(g1, 2, ProcId(0)));
        assert!(Label::new(g1, 1, ProcId(0)) < Label::new(g1, 1, ProcId(1)));
    }

    #[test]
    #[should_panic(expected = "sequence numbers start at 1")]
    fn zero_seqno_rejected() {
        let _ = Label::new(ViewId::initial(), 0, ProcId(0));
    }
}
