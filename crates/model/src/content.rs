//! [`ContentMap`]: the ⟨label, value⟩ store behind *content* in the
//! `VStoTO` processor state, keyed for the protocol's access pattern.
//!
//! A plain `BTreeMap<Label, Value>` pays one O(log *total*) tree walk
//! per label touch, where *total* is every message the processor has
//! ever seen. But the protocol's labels are anything but random: a
//! label is ⟨view, seqno, origin⟩ with `seqno` assigned densely from 1
//! within each ⟨view, origin⟩ stream. `ContentMap` exploits that shape
//! — per ⟨view, origin⟩ group it keeps a dense `Vec<Option<Value>>`
//! indexed by `seqno − 1`, so the common lookup is one small-tree walk
//! over the handful of live groups plus one vector index.
//!
//! Labels that arrive from the wire are untrusted, so density is never
//! assumed: a label whose seqno would leave more than [`DENSE_GAP`]
//! empty slots (or overflow `usize`, or be zero — expressible by
//! constructing `Label` literally) falls back to a sparse ordered map.
//! This bounds memory amplification per insert while keeping the hot
//! path allocation-tight.

use crate::ProcId;
use crate::{Label, Value, ViewId};
use std::collections::BTreeMap;
use std::fmt;

/// The largest run of empty slots a dense group vector may grow past
/// its current length for one insert. Labels beyond the gap go to the
/// sparse fallback, so an adversarial seqno cannot force a huge
/// allocation.
const DENSE_GAP: usize = 4096;

/// A map from [`Label`] to [`Value`] specialized for the protocol's
/// dense per-⟨view, origin⟩ seqno streams. Insert-only (like *content*
/// itself — Lemma 6.5 makes it a growing partial function).
///
/// Iteration order is *grouped* — by ⟨view, origin⟩, then seqno — not
/// the lexicographic [`Label`] order; use [`ContentMap::to_map`] when
/// label order matters (e.g. building a wire [`crate::Summary`]).
#[derive(Clone, Default)]
pub struct ContentMap {
    /// Dense storage: ⟨view, origin⟩ → values indexed by `seqno − 1`.
    dense: BTreeMap<(ViewId, ProcId), Vec<Option<Value>>>,
    /// Sparse fallback for labels that would blow the density bound.
    sparse: BTreeMap<Label, Value>,
    /// Number of present entries across both stores.
    len: usize,
}

impl ContentMap {
    /// An empty map.
    pub fn new() -> Self {
        ContentMap::default()
    }

    /// Number of ⟨label, value⟩ entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The dense slot index for a label, if the label is dense-eligible
    /// at all (seqno ≥ 1 and representable).
    fn slot(l: &Label) -> Option<usize> {
        usize::try_from(l.seqno.checked_sub(1)?).ok()
    }

    /// Inserts a binding, returning the previously bound value if any.
    pub fn insert(&mut self, l: Label, a: Value) -> Option<Value> {
        let key = (l.view, l.origin);
        let dense_idx = Self::slot(&l).filter(|&idx| {
            let cur = self.dense.get(&key).map_or(0, Vec::len);
            idx < cur || idx - cur <= DENSE_GAP
        });
        let old = match dense_idx {
            Some(idx) => {
                let vec = self.dense.entry(key).or_default();
                if idx >= vec.len() {
                    vec.resize(idx + 1, None);
                }
                let prior = vec[idx].replace(a);
                // The same label may have landed sparse earlier, when
                // the group vector was still short of it.
                match prior {
                    Some(p) => Some(p),
                    None if !self.sparse.is_empty() => self.sparse.remove(&l),
                    None => None,
                }
            }
            None => self.sparse.insert(l, a),
        };
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Looks up the value bound to a label.
    pub fn get(&self, l: &Label) -> Option<&Value> {
        if let Some(idx) = Self::slot(l) {
            if let Some(vec) = self.dense.get(&(l.view, l.origin)) {
                if let Some(slot) = vec.get(idx) {
                    if let Some(v) = slot.as_ref() {
                        return Some(v);
                    }
                }
            }
        }
        self.sparse.get(l)
    }

    /// Whether a label is bound.
    pub fn contains_key(&self, l: &Label) -> bool {
        self.get(l).is_some()
    }

    /// Iterates the entries in grouped order (⟨view, origin⟩ group,
    /// then seqno, then the sparse tail). Labels are reconstructed from
    /// the group key and slot, so they are yielded by value.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &Value)> {
        let dense = self.dense.iter().flat_map(|(&(view, origin), vec)| {
            vec.iter().enumerate().filter_map(move |(idx, slot)| {
                let a = slot.as_ref()?;
                Some((Label { view, seqno: idx as u64 + 1, origin }, a))
            })
        });
        dense.chain(self.sparse.iter().map(|(&l, a)| (l, a)))
    }

    /// Iterates the bound values in grouped order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.iter().map(|(_, a)| a)
    }

    /// Collects into a lexicographically ordered `BTreeMap`, the
    /// representation wire summaries use.
    pub fn to_map(&self) -> BTreeMap<Label, Value> {
        self.iter().map(|(l, a)| (l, a.clone())).collect()
    }

    /// Whether this map holds exactly the entries of `m`. The common
    /// caller is the state-exchange readiness test comparing a received
    /// summary's *con* against local *content*.
    pub fn eq_map(&self, m: &BTreeMap<Label, Value>) -> bool {
        self.len == m.len() && m.iter().all(|(l, a)| self.get(l) == Some(a))
    }
}

impl PartialEq for ContentMap {
    fn eq(&self, other: &Self) -> bool {
        // Two maps with the same entries may split dense/sparse
        // differently depending on insertion order, so compare contents,
        // not representation.
        self.len == other.len && self.iter().all(|(l, a)| other.get(&l) == Some(a))
    }
}

impl Eq for ContentMap {}

impl fmt::Debug for ContentMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.to_map()).finish()
    }
}

impl FromIterator<(Label, Value)> for ContentMap {
    fn from_iter<I: IntoIterator<Item = (Label, Value)>>(iter: I) -> Self {
        let mut m = ContentMap::new();
        for (l, a) in iter {
            m.insert(l, a);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(epoch: u64, seqno: u64, origin: u32) -> Label {
        Label::new(ViewId::new(epoch, ProcId(origin)), seqno, ProcId(origin))
    }

    #[test]
    fn insert_get_roundtrip_dense() {
        let mut m = ContentMap::new();
        for s in 1..=100u64 {
            assert_eq!(m.insert(l(1, s, 0), Value::from_u64(s)), None);
        }
        assert_eq!(m.len(), 100);
        for s in 1..=100u64 {
            assert_eq!(m.get(&l(1, s, 0)), Some(&Value::from_u64(s)));
        }
        assert!(!m.contains_key(&l(1, 101, 0)));
        assert!(!m.contains_key(&l(2, 1, 0)));
    }

    #[test]
    fn reinsert_returns_the_old_value_and_keeps_len() {
        let mut m = ContentMap::new();
        assert_eq!(m.insert(l(1, 3, 2), Value::from_u64(7)), None);
        assert_eq!(m.insert(l(1, 3, 2), Value::from_u64(8)), Some(Value::from_u64(7)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&l(1, 3, 2)), Some(&Value::from_u64(8)));
    }

    #[test]
    fn far_seqnos_fall_back_to_sparse_without_huge_allocation() {
        let mut m = ContentMap::new();
        let far = l(1, 1 << 40, 0);
        assert_eq!(m.insert(far, Value::from_u64(1)), None);
        assert_eq!(m.get(&far), Some(&Value::from_u64(1)));
        assert_eq!(m.len(), 1);
        // A later in-gap insert for the same group still works.
        m.insert(l(1, 1, 0), Value::from_u64(2));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&l(1, 1, 0)), Some(&Value::from_u64(2)));
    }

    #[test]
    fn zero_seqno_labels_are_storable_totally() {
        // `Label::new` rejects seqno 0, but the struct is constructible
        // literally; the map must stay total over it.
        let weird = Label { view: ViewId::new(1, ProcId(0)), seqno: 0, origin: ProcId(0) };
        let mut m = ContentMap::new();
        assert_eq!(m.insert(weird, Value::from_u64(9)), None);
        assert_eq!(m.get(&weird), Some(&Value::from_u64(9)));
    }

    #[test]
    fn equality_ignores_dense_sparse_split() {
        let far = l(1, DENSE_GAP as u64 + 100, 0);
        // m1: far label first (sparse), then the prefix (dense).
        let mut m1 = ContentMap::new();
        m1.insert(far, Value::from_u64(42));
        for s in 1..=8u64 {
            m1.insert(l(1, s, 0), Value::from_u64(s));
        }
        // m2: prefix first; far label still lands beyond the gap only
        // if the vec is short — with 8 slots it stays sparse too, so
        // force a representational difference via a fresh map built
        // from iteration order.
        let m2: ContentMap = m1.to_map().into_iter().collect();
        assert_eq!(m1, m2);
        assert_eq!(m1.len(), m2.len());
        assert!(m1.eq_map(&m2.to_map()));
    }

    #[test]
    fn to_map_is_label_ordered_and_complete() {
        let mut m = ContentMap::new();
        m.insert(l(2, 1, 1), Value::from_u64(3));
        m.insert(l(1, 2, 0), Value::from_u64(2));
        m.insert(l(1, 1, 0), Value::from_u64(1));
        let map = m.to_map();
        assert_eq!(map.len(), 3);
        let keys: Vec<Label> = map.keys().copied().collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert!(m.eq_map(&map));
        let mut smaller = map.clone();
        smaller.remove(&l(1, 1, 0));
        assert!(!m.eq_map(&smaller));
    }

    #[test]
    fn values_sees_every_entry() {
        let mut m = ContentMap::new();
        m.insert(l(1, 1, 0), Value::from_u64(10));
        m.insert(l(1, 1, 1), Value::from_u64(11));
        assert!(m.values().any(|v| *v == Value::from_u64(11)));
        assert_eq!(m.values().count(), 2);
    }
}
