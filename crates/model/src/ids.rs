//! Processor and view identifiers.

use std::collections::BTreeSet;
use std::fmt;

/// A processor identifier, an element of the totally ordered finite set *P*.
///
/// The paper fixes *P* once and for all (Section 3); here a `ProcId` is a
/// small integer and the ambient set *P* is carried explicitly by the
/// components that need it (e.g. the network simulator and the initial view).
///
/// # Example
///
/// ```
/// use gcs_model::ProcId;
/// let p = ProcId(2);
/// assert_eq!(p.to_string(), "p2");
/// assert!(ProcId(1) < ProcId(2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl ProcId {
    /// Returns the set `{p0, p1, …, p(n-1)}`, a convenient ambient *P*.
    ///
    /// ```
    /// use gcs_model::ProcId;
    /// let ps = ProcId::range(3);
    /// assert_eq!(ps.len(), 3);
    /// assert!(ps.contains(&ProcId(0)));
    /// ```
    pub fn range(n: u32) -> BTreeSet<ProcId> {
        (0..n).map(ProcId).collect()
    }

    /// The numeric index of this processor.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ProcId {
    fn from(i: u32) -> Self {
        ProcId(i)
    }
}

/// A view identifier, an element of the totally ordered set *⟨G, <_G, g₀⟩*.
///
/// View identifiers are ordered lexicographically by `(epoch, origin)`. This
/// is exactly the structure used by the Cristian–Schmuck membership protocol
/// (Section 8): "viewids … have a procid as low-order part and a stable
/// sequence number as high-order part", which makes identifiers unique
/// without coordination. The distinguished initial identifier *g₀* is
/// [`ViewId::initial`], the minimum of the order among identifiers the
/// system generates (all generated identifiers use `epoch ≥ 1`).
///
/// # Example
///
/// ```
/// use gcs_model::{ProcId, ViewId};
/// let g0 = ViewId::initial();
/// let g1 = ViewId::new(1, ProcId(4));
/// let g2 = ViewId::new(2, ProcId(0));
/// assert!(g0 < g1 && g1 < g2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ViewId {
    /// High-order part: a monotonically increasing epoch number.
    pub epoch: u64,
    /// Low-order part: the processor that coined the identifier
    /// (tie-breaker guaranteeing global uniqueness).
    pub origin: ProcId,
}

impl ViewId {
    /// Creates a view identifier from an epoch and the coining processor.
    pub fn new(epoch: u64, origin: ProcId) -> Self {
        ViewId { epoch, origin }
    }

    /// The distinguished initial view identifier *g₀*.
    ///
    /// `g₀` is minimal among all identifiers the membership service coins,
    /// because coined identifiers always use a strictly positive epoch.
    pub fn initial() -> Self {
        ViewId { epoch: 0, origin: ProcId(0) }
    }

    /// Returns the next identifier this processor would coin, strictly
    /// greater than `self` (and than every identifier with the same or a
    /// smaller epoch).
    pub fn successor(self, origin: ProcId) -> Self {
        ViewId { epoch: self.epoch + 1, origin }
    }
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}.{}", self.epoch, self.origin.0)
    }
}

impl fmt::Debug for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}.{}", self.epoch, self.origin.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_range_is_dense_and_sorted() {
        let ps = ProcId::range(4);
        let v: Vec<_> = ps.iter().copied().collect();
        assert_eq!(v, vec![ProcId(0), ProcId(1), ProcId(2), ProcId(3)]);
    }

    #[test]
    fn initial_viewid_is_minimal_among_coined() {
        let g0 = ViewId::initial();
        for epoch in 1..5 {
            for origin in 0..5 {
                assert!(g0 < ViewId::new(epoch, ProcId(origin)));
            }
        }
    }

    #[test]
    fn viewid_order_is_lexicographic() {
        assert!(ViewId::new(1, ProcId(9)) < ViewId::new(2, ProcId(0)));
        assert!(ViewId::new(2, ProcId(0)) < ViewId::new(2, ProcId(1)));
    }

    #[test]
    fn successor_is_strictly_greater() {
        let g = ViewId::new(3, ProcId(7));
        let s = g.successor(ProcId(0));
        assert!(s > g);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ProcId(3).to_string(), "p3");
        assert_eq!(ViewId::new(2, ProcId(1)).to_string(), "g2.1");
    }
}
