//! The good/bad/ugly failure-status model (Figure 4, Sections 3.2 and 7).
//!
//! Failure statuses are *inputs* to the specifications: the environment
//! declares each location and each directed pair of locations `good`, `bad`
//! or `ugly`, and the conditional performance properties only bite in
//! executions whose failure status stabilizes. This module provides the
//! status type, the evolving status map, timed failure events, and builders
//! for the partition scripts used throughout the experiments.

use crate::{ProcId, Time};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A failure status: the intended meaning (Section 3.2) is that a `good`
/// process takes enabled steps immediately and a `good` channel delivers
/// within δ; a `bad` process is stopped and a `bad` channel delivers
/// nothing; an `ugly` process or channel operates at nondeterministic speed
/// and may drop messages.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Status {
    /// Timely operation.
    #[default]
    Good,
    /// Complete stop / no delivery.
    Bad,
    /// Nondeterministic speed, possible loss.
    Ugly,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Status::Good => write!(f, "good"),
            Status::Bad => write!(f, "bad"),
            Status::Ugly => write!(f, "ugly"),
        }
    }
}

/// The subject of a failure-status action: a location *p* or a directed
/// pair *(p, q)*.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Subject {
    /// A processor location.
    Loc(ProcId),
    /// A directed channel from the first to the second processor.
    Link(ProcId, ProcId),
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subject::Loc(p) => write!(f, "{p}"),
            Subject::Link(p, q) => write!(f, "{p}→{q}"),
        }
    }
}

/// A timed failure-status input action, e.g. *bad_{p,q}* at time 40.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FailureEvent {
    /// When the status changes.
    pub time: Time,
    /// Which location or directed pair changes.
    pub subject: Subject,
    /// The new status.
    pub status: Status,
}

impl FailureEvent {
    /// Convenience constructor.
    pub fn new(time: Time, subject: Subject, status: Status) -> Self {
        FailureEvent { time, subject, status }
    }
}

/// The current failure status of every location and directed pair.
///
/// Following the paper, the status of a subject with no recorded action
/// defaults to `good`.
///
/// # Example
///
/// ```
/// use gcs_model::{FailureMap, ProcId, Status, Subject};
/// let mut fm = FailureMap::default();
/// assert_eq!(fm.link(ProcId(0), ProcId(1)), Status::Good);
/// fm.set(Subject::Link(ProcId(0), ProcId(1)), Status::Bad);
/// assert_eq!(fm.link(ProcId(0), ProcId(1)), Status::Bad);
/// assert_eq!(fm.link(ProcId(1), ProcId(0)), Status::Good); // directed
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FailureMap {
    locs: BTreeMap<ProcId, Status>,
    links: BTreeMap<(ProcId, ProcId), Status>,
}

impl FailureMap {
    /// A map in which everything is `good` (the initial condition).
    pub fn all_good() -> Self {
        FailureMap::default()
    }

    /// The status of location `p`.
    pub fn loc(&self, p: ProcId) -> Status {
        self.locs.get(&p).copied().unwrap_or_default()
    }

    /// The status of the directed pair `(p, q)`.
    pub fn link(&self, p: ProcId, q: ProcId) -> Status {
        self.links.get(&(p, q)).copied().unwrap_or_default()
    }

    /// Sets the status of a subject.
    pub fn set(&mut self, subject: Subject, status: Status) {
        match subject {
            Subject::Loc(p) => {
                self.locs.insert(p, status);
            }
            Subject::Link(p, q) => {
                self.links.insert((p, q), status);
            }
        }
    }

    /// Applies a failure event (ignoring its timestamp).
    pub fn apply(&mut self, ev: &FailureEvent) {
        self.set(ev.subject, ev.status);
    }

    /// Whether the map satisfies the stabilization hypothesis of
    /// `TO-property`/`VS-property` for the set `Q`: all locations in `Q`
    /// and all pairs within `Q` are good, and every pair with exactly one
    /// endpoint in `Q` is bad.
    pub fn stabilized_for(&self, q: &BTreeSet<ProcId>, ambient: &BTreeSet<ProcId>) -> bool {
        for &p in q {
            if self.loc(p) != Status::Good {
                return false;
            }
            for &r in q {
                if self.link(p, r) != Status::Good {
                    return false;
                }
            }
            for &o in ambient.difference(q) {
                if self.link(p, o) != Status::Bad || self.link(o, p) != Status::Bad {
                    return false;
                }
            }
        }
        true
    }
}

/// A timed failure script: a time-sorted list of failure events fed to the
/// network simulator and, with the same timestamps, into recorded traces so
/// the property checkers can locate stabilization points.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FailureScript {
    events: Vec<FailureEvent>,
}

impl FailureScript {
    /// An empty script: everything stays good forever.
    pub fn new() -> Self {
        FailureScript::default()
    }

    /// Adds a single event.
    pub fn push(&mut self, ev: FailureEvent) -> &mut Self {
        self.events.push(ev);
        self
    }

    /// Declares, at `time`, the partition described by `groups`: links
    /// within a group become good, links between different groups (and to
    /// or from processors in no group) become bad, and every processor in
    /// some group becomes good while processors in no group become bad.
    ///
    /// This is exactly the "consistently partitioned system" shape that the
    /// conditional properties talk about; after this instant the script is
    /// quiescent for each group, so `VS-property`/`TO-property` apply to
    /// each group that contains a quorum.
    ///
    /// # Panics
    ///
    /// Panics if the groups are not pairwise disjoint or not contained in
    /// `ambient`.
    pub fn partition(
        &mut self,
        time: Time,
        groups: &[BTreeSet<ProcId>],
        ambient: &BTreeSet<ProcId>,
    ) -> &mut Self {
        let mut seen = BTreeSet::new();
        for g in groups {
            for &p in g {
                assert!(ambient.contains(&p), "{p} not in ambient set");
                assert!(seen.insert(p), "{p} appears in two groups");
            }
        }
        let group_of = |p: ProcId| groups.iter().position(|g| g.contains(&p));
        for &p in ambient {
            let status = if group_of(p).is_some() { Status::Good } else { Status::Bad };
            self.push(FailureEvent::new(time, Subject::Loc(p), status));
            for &q in ambient {
                if p == q {
                    continue;
                }
                let st = match (group_of(p), group_of(q)) {
                    (Some(a), Some(b)) if a == b => Status::Good,
                    _ => Status::Bad,
                };
                self.push(FailureEvent::new(time, Subject::Link(p, q), st));
            }
        }
        self
    }

    /// Declares everything in `ambient` mutually connected and good at
    /// `time` (the one-group partition).
    pub fn heal(&mut self, time: Time, ambient: &BTreeSet<ProcId>) -> &mut Self {
        self.partition(time, std::slice::from_ref(ambient), ambient)
    }

    /// Marks a single processor bad at `time` (a crash without state loss).
    pub fn crash(&mut self, time: Time, p: ProcId) -> &mut Self {
        self.push(FailureEvent::new(time, Subject::Loc(p), Status::Bad))
    }

    /// Marks a single processor good at `time` (a recovery).
    pub fn recover(&mut self, time: Time, p: ProcId) -> &mut Self {
        self.push(FailureEvent::new(time, Subject::Loc(p), Status::Good))
    }

    /// Marks the directed links both ways between `p` and `q` with `status`.
    pub fn set_pair(&mut self, time: Time, p: ProcId, q: ProcId, status: Status) -> &mut Self {
        self.push(FailureEvent::new(time, Subject::Link(p, q), status));
        self.push(FailureEvent::new(time, Subject::Link(q, p), status))
    }

    /// The events sorted by time (stable for equal times). Scripts are
    /// almost always built in time order already, so the sort only runs
    /// when an out-of-order pair is actually present (a stable sort of a
    /// sorted list is the identity, so skipping it changes nothing).
    pub fn sorted_events(&self) -> Vec<FailureEvent> {
        let mut evs = self.events.clone();
        if evs.windows(2).any(|w| w[0].time > w[1].time) {
            evs.sort_by_key(|e| e.time);
        }
        evs
    }

    /// The raw events in insertion order.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// The time of the last event, or 0 for an empty script.
    pub fn last_time(&self) -> Time {
        self.events.iter().map(|e| e.time).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> BTreeSet<ProcId> {
        ids.iter().map(|&i| ProcId(i)).collect()
    }

    #[test]
    fn default_status_is_good() {
        let fm = FailureMap::all_good();
        assert_eq!(fm.loc(ProcId(7)), Status::Good);
        assert_eq!(fm.link(ProcId(1), ProcId(2)), Status::Good);
    }

    #[test]
    fn links_are_directed() {
        let mut fm = FailureMap::default();
        fm.set(Subject::Link(ProcId(0), ProcId(1)), Status::Ugly);
        assert_eq!(fm.link(ProcId(0), ProcId(1)), Status::Ugly);
        assert_eq!(fm.link(ProcId(1), ProcId(0)), Status::Good);
    }

    #[test]
    fn partition_script_matches_property_hypothesis() {
        let ambient = set(&[0, 1, 2, 3, 4]);
        let q = set(&[0, 1, 2]);
        let rest = set(&[3, 4]);
        let mut script = FailureScript::new();
        script.partition(10, &[q.clone(), rest], &ambient);
        let mut fm = FailureMap::all_good();
        for ev in script.sorted_events() {
            fm.apply(&ev);
        }
        assert!(fm.stabilized_for(&q, &ambient));
    }

    #[test]
    fn stabilized_for_fails_when_cross_link_good() {
        let ambient = set(&[0, 1, 2]);
        let q = set(&[0, 1]);
        let fm = FailureMap::all_good(); // cross links still good
        assert!(!fm.stabilized_for(&q, &ambient));
    }

    #[test]
    fn stabilized_for_fails_when_member_bad() {
        let ambient = set(&[0, 1, 2]);
        let q = set(&[0, 1]);
        let mut script = FailureScript::new();
        script.partition(0, &[q.clone(), set(&[2])], &ambient);
        let mut fm = FailureMap::all_good();
        for ev in script.sorted_events() {
            fm.apply(&ev);
        }
        let mut fm2 = fm.clone();
        fm2.set(Subject::Loc(ProcId(1)), Status::Bad);
        assert!(fm.stabilized_for(&q, &ambient));
        assert!(!fm2.stabilized_for(&q, &ambient));
    }

    #[test]
    #[should_panic(expected = "appears in two groups")]
    fn overlapping_groups_rejected() {
        let ambient = set(&[0, 1]);
        FailureScript::new().partition(0, &[set(&[0, 1]), set(&[1])], &ambient);
    }

    #[test]
    fn heal_makes_everything_good() {
        let ambient = set(&[0, 1, 2]);
        let mut script = FailureScript::new();
        script.partition(0, &[set(&[0]), set(&[1, 2])], &ambient).heal(5, &ambient);
        let mut fm = FailureMap::all_good();
        for ev in script.sorted_events() {
            fm.apply(&ev);
        }
        assert!(fm.stabilized_for(&ambient, &ambient));
        assert_eq!(script.last_time(), 5);
    }
}
