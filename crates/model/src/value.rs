//! Application data values: the set *A*.

use bytes::Bytes;
use std::fmt;

/// An opaque application data value, an element of the set *A*.
///
/// Both specifications treat data values as uninterpreted; a `Value` is a
/// cheaply clonable byte string. Applications (Section 3, footnote 3) encode
/// their operations into values; tests and examples usually use the small
/// integer constructors.
///
/// # Example
///
/// ```
/// use gcs_model::Value;
/// let v = Value::from_u64(42);
/// assert_eq!(v.as_u64(), Some(42));
/// let w = Value::from("hello");
/// assert_eq!(w.len(), 5);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(Bytes);

impl Value {
    /// Creates a value from raw bytes.
    pub fn new(bytes: Bytes) -> Self {
        Value(bytes)
    }

    /// Encodes a `u64` as a value (big-endian).
    pub fn from_u64(x: u64) -> Self {
        Value(Bytes::copy_from_slice(&x.to_be_bytes()))
    }

    /// Decodes a value previously produced by [`Value::from_u64`].
    ///
    /// Returns `None` if the payload is not exactly eight bytes.
    pub fn as_u64(&self) -> Option<u64> {
        let arr: [u8; 8] = self.0.as_ref().try_into().ok()?;
        Some(u64::from_be_bytes(arr))
    }

    /// The underlying bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// A stable 64-bit identity for this value: the integer itself for
    /// [`Value::from_u64`] payloads, otherwise an FNV-1a digest of the
    /// bytes. Trace events and monitors key submit/deliver pairs by this
    /// fingerprint, so arbitrary application payloads (encoded KV
    /// commands, say) stay distinguishable in the event stream.
    pub fn fingerprint(&self) -> u64 {
        if let Some(x) = self.as_u64() {
            return x;
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in self.0.as_ref() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The payload length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value(Bytes::from(v))
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Self {
        Value::from_u64(x)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(x) = self.as_u64() {
            write!(f, "v{x}")
        } else if let Ok(s) = std::str::from_utf8(&self.0) {
            write!(f, "v{s:?}")
        } else {
            write!(f, "v<{} bytes>", self.0.len())
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        for x in [0u64, 1, 42, u64::MAX] {
            assert_eq!(Value::from_u64(x).as_u64(), Some(x));
        }
    }

    #[test]
    fn non_u64_payload_decodes_to_none() {
        assert_eq!(Value::from("abc").as_u64(), None);
        assert_eq!(Value::default().as_u64(), None);
    }

    #[test]
    fn fingerprint_is_the_integer_for_u64_payloads() {
        assert_eq!(Value::from_u64(42).fingerprint(), 42);
        assert_eq!(Value::from_u64(u64::MAX).fingerprint(), u64::MAX);
        // Non-integral payloads hash; distinct payloads get distinct
        // fingerprints (FNV over short strings).
        assert_ne!(Value::from("a").fingerprint(), Value::from("b").fingerprint());
        assert_eq!(Value::from("a").fingerprint(), Value::from("a").fingerprint());
    }

    #[test]
    fn debug_is_never_empty() {
        assert_eq!(format!("{:?}", Value::from_u64(7)), "v7");
        assert_eq!(format!("{:?}", Value::from("hi")), "v\"hi\"");
        assert!(!format!("{:?}", Value::default()).is_empty());
    }
}
