//! State-exchange summaries and the operations on them (Figure 8).
//!
//! During recovery each member of a new view sends a summary of its state;
//! the functions in this module (`knowncontent`, `maxprimary`, `reps`,
//! `chosenrep`, `shortorder`, `fullorder`, `maxnextconfirm`) combine the
//! summaries collected in a `gotstate` map exactly as prescribed by the
//! algorithm's auxiliary definitions.

use crate::{Label, ProcId, Value, ViewId};
use std::collections::BTreeMap;

/// A state-exchange summary:
/// *summaries = 𝒫(L × A) × L\* × ℕ⁺ × G⊥* with selectors
/// `con`, `ord`, `next`, `high`.
///
/// # Example
///
/// ```
/// use gcs_model::{Label, ProcId, Summary, Value, ViewId};
/// let g = ViewId::new(1, ProcId(0));
/// let l = Label::new(g, 1, ProcId(0));
/// let mut s = Summary::empty();
/// s.con.insert(l, Value::from_u64(7));
/// s.ord.push(l);
/// s.next = 2;
/// assert_eq!(s.confirm(), vec![l]);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Summary {
    /// The known ⟨label, value⟩ pairs (*x.con*). An invariant of the
    /// algorithm (Lemma 6.5) is that this relation is a partial function,
    /// so it is represented as a map.
    pub con: BTreeMap<Label, Value>,
    /// The tentative total order of labels (*x.ord*).
    pub ord: Vec<Label>,
    /// One past the number of confirmed labels (*x.next ∈ ℕ⁺*).
    pub next: u64,
    /// The highest established-primary view identifier that has affected
    /// `ord` (*x.high ∈ G⊥*); `None` encodes ⊥, which is below every
    /// identifier, matching the paper's order on *G⊥*.
    pub high: Option<ViewId>,
}

impl Summary {
    /// The summary of a freshly started processor: nothing known, nothing
    /// ordered, `next = 1`, `high = ⊥`.
    pub fn empty() -> Self {
        Summary { con: BTreeMap::new(), ord: Vec::new(), next: 1, high: None }
    }

    /// The confirmed prefix *x.confirm*: the prefix of `ord` of length
    /// `min(next − 1, |ord|)`.
    pub fn confirm(&self) -> Vec<Label> {
        let n = usize::try_from(self.next.saturating_sub(1)).unwrap_or(usize::MAX);
        self.ord[..n.min(self.ord.len())].to_vec()
    }
}

impl Default for Summary {
    fn default() -> Self {
        Summary::empty()
    }
}

/// The `gotstate` map collected during recovery: a partial function from
/// processor identifiers to summaries.
pub type GotState = BTreeMap<ProcId, Summary>;

/// *knowncontent(Y) = ⋃_{q ∈ dom(Y)} Y(q).con* — every ⟨label, value⟩ pair
/// appearing in any summary.
pub fn knowncontent(y: &GotState) -> BTreeMap<Label, Value> {
    let mut out = BTreeMap::new();
    for s in y.values() {
        for (l, a) in &s.con {
            out.insert(*l, a.clone());
        }
    }
    out
}

/// *maxprimary(Y)* — the greatest `high` component among the summaries
/// (`None`, i.e. ⊥, if all are ⊥ or `Y` is empty).
pub fn maxprimary(y: &GotState) -> Option<ViewId> {
    y.values().map(|s| s.high).max().flatten()
}

/// *reps(Y)* — the members whose summaries carry the maximal `high`.
pub fn reps(y: &GotState) -> Vec<ProcId> {
    let m = y.values().map(|s| s.high).max();
    match m {
        None => Vec::new(),
        Some(m) => y.iter().filter(|(_, s)| s.high == m).map(|(q, _)| *q).collect(),
    }
}

/// *chosenrep(Y)* — a consistently chosen element of *reps(Y)*.
///
/// Any deterministic rule works as long as identical information yields an
/// identical choice everywhere; following the paper's suggestion we take the
/// representative with the highest processor identifier. Returns `None` only
/// for an empty `Y`.
pub fn chosenrep(y: &GotState) -> Option<ProcId> {
    reps(y).into_iter().max()
}

/// *shortorder(Y) = Y(chosenrep(Y)).ord* — the order adopted in a
/// non-primary view.
///
/// # Panics
///
/// Panics if `Y` is empty; the algorithm only evaluates `shortorder` once
/// all members' summaries (in particular the local one) are collected.
pub fn shortorder(y: &GotState) -> Vec<Label> {
    let rep = chosenrep(y).expect("shortorder of an empty gotstate");
    y[&rep].ord.clone()
}

/// *fullorder(Y)* — `shortorder(Y)` followed by the remaining elements of
/// *dom(knowncontent(Y))* in label order; the order adopted in a primary
/// view.
///
/// # Panics
///
/// Panics if `Y` is empty (see [`shortorder`]).
pub fn fullorder(y: &GotState) -> Vec<Label> {
    let mut order = shortorder(y);
    let mut seen: std::collections::BTreeSet<Label> = order.iter().copied().collect();
    for l in knowncontent(y).keys() {
        if seen.insert(*l) {
            order.push(*l);
        }
    }
    order
}

/// *maxnextconfirm(Y)* — the highest reported `next` value (1 if `Y` is
/// empty, matching the initial pointer).
pub fn maxnextconfirm(y: &GotState) -> u64 {
    y.values().map(|s| s.next).max().unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ViewId;

    fn lab(epoch: u64, seq: u64, origin: u32) -> Label {
        Label::new(ViewId::new(epoch, ProcId(0)), seq, ProcId(origin))
    }

    fn summary(ord: Vec<Label>, next: u64, high: Option<ViewId>) -> Summary {
        let con = ord.iter().map(|l| (*l, Value::from_u64(l.seqno))).collect();
        Summary { con, ord, next, high }
    }

    #[test]
    fn confirm_is_clamped_to_ord_length() {
        let s = summary(vec![lab(1, 1, 0)], 5, None);
        assert_eq!(s.confirm().len(), 1);
        let s = summary(vec![lab(1, 1, 0), lab(1, 2, 0)], 2, None);
        assert_eq!(s.confirm(), vec![lab(1, 1, 0)]);
    }

    #[test]
    fn empty_summary_has_empty_confirm() {
        assert!(Summary::empty().confirm().is_empty());
    }

    #[test]
    fn knowncontent_unions_all() {
        let mut y = GotState::new();
        y.insert(ProcId(0), summary(vec![lab(1, 1, 0)], 1, None));
        y.insert(ProcId(1), summary(vec![lab(1, 2, 1)], 1, None));
        let kc = knowncontent(&y);
        assert_eq!(kc.len(), 2);
    }

    #[test]
    fn maxprimary_treats_bottom_as_least() {
        let mut y = GotState::new();
        y.insert(ProcId(0), summary(vec![], 1, None));
        assert_eq!(maxprimary(&y), None);
        y.insert(ProcId(1), summary(vec![], 1, Some(ViewId::new(2, ProcId(1)))));
        y.insert(ProcId(2), summary(vec![], 1, Some(ViewId::new(1, ProcId(0)))));
        assert_eq!(maxprimary(&y), Some(ViewId::new(2, ProcId(1))));
    }

    #[test]
    fn chosenrep_is_max_id_among_reps() {
        let g = Some(ViewId::new(3, ProcId(0)));
        let mut y = GotState::new();
        y.insert(ProcId(0), summary(vec![], 1, g));
        y.insert(ProcId(1), summary(vec![], 1, g));
        y.insert(ProcId(2), summary(vec![], 1, None));
        assert_eq!(reps(&y), vec![ProcId(0), ProcId(1)]);
        assert_eq!(chosenrep(&y), Some(ProcId(1)));
    }

    #[test]
    fn fullorder_extends_shortorder_in_label_order_without_duplicates() {
        let g = Some(ViewId::new(3, ProcId(0)));
        let l1 = lab(1, 1, 0);
        let l2 = lab(1, 2, 1);
        let l3 = lab(2, 1, 0);
        let mut y = GotState::new();
        // Representative (max high) knows order [l2]; others know l1, l3.
        y.insert(ProcId(0), summary(vec![l2], 1, g));
        let mut other = summary(vec![], 1, None);
        other.con.insert(l1, Value::from_u64(1));
        other.con.insert(l3, Value::from_u64(3));
        other.con.insert(l2, Value::from_u64(2));
        y.insert(ProcId(1), other);
        assert_eq!(shortorder(&y), vec![l2]);
        assert_eq!(fullorder(&y), vec![l2, l1, l3]);
    }

    #[test]
    fn maxnextconfirm_defaults_to_one() {
        assert_eq!(maxnextconfirm(&GotState::new()), 1);
        let mut y = GotState::new();
        y.insert(ProcId(0), summary(vec![], 4, None));
        y.insert(ProcId(1), summary(vec![], 2, None));
        assert_eq!(maxnextconfirm(&y), 4);
    }
}
