//! Core types for the partitionable group communication service.
//!
//! This crate provides the mathematical foundation (Section 2 of the paper)
//! and the shared vocabulary used by every other crate in the workspace:
//!
//! - [`ProcId`] — processor identifiers, the totally ordered finite set *P*;
//! - [`ViewId`] and [`View`] — view identifiers *G* and views
//!   *views = G × 𝒫(P)*, with the distinguished initial view *v₀*;
//! - [`Label`] — the system-wide unique message labels
//!   *L = G × ℕ⁺ × P* used by the `VStoTO` algorithm (Figure 8);
//! - [`Value`] — opaque application data values (the set *A*);
//! - [`Summary`] — state-exchange summaries and the operations on them
//!   (`knowncontent`, `maxprimary`, `chosenrep`, `shortorder`, `fullorder`,
//!   `maxnextconfirm` — Figure 8);
//! - [`quorum`] — quorum systems used to distinguish primary views (Section 5);
//! - [`failure`] — the good/bad/ugly failure-status model (Figure 4) and
//!   timed failure scripts describing partition scenarios;
//! - [`seq`] — sequence utilities (prefix order, least upper bounds of
//!   consistent sets, `applyall`) from Section 2.
//!
//! # Example
//!
//! ```
//! use gcs_model::{ProcId, View, ViewId, Label};
//!
//! let members = ProcId::range(3); // {p0, p1, p2}
//! let v = View::new(ViewId::new(1, ProcId(0)), members);
//! assert!(v.contains(ProcId(1)));
//! let l = Label::new(v.id, 1, ProcId(1));
//! assert!(l < Label::new(v.id, 2, ProcId(0))); // lexicographic order
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod content;
pub mod failure;
pub mod ids;
pub mod label;
pub mod quorum;
pub mod seq;
pub mod summary;
pub mod value;
pub mod view;

pub use content::ContentMap;
pub use failure::{FailureEvent, FailureMap, Status, Subject};
pub use ids::{ProcId, ViewId};
pub use label::Label;
pub use quorum::{Explicit, Majority, QuorumSystem, Weighted};
pub use summary::{GotState, Summary};
pub use value::Value;
pub use view::View;

/// Virtual time, in abstract ticks.
///
/// All timing parameters of the paper (the channel delay δ, the token period
/// π, the merge-probe period μ, and the derived bounds *b* and *d*) are
/// expressed in this unit. Using an integer rather than a float keeps timed
/// traces exactly comparable and the discrete-event simulation deterministic.
pub type Time = u64;
