//! Views: a view identifier paired with a membership set.

use crate::{ProcId, ViewId};
use std::collections::BTreeSet;
use std::fmt;

/// A view *v = ⟨v.id, v.set⟩ ∈ views = G × 𝒫(P)* (Section 4).
///
/// A view associates a view identifier with the set of processors believed
/// to be the current group membership. The distinguished initial view
/// *v₀ = ⟨g₀, P₀⟩* is built with [`View::initial`].
///
/// # Example
///
/// ```
/// use gcs_model::{ProcId, View, ViewId};
/// let v = View::new(ViewId::new(1, ProcId(0)), ProcId::range(3));
/// assert_eq!(v.size(), 3);
/// assert!(v.contains(ProcId(2)));
/// assert!(!v.contains(ProcId(3)));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct View {
    /// The view identifier *v.id*.
    pub id: ViewId,
    /// The membership set *v.set*.
    pub set: BTreeSet<ProcId>,
}

impl View {
    /// Creates a view from an identifier and a membership set.
    pub fn new(id: ViewId, set: BTreeSet<ProcId>) -> Self {
        View { id, set }
    }

    /// The distinguished initial view *v₀ = ⟨g₀, P₀⟩* with membership *P₀*.
    ///
    /// ```
    /// use gcs_model::{ProcId, View, ViewId};
    /// let v0 = View::initial(ProcId::range(4));
    /// assert_eq!(v0.id, ViewId::initial());
    /// ```
    pub fn initial(p0: BTreeSet<ProcId>) -> Self {
        View { id: ViewId::initial(), set: p0 }
    }

    /// Whether `p` is a member of this view.
    pub fn contains(&self, p: ProcId) -> bool {
        self.set.contains(&p)
    }

    /// The number of members.
    pub fn size(&self) -> usize {
        self.set.len()
    }

    /// The deterministically chosen leader of this view: the member with
    /// the smallest identifier. Used by the token-ring implementation
    /// (Section 8) and available to applications.
    ///
    /// Returns `None` for an (illegal) empty membership.
    pub fn leader(&self) -> Option<ProcId> {
        self.set.iter().next().copied()
    }

    /// The ring successor of `p` within the membership: the next member in
    /// increasing identifier order, wrapping around to the smallest.
    ///
    /// Returns `None` if `p` is not a member.
    pub fn ring_successor(&self, p: ProcId) -> Option<ProcId> {
        if !self.set.contains(&p) {
            return None;
        }
        self.set
            .range((std::ops::Bound::Excluded(p), std::ops::Bound::Unbounded))
            .next()
            .or_else(|| self.set.iter().next())
            .copied()
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {{", self.id)?;
        for (i, p) in self.set.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}⟩")
    }
}

impl fmt::Debug for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(ids: &[u32]) -> View {
        View::new(ViewId::new(1, ProcId(0)), ids.iter().map(|&i| ProcId(i)).collect())
    }

    #[test]
    fn leader_is_min_member() {
        assert_eq!(view(&[3, 1, 2]).leader(), Some(ProcId(1)));
        assert_eq!(View::new(ViewId::initial(), BTreeSet::new()).leader(), None);
    }

    #[test]
    fn ring_successor_wraps() {
        let v = view(&[1, 4, 7]);
        assert_eq!(v.ring_successor(ProcId(1)), Some(ProcId(4)));
        assert_eq!(v.ring_successor(ProcId(4)), Some(ProcId(7)));
        assert_eq!(v.ring_successor(ProcId(7)), Some(ProcId(1)));
        assert_eq!(v.ring_successor(ProcId(2)), None);
    }

    #[test]
    fn singleton_ring_successor_is_self() {
        let v = view(&[5]);
        assert_eq!(v.ring_successor(ProcId(5)), Some(ProcId(5)));
    }

    #[test]
    fn initial_view_uses_g0() {
        let v0 = View::initial(ProcId::range(2));
        assert_eq!(v0.id, ViewId::initial());
        assert_eq!(v0.size(), 2);
    }

    #[test]
    fn display_shows_members() {
        let v = view(&[0, 1]);
        assert_eq!(v.to_string(), "⟨g1.0, {p0,p1}⟩");
    }
}
