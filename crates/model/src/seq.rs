//! Sequence utilities from Section 2: prefix order, consistent collections,
//! least upper bounds, and `applyall`.

/// Whether `s` is a prefix of `t` (written *s ≤ t* in the paper).
///
/// ```
/// use gcs_model::seq::is_prefix;
/// assert!(is_prefix(&[1, 2], &[1, 2, 3]));
/// assert!(is_prefix::<u8>(&[], &[]));
/// assert!(!is_prefix(&[2], &[1, 2]));
/// ```
pub fn is_prefix<T: PartialEq>(s: &[T], t: &[T]) -> bool {
    s.len() <= t.len() && s.iter().zip(t).all(|(a, b)| a == b)
}

/// Whether a collection of sequences is *consistent*: every pair is related
/// by the prefix order.
///
/// ```
/// use gcs_model::seq::consistent;
/// assert!(consistent(&[vec![1], vec![1, 2], vec![]]));
/// assert!(!consistent(&[vec![1], vec![2]]));
/// ```
pub fn consistent<T: PartialEq>(seqs: &[Vec<T>]) -> bool {
    for (i, s) in seqs.iter().enumerate() {
        for t in &seqs[i + 1..] {
            if !is_prefix(s, t) && !is_prefix(t, s) {
                return false;
            }
        }
    }
    true
}

/// The least upper bound of a consistent collection of sequences: the
/// minimum sequence of which every element is a prefix (written *lub(S)*).
///
/// Returns `None` if the collection is not consistent. The lub of an empty
/// collection is the empty sequence.
///
/// ```
/// use gcs_model::seq::lub;
/// assert_eq!(lub(&[vec![1], vec![1, 2]]), Some(vec![1, 2]));
/// assert_eq!(lub(&[vec![1], vec![2]]), None);
/// assert_eq!(lub::<u8>(&[]), Some(vec![]));
/// ```
pub fn lub<T: PartialEq + Clone>(seqs: &[Vec<T>]) -> Option<Vec<T>> {
    let mut best: &[T] = &[];
    for s in seqs {
        if is_prefix(best, s) {
            best = s;
        } else if !is_prefix(s, best) {
            return None;
        }
    }
    Some(best.to_vec())
}

/// Applies a partial function `f` to every element of `s`
/// (written *applyall(f, s)*).
///
/// Returns `None` if `f` is undefined (returns `None`) on some element; the
/// paper requires `dom(f) ⊇ range(s)`, so a `None` here signals a broken
/// precondition at the call site.
///
/// ```
/// use gcs_model::seq::applyall;
/// let f = |x: &u32| if *x < 10 { Some(x * 2) } else { None };
/// assert_eq!(applyall(f, &[1, 2, 3]), Some(vec![2, 4, 6]));
/// assert_eq!(applyall(f, &[1, 99]), None);
/// ```
pub fn applyall<T, U>(f: impl FnMut(&T) -> Option<U>, s: &[T]) -> Option<Vec<U>> {
    s.iter().map(f).collect()
}

/// The longest common prefix of two sequences.
///
/// ```
/// use gcs_model::seq::common_prefix;
/// assert_eq!(common_prefix(&[1, 2, 3], &[1, 2, 9]), vec![1, 2]);
/// ```
pub fn common_prefix<T: PartialEq + Clone>(s: &[T], t: &[T]) -> Vec<T> {
    s.iter().zip(t).take_while(|(a, b)| a == b).map(|(a, _)| a.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn prefix_basics() {
        assert!(is_prefix(&[1, 2, 3], &[1, 2, 3]));
        assert!(!is_prefix(&[1, 2, 3], &[1, 2]));
        assert!(is_prefix::<u8>(&[], &[1]));
    }

    #[test]
    fn lub_picks_longest() {
        let seqs = vec![vec![1, 2], vec![1], vec![1, 2, 3]];
        assert_eq!(lub(&seqs), Some(vec![1, 2, 3]));
    }

    #[test]
    fn lub_detects_inconsistency_even_when_nonadjacent() {
        let seqs = vec![vec![1, 2, 3], vec![1, 2], vec![1, 9]];
        assert_eq!(lub(&seqs), None);
        assert!(!consistent(&seqs));
    }

    #[test]
    fn common_prefix_of_disjoint_is_empty() {
        assert_eq!(common_prefix(&[1], &[2]), Vec::<i32>::new());
    }

    proptest! {
        #[test]
        fn prefix_is_reflexive(s in proptest::collection::vec(any::<u8>(), 0..20)) {
            prop_assert!(is_prefix(&s, &s));
        }

        #[test]
        fn prefixes_of_same_seq_are_consistent(
            s in proptest::collection::vec(any::<u8>(), 0..20),
            a in 0usize..21, b in 0usize..21,
        ) {
            let a = a.min(s.len());
            let b = b.min(s.len());
            let seqs = vec![s[..a].to_vec(), s[..b].to_vec()];
            prop_assert!(consistent(&seqs));
            let l = lub(&seqs).unwrap();
            prop_assert!(is_prefix(&l, &s));
            prop_assert_eq!(l.len(), a.max(b));
        }

        #[test]
        fn lub_is_an_upper_bound(
            s in proptest::collection::vec(any::<u8>(), 0..20),
            cuts in proptest::collection::vec(0usize..21, 0..5),
        ) {
            let seqs: Vec<Vec<u8>> =
                cuts.iter().map(|&c| s[..c.min(s.len())].to_vec()).collect();
            let l = lub(&seqs).unwrap();
            for q in &seqs {
                prop_assert!(is_prefix(q, &l));
            }
        }

        #[test]
        fn common_prefix_is_prefix_of_both(
            s in proptest::collection::vec(any::<u8>(), 0..20),
            t in proptest::collection::vec(any::<u8>(), 0..20),
        ) {
            let c = common_prefix(&s, &t);
            prop_assert!(is_prefix(&c, &s));
            prop_assert!(is_prefix(&c, &t));
        }
    }
}
