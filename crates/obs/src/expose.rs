//! A minimal plain-`TcpListener` metrics endpoint.
//!
//! This is deliberately not a web server: it answers *every* inbound
//! connection with an `HTTP/1.0 200` carrying the registry's current
//! Prometheus-style text rendering, reading just enough of the request
//! to be polite to curl and Prometheus scrapers. One background thread,
//! no dependencies, stoppable.

use crate::metrics::Registry;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to a running metrics endpoint. Dropping the handle does not
/// stop the server; call [`MetricsServer::stop`].
pub struct MetricsServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn stop(mut self) {
        // ordering: SeqCst — lone stop flag with no payload; pairs with
        // the SeqCst poll in the accept loop, off any hot path.
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop if it is parked in `accept`.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn answer(mut stream: TcpStream, registry: &Registry) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    // Drain up to one request's worth of bytes; we serve the same body
    // regardless of path, so parsing is unnecessary.
    let mut buf = [0u8; 1024];
    let _ = stream.read(&mut buf);
    let body = registry.render_text();
    let head = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Serves `registry` over `listener` from a background thread.
pub fn serve(listener: TcpListener, registry: Registry) -> std::io::Result<MetricsServer> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let handle = std::thread::Builder::new().name("gcs-obs-metrics".into()).spawn(move || {
        for conn in listener.incoming() {
            // ordering: SeqCst — stop-flag poll; pairs with stop().
            if stop2.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => answer(stream, &registry),
                Err(_) => break,
            }
        }
    })?;
    Ok(MetricsServer { addr, stop, handle: Some(handle) })
}

/// Fetches the full text body from a metrics endpoint (test/client
/// helper; strips the HTTP header).
pub fn fetch_text(addr: std::net::SocketAddr) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    match text.find("\r\n\r\n") {
        Some(i) => Ok(text[i + 4..].to_string()),
        None => Ok(text.into_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_registry_text_and_stops() {
        let reg = Registry::default();
        reg.counter("obs_test_requests_total").add(7);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let server = serve(listener, reg.clone()).expect("serve");
        let addr = server.addr();

        let body = fetch_text(addr).expect("fetch");
        assert!(body.contains("obs_test_requests_total 7"), "{body}");

        // Values are live, not frozen at serve time.
        reg.counter("obs_test_requests_total").add(1);
        let body = fetch_text(addr).expect("fetch");
        assert!(body.contains("obs_test_requests_total 8"), "{body}");

        server.stop();
        // After stop, connections are refused or unanswered — exercising
        // the path must not hang or panic, whichever way it fails.
        let _ = TcpStream::connect(addr);
        let _ = fetch_text(addr);
    }
}
