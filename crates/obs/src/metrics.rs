//! The sharded metrics registry: named counters, gauges, and log-scale
//! histograms with snapshot/merge and Prometheus-style text exposition.
//!
//! Handles are looked up (or created) once and then operate on plain
//! atomics — the registry's shard locks are touched only at
//! registration and snapshot time, never on the hot increment path.
//! Shards are selected by a hash of the metric name, so concurrent
//! registration of unrelated metrics rarely contends.
//!
//! The registry is generic over the [`gcs_mc::Shims`] sync surface:
//! `Registry` (the `StdShims` default) is the zero-cost production
//! form, and `Registry<McShims>` runs the identical code under the
//! gcs-mc model checker — the registration and scrape-under-write
//! protocols are exhaustively checked in crates/obs/tests/
//! mc_registry.rs (see docs/CONCURRENCY.md).

use crate::hist::{HistCore, HistSnapshot, Histogram};
use gcs_mc::{AtomicI64Api, AtomicU64Api, MutexApi, Shims, StdShims};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::atomic::Ordering;
use std::sync::Arc;

type A64<S> = <S as Shims>::AtomicU64;
type AI64<S> = <S as Shims>::AtomicI64;

const N_SHARDS: usize = 8;

/// A monotonically increasing counter. Cloning shares the cell.
pub struct Counter<S: Shims = StdShims> {
    cell: Arc<A64<S>>,
}

impl<S: Shims> Clone for Counter<S> {
    fn clone(&self) -> Self {
        Counter { cell: Arc::clone(&self.cell) }
    }
}

impl<S: Shims> fmt::Debug for Counter<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Counter").finish_non_exhaustive()
    }
}

impl<S: Shims> Counter<S> {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        // ordering: Relaxed — pure event counter; hot-path increments
        // synchronize nothing, readers merge at scrape time.
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — advisory scrape read.
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways. Cloning shares the cell.
pub struct Gauge<S: Shims = StdShims> {
    cell: Arc<AI64<S>>,
}

impl<S: Shims> Clone for Gauge<S> {
    fn clone(&self) -> Self {
        Gauge { cell: Arc::clone(&self.cell) }
    }
}

impl<S: Shims> fmt::Debug for Gauge<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gauge").finish_non_exhaustive()
    }
}

impl<S: Shims> Gauge<S> {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        // ordering: Relaxed — last-writer-wins gauge cell; no data is
        // published under it.
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        // ordering: Relaxed — atomic RMW keeps the sum exact; ordering
        // against other metrics is not required.
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        // ordering: Relaxed — advisory scrape read.
        self.cell.load(Ordering::Relaxed)
    }
}

/// A metric identity: name plus ordered label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// The metric name (e.g. `net_frames_sent_total`).
    pub name: String,
    /// Ordered `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Renders as `name` or `name{k="v",...}`.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            self.name.clone()
        } else {
            let mut s = format!("{}{{", self.name);
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{k}=\"{v}\"");
            }
            s.push('}');
            s
        }
    }
}

enum Slot<S: Shims> {
    Counter(Arc<A64<S>>),
    Gauge(Arc<AI64<S>>),
    Histogram(Arc<HistCore<S>>),
}

impl<S: Shims> Clone for Slot<S> {
    fn clone(&self) -> Self {
        match self {
            Slot::Counter(c) => Slot::Counter(Arc::clone(c)),
            Slot::Gauge(g) => Slot::Gauge(Arc::clone(g)),
            Slot::Histogram(h) => Slot::Histogram(Arc::clone(h)),
        }
    }
}

type Shard<S> = <S as Shims>::Mutex<BTreeMap<MetricKey, Slot<S>>>;

/// The registry. Cloning shares the underlying metric store.
pub struct Registry<S: Shims = StdShims> {
    shards: Arc<[Shard<S>; N_SHARDS]>,
}

impl<S: Shims> Clone for Registry<S> {
    fn clone(&self) -> Self {
        Registry { shards: Arc::clone(&self.shards) }
    }
}

impl<S: Shims> fmt::Debug for Registry<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

impl<S: Shims> Default for Registry<S> {
    fn default() -> Self {
        Registry::new()
    }
}

fn shard_of(name: &str) -> usize {
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    (h.finish() as usize) % N_SHARDS
}

fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    MetricKey {
        name: name.to_string(),
        labels: labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect(),
    }
}

impl<S: Shims> Registry<S> {
    /// An empty registry.
    pub fn new() -> Self {
        Registry { shards: Arc::new(std::array::from_fn(|_| Shard::<S>::new(BTreeMap::new()))) }
    }

    /// The counter `name` with no labels, created on first use.
    pub fn counter(&self, name: &str) -> Counter<S> {
        self.counter_labeled(name, &[])
    }

    /// The counter `name` with the given label pairs, created on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics if the same name+labels was registered as a different
    /// metric type.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Counter<S> {
        let k = key(name, labels);
        let mut shard = self.shards[shard_of(name)].lock_clean();
        let slot = shard.entry(k).or_insert_with(|| Slot::Counter(Arc::new(A64::<S>::new(0))));
        match slot {
            Slot::Counter(c) => Counter { cell: c.clone() },
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// The gauge `name` with no labels, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge<S> {
        self.gauge_labeled(name, &[])
    }

    /// The gauge `name` with the given label pairs, created on first use.
    ///
    /// # Panics
    ///
    /// Panics on a metric-type conflict.
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Gauge<S> {
        let k = key(name, labels);
        let mut shard = self.shards[shard_of(name)].lock_clean();
        let slot = shard.entry(k).or_insert_with(|| Slot::Gauge(Arc::new(AI64::<S>::new(0))));
        match slot {
            Slot::Gauge(g) => Gauge { cell: g.clone() },
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// The histogram `name` with no labels, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram<S> {
        self.histogram_labeled(name, &[])
    }

    /// The histogram `name` with the given label pairs, created on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics on a metric-type conflict.
    pub fn histogram_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Histogram<S> {
        let k = key(name, labels);
        let mut shard = self.shards[shard_of(name)].lock_clean();
        let slot =
            shard.entry(k).or_insert_with(|| Slot::Histogram(Histogram::new().core().clone()));
        match slot {
            Slot::Histogram(h) => Histogram::from_core(h.clone()),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// A frozen, ordered copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let mut entries = BTreeMap::new();
        for shard in self.shards.iter() {
            for (k, slot) in shard.lock_clean().iter() {
                let value = match slot {
                    // ordering: Relaxed — scrape-time reads; a snapshot
                    // is not a consistent cut across metrics (the
                    // `registry_scrape_under_write` gcs-mc model pins
                    // down what that does and does not permit).
                    Slot::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                    Slot::Gauge(g) => MetricValue::Gauge(g.load(Ordering::Relaxed)),
                    Slot::Histogram(h) => {
                        MetricValue::Histogram(Histogram::from_core(h.clone()).snapshot())
                    }
                };
                entries.insert(k.clone(), value);
            }
        }
        Snapshot { entries }
    }

    /// Prometheus-style text exposition of the current state.
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

/// One snapshotted metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A histogram state.
    Histogram(HistSnapshot),
}

/// A frozen, mergeable copy of a registry's contents, ordered by metric
/// name and labels.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    entries: BTreeMap<MetricKey, MetricValue>,
}

impl Snapshot {
    /// Iterates over `(rendered_name, value)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (String, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.render(), v))
    }

    /// The value of the exact metric `name` with `labels`, if present.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        self.entries.get(&key(name, labels))
    }

    /// The counter `name` with `labels`, or 0 if absent.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get(name, labels) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The sum of counter `name` across every label set.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| match v {
                MetricValue::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }

    /// Folds `other` into `self`: counters and gauges add, histograms
    /// merge bucket-wise, metrics unique to either side are kept.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.entries {
            match (self.entries.get_mut(k), v) {
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => *a += b,
                (Some(MetricValue::Gauge(a)), MetricValue::Gauge(b)) => *a += b,
                (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b)) => a.merge(b),
                (Some(_), _) => {} // type conflict across snapshots: keep ours
                (None, _) => {
                    self.entries.insert(k.clone(), v.clone());
                }
            }
        }
    }

    /// Prometheus-style text exposition: `# TYPE` comments, one sample
    /// per line, histograms as `_bucket{le=..}`/`_sum`/`_count` series.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (k, v) in &self.entries {
            let type_str = match v {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            if last_name != Some(k.name.as_str()) {
                let _ = writeln!(out, "# TYPE {} {}", k.name, type_str);
                last_name = Some(k.name.as_str());
            }
            match v {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{} {}", k.render(), c);
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", k.render(), g);
                }
                MetricValue::Histogram(h) => {
                    for (le, cum) in h.cumulative_buckets() {
                        let mut lk = k.clone();
                        lk.labels.push(("le".to_string(), le.to_string()));
                        let _ = writeln!(out, "{}_bucket{} {}", k.name, strip_name(&lk), cum);
                    }
                    let mut ik = k.clone();
                    ik.labels.push(("le".to_string(), "+Inf".to_string()));
                    let _ = writeln!(out, "{}_bucket{} {}", k.name, strip_name(&ik), h.count());
                    let _ = writeln!(out, "{}_sum{} {}", k.name, strip_name(k), h.sum());
                    let _ = writeln!(out, "{}_count{} {}", k.name, strip_name(k), h.count());
                }
            }
        }
        out
    }
}

/// The `{labels}` part of a rendered key (empty string when unlabeled).
fn strip_name(k: &MetricKey) -> String {
    let r = k.render();
    r[k.name.len()..].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let r: Registry = Registry::new();
        let c = r.counter("requests_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Looking the same name up again shares the cell.
        assert_eq!(r.counter("requests_total").get(), 5);

        let g = r.gauge("queue_depth");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn labels_distinguish_series() {
        let r: Registry = Registry::new();
        r.counter_labeled("sent", &[("node", "0")]).add(10);
        r.counter_labeled("sent", &[("node", "1")]).add(20);
        let s = r.snapshot();
        assert_eq!(s.counter_value("sent", &[("node", "0")]), 10);
        assert_eq!(s.counter_value("sent", &[("node", "1")]), 20);
        assert_eq!(s.counter_total("sent"), 30);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_conflicts_panic() {
        let r: Registry = Registry::new();
        r.counter("x").inc();
        let _ = r.gauge("x");
    }

    #[test]
    fn snapshots_merge() {
        let a: Registry = Registry::new();
        let b: Registry = Registry::new();
        a.counter("ops").add(3);
        b.counter("ops").add(4);
        b.counter("only_b").add(1);
        a.gauge("depth").set(5);
        b.gauge("depth").set(7);
        a.histogram("lat").record(10);
        b.histogram("lat").record(30);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counter_value("ops", &[]), 7);
        assert_eq!(m.counter_value("only_b", &[]), 1);
        assert_eq!(m.get("depth", &[]), Some(&MetricValue::Gauge(12)));
        match m.get("lat", &[]) {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count(), 2);
                assert_eq!(h.max(), 30);
            }
            other => panic!("lat missing: {other:?}"),
        }
    }

    #[test]
    fn text_exposition_shape() {
        let r: Registry = Registry::new();
        r.counter_labeled("frames_sent_total", &[("node", "0")]).add(42);
        r.gauge("links_up").set(3);
        r.histogram("latency_us").record(100);
        let text = r.render_text();
        assert!(text.contains("# TYPE frames_sent_total counter"), "{text}");
        assert!(text.contains("frames_sent_total{node=\"0\"} 42"), "{text}");
        assert!(text.contains("# TYPE links_up gauge"), "{text}");
        assert!(text.contains("links_up 3"), "{text}");
        assert!(text.contains("latency_us_count 1"), "{text}");
        assert!(text.contains("latency_us_sum 100"), "{text}");
        assert!(text.contains("latency_us_bucket{le=\"+Inf\"} 1"), "{text}");
    }

    #[test]
    fn sharded_registration_is_thread_safe() {
        let r: Registry = Registry::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        r.counter_labeled(&format!("m{}", i % 10), &[("t", &t.to_string())]).inc();
                    }
                });
            }
        });
        let snap = r.snapshot();
        let total: u64 = (0..10).map(|i| snap.counter_total(&format!("m{i}"))).sum();
        assert_eq!(total, 800);
    }
}
