//! A bounded, lock-light structured event-tracing ring buffer.
//!
//! Writers are expected to be long-lived threads (transport writer and
//! reader loops, node runtimes). Each thread is pinned to one of a small
//! fixed set of ring shards, so its shard mutex is effectively
//! uncontended — the only cross-thread traffic on the record path is a
//! single fetch-add for the global sequence number. When a shard
//! overflows, its oldest event is evicted and counted; the eviction
//! counter lets a consumer distinguish "complete record" from "window
//! onto a longer run".
//!
//! Events carry a `(t_ms, seq)` stamp from the buffer's own epoch, so a
//! snapshot merged across shards is one globally ordered stream — the
//! shape the [`crate::monitor`] bound monitors consume.
//!
//! The ring is generic over the [`gcs_mc::Shims`] sync surface:
//! production code uses the zero-cost `StdShims` default, and the
//! gcs-mc models in `tests/mc_ring.rs` instantiate `McShims` to
//! exhaustively check the record/snapshot protocol under every
//! bounded interleaving (see docs/CONCURRENCY.md).

use gcs_mc::{AtomicU64Api, MutexApi, Shims, StdShims};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

const N_SHARDS: usize = 8;

/// The seq-counter publish ordering. The Release half is load-bearing:
/// it is what makes `recorded()` a safe high-water cursor (see the
/// `// ordering:` comment at the fetch_add in [`TraceBuf::record`]).
// ordering: AcqRel — paired with the Acquire load in recorded();
// checked by the `ring_seeded_relaxed_bug` gcs-mc model, which proves
// the Relaxed downgrade below is caught as a vacuous acquire.
#[cfg(not(feature = "mc-seeded-bug"))]
const SEQ_PUBLISH: Ordering = Ordering::AcqRel;
/// Seeded-bug build: deliberately downgraded so the mc meta-test can
/// assert the happens-before checker reports the broken publish pair
/// with correct file:line on both sides. Never enabled in production
/// profiles; ci.sh only passes the feature to the meta-test target.
// ordering: Relaxed — the injected bug under test (see above).
#[cfg(feature = "mc-seeded-bug")]
const SEQ_PUBLISH: Ordering = Ordering::Relaxed;

/// Why an outbound frame was dropped at the transport.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The peer is administratively blocked (emulated partition).
    Blocked,
    /// The bounded per-peer send queue was full.
    QueueFull,
    /// No link exists to the destination.
    NoLink,
    /// The socket write failed mid-frame (frame lost on reconnect).
    WriteError,
}

/// Which fault-injection operation was applied to a link or node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Traffic blocked in both directions (partition).
    Sever,
    /// Partition ended.
    Heal,
    /// Live sockets killed without blocking (reconnect exercise).
    Kick,
    /// A node crashed (volatile state lost; stable storage survives).
    Crash,
    /// A crashed node restarted from stable storage.
    Restart,
    /// A node stopped processing events (slow-consumer pause).
    Stall,
    /// A stalled node resumed processing.
    Resume,
    /// Traffic slowed (delivery delays stretched) without being blocked.
    Slow,
}

/// A typed observability event. Node/processor identifiers are plain
/// `u32`s so this crate stays dependency-free.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A node installed a view.
    ViewChange {
        /// The installing node.
        node: u32,
        /// The view identifier's epoch component.
        epoch: u64,
        /// Number of members in the view.
        size: u32,
    },
    /// A client value was submitted at a node (`bcast`).
    Bcast {
        /// The submitting node.
        node: u32,
        /// The value (as u64, 0 if unrepresentable).
        value: u64,
    },
    /// A node delivered a value to its client (`brcv`).
    Brcv {
        /// The delivering node.
        node: u32,
        /// The value's original sender.
        src: u32,
        /// The value.
        value: u64,
    },
    /// A protocol frame was written to a peer socket.
    Send {
        /// The sending node.
        from: u32,
        /// The destination node.
        to: u32,
    },
    /// A protocol frame was received and handed to the node runtime.
    Recv {
        /// The receiving node.
        node: u32,
        /// The sending node.
        from: u32,
    },
    /// An outbound frame was dropped before reaching the wire.
    Drop {
        /// The would-be sender.
        node: u32,
        /// The destination.
        to: u32,
        /// Why.
        reason: DropReason,
    },
    /// An inbound frame was rejected (blocked peer or stale connection
    /// generation).
    Reject {
        /// The rejecting node.
        node: u32,
        /// The frame's sender.
        from: u32,
    },
    /// An outbound link was (re-)established.
    LinkUp {
        /// The connecting node.
        node: u32,
        /// The peer.
        peer: u32,
        /// The new connection generation.
        generation: u64,
    },
    /// An outbound link went down (socket closed or write failed).
    LinkDown {
        /// The node that lost the link.
        node: u32,
        /// The peer.
        peer: u32,
    },
    /// A fault-injection operation was applied.
    Fault {
        /// The node the operation was applied at.
        node: u32,
        /// The affected peer.
        peer: u32,
        /// The operation.
        kind: FaultKind,
    },
    /// An adaptive failure detector published new effective timing
    /// bounds. The b/d monitors re-derive their windows from the
    /// running maxima of these, so an adaptive run is judged against
    /// the deadlines the detector actually enforced.
    DetectorBound {
        /// The reporting node.
        node: u32,
        /// Effective per-hop delay bound `δ̂` in milliseconds.
        delta_hat_ms: u64,
        /// Effective token period bound `π̂` in milliseconds.
        pi_hat_ms: u64,
    },
}

/// One recorded event with its stamp.
#[derive(Clone, Debug, PartialEq)]
pub struct ObsEvent {
    /// Milliseconds since the trace buffer's epoch.
    pub t_ms: u64,
    /// Global sequence number (total order across shards).
    pub seq: u64,
    /// The event.
    pub kind: EventKind,
}

struct TraceInner<S: Shims> {
    epoch: Instant,
    /// When present, the buffer is on a *manual* (virtual) clock:
    /// `record` stamps events from this register instead of the wall
    /// clock, so a deterministic simulation can feed the monitors
    /// virtual-time streams. Advanced via [`TraceBuf::set_now_ms`].
    manual_ms: Option<S::AtomicU64>,
    seq: S::AtomicU64,
    shards: Vec<S::Mutex<VecDeque<ObsEvent>>>,
    cap_per_shard: usize,
    evicted: S::AtomicU64,
}

/// The bounded tracing ring. Cloning shares the buffer.
///
/// Generic over the sync shims: `TraceBuf` (the default) is the
/// production wall-clock/std form; `TraceBuf<McShims>` is the same
/// structure under the gcs-mc model checker.
pub struct TraceBuf<S: Shims = StdShims> {
    inner: Arc<TraceInner<S>>,
}

impl<S: Shims> Clone for TraceBuf<S> {
    fn clone(&self) -> Self {
        TraceBuf { inner: Arc::clone(&self.inner) }
    }
}

impl<S: Shims> std::fmt::Debug for TraceBuf<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuf")
            .field("len", &self.len())
            .field("evicted", &self.evicted())
            .finish()
    }
}

impl<S: Shims> Default for TraceBuf<S> {
    fn default() -> Self {
        TraceBuf::new()
    }
}

/// Threads are pinned to shards by their dense per-thread ordinal
/// (round-robin over shards). Under `StdShims` the ordinal is a global
/// ticket, so assignment balances across every `TraceBuf`; under
/// `McShims` it is the model thread id, so shard choice is a
/// deterministic function of the schedule.
fn my_shard<S: Shims>() -> usize {
    S::thread_ordinal() % N_SHARDS
}

impl<S: Shims> TraceBuf<S> {
    /// A ring with the default capacity (65536 events).
    pub fn new() -> Self {
        TraceBuf::with_capacity(1 << 16)
    }

    /// A ring holding up to `capacity` events in total (split evenly
    /// across the internal shards; at least one event per shard).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceBuf::build(capacity, false)
    }

    /// A ring on a *manual* clock: events are stamped from a virtual-time
    /// register (starting at 0) advanced with [`TraceBuf::set_now_ms`],
    /// instead of the wall clock. Deterministic simulations use this so
    /// the [`crate::monitor`] bound monitors see virtual milliseconds.
    pub fn with_manual_clock(capacity: usize) -> Self {
        TraceBuf::build(capacity, true)
    }

    fn build(capacity: usize, manual: bool) -> Self {
        let cap_per_shard = (capacity / N_SHARDS).max(1);
        TraceBuf {
            inner: Arc::new(TraceInner {
                epoch: Instant::now(),
                manual_ms: manual.then(|| S::AtomicU64::new(0)),
                seq: S::AtomicU64::new(0),
                shards: (0..N_SHARDS).map(|_| S::Mutex::new(VecDeque::new())).collect(),
                cap_per_shard,
                evicted: S::AtomicU64::new(0),
            }),
        }
    }

    /// Milliseconds since this buffer's epoch (the stamp `record` uses):
    /// wall-clock elapsed time, or the manual register for a buffer
    /// created with [`TraceBuf::with_manual_clock`].
    pub fn now_ms(&self) -> u64 {
        match &self.inner.manual_ms {
            // ordering: Relaxed — monotone virtual-time register with no
            // dependent data; stamps are advisory and snapshots re-sort
            // by seq.
            Some(m) => m.load(Ordering::Relaxed),
            None => self.inner.epoch.elapsed().as_millis() as u64,
        }
    }

    /// Advances the manual clock to `t_ms` (no-op on a wall-clock
    /// buffer). The register is monotone: moving backwards is ignored.
    pub fn set_now_ms(&self, t_ms: u64) {
        if let Some(m) = &self.inner.manual_ms {
            // ordering: Relaxed — fetch_max keeps the register monotone
            // by itself; nothing is published under this store.
            m.fetch_max(t_ms, Ordering::Relaxed);
        }
    }

    /// Records an event, stamped with the current time and the next
    /// global sequence number. Evicts the oldest event in this thread's
    /// shard when full.
    pub fn record(&self, kind: EventKind) {
        let t_ms = self.now_ms();
        // ordering: AcqRel (via SEQ_PUBLISH) — the Release half pairs
        // with the Acquire load in recorded(): a reader that observes
        // seq >= n also observes every write the recording thread made
        // before claiming sequence n-1, so `recorded()` is a safe
        // high-water cursor for `snapshot_since` polling loops. (The
        // claimed event itself is published under the shard mutex
        // below; an in-flight writer may still be between the two —
        // the `ring_snapshot_since_gap` gcs-mc model pins down exactly
        // what that can and cannot cause.)
        let seq = self.inner.seq.fetch_add(1, SEQ_PUBLISH);
        let mut shard = self.inner.shards[my_shard::<S>()].lock_clean();
        if shard.len() >= self.inner.cap_per_shard {
            shard.pop_front();
            // ordering: Relaxed — eviction counter; read only by the
            // advisory evicted() accessor, merged at quiescence.
            self.inner.evicted.fetch_add(1, Ordering::Relaxed);
        }
        shard.push_back(ObsEvent { t_ms, seq, kind });
    }

    /// Records a batch of events with one clock read, one claimed
    /// sequence block, and one shard lock — the hot-path form of
    /// [`TraceBuf::record`] for recorders that flush events in bursts
    /// (e.g. every delivery a batched token round produced at once). The
    /// block is claimed before the caller's effects propagate anywhere,
    /// so causally later recordings still claim later sequence numbers;
    /// concurrent unrelated recorders are merely coarsened to batch
    /// granularity, which the merged order never promised to refine.
    pub fn record_many<I>(&self, kinds: I)
    where
        I: IntoIterator<Item = EventKind>,
        I::IntoIter: ExactSizeIterator,
    {
        let kinds = kinds.into_iter();
        let n = kinds.len() as u64;
        if n == 0 {
            return;
        }
        let t_ms = self.now_ms();
        // ordering: AcqRel (via SEQ_PUBLISH) — same publication
        // contract as record().
        let seq0 = self.inner.seq.fetch_add(n, SEQ_PUBLISH);
        let mut shard = self.inner.shards[my_shard::<S>()].lock_clean();
        for (i, kind) in kinds.enumerate() {
            if shard.len() >= self.inner.cap_per_shard {
                shard.pop_front();
                // ordering: Relaxed — advisory eviction counter, as in
                // record().
                self.inner.evicted.fetch_add(1, Ordering::Relaxed);
            }
            shard.push_back(ObsEvent { t_ms, seq: seq0 + i as u64, kind });
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock_clean().len()).sum()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted by ring overflow. Zero means the
    /// snapshot is a complete record of everything ever recorded.
    pub fn evicted(&self) -> u64 {
        // ordering: Relaxed — advisory counter, meaningful at quiescence.
        self.inner.evicted.load(Ordering::Relaxed)
    }

    /// Total events ever recorded (buffered + evicted).
    pub fn recorded(&self) -> u64 {
        // ordering: Acquire — pairs with the AcqRel fetch_add in
        // record(): observing seq >= n here happens-after everything the
        // thread that claimed n-1 did first, making this a safe
        // high-water mark for snapshot_since polling.
        self.inner.seq.load(Ordering::Acquire)
    }

    /// A merged snapshot of every shard, ordered by sequence number.
    pub fn snapshot(&self) -> Vec<ObsEvent> {
        let mut all: Vec<ObsEvent> = Vec::with_capacity(self.len());
        for s in &self.inner.shards {
            all.extend(s.lock_clean().iter().cloned());
        }
        all.sort_by_key(|e| e.seq);
        all
    }

    /// Like [`TraceBuf::snapshot`], but only events with `seq > after`;
    /// for incremental online consumption.
    ///
    /// A writer that has claimed a sequence number but not yet pushed
    /// into its shard is invisible to this call, so one poll may see
    /// seq `n+1` without `n`; a later poll (same `after`) fills the
    /// gap, and at quiescence the record is complete. The
    /// `ring_snapshot_since_gap` gcs-mc model (crates/obs/tests/
    /// mc_ring.rs) explores every bounded interleaving of this
    /// protocol: it witnesses the transient gap and proves it is the
    /// *only* anomaly — no event is lost, duplicated, or reordered
    /// past [`TraceBuf::recorded`], and quiescent snapshots are always
    /// a complete, seq-unique prefix.
    pub fn snapshot_since(&self, after: u64) -> Vec<ObsEvent> {
        let mut all: Vec<ObsEvent> = Vec::new();
        for s in &self.inner.shards {
            all.extend(s.lock_clean().iter().filter(|e| e.seq > after).cloned());
        }
        all.sort_by_key(|e| e.seq);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_back_in_sequence_order() {
        let t: TraceBuf = TraceBuf::new();
        for i in 0..100 {
            t.record(EventKind::Bcast { node: 0, value: i });
        }
        let snap = t.snapshot();
        assert_eq!(snap.len(), 100);
        for w in snap.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        assert_eq!(t.evicted(), 0);
        assert_eq!(t.recorded(), 100);
    }

    #[test]
    fn manual_clock_stamps_virtual_time() {
        let t: TraceBuf = TraceBuf::with_manual_clock(64);
        t.record(EventKind::Bcast { node: 0, value: 1 });
        t.set_now_ms(250);
        t.record(EventKind::Brcv { node: 1, src: 0, value: 1 });
        t.set_now_ms(100); // backwards: ignored
        t.record(EventKind::Bcast { node: 0, value: 2 });
        let snap = t.snapshot();
        assert_eq!(snap.iter().map(|e| e.t_ms).collect::<Vec<_>>(), vec![0, 250, 250]);
        assert_eq!(t.now_ms(), 250);
    }

    #[test]
    fn overflow_evicts_and_counts() {
        let t: TraceBuf = TraceBuf::with_capacity(8); // 1 slot per shard
        for i in 0..100 {
            t.record(EventKind::Bcast { node: 0, value: i });
        }
        assert!(t.len() <= 8);
        assert_eq!(t.evicted() + t.len() as u64, 100);
        assert_eq!(t.recorded(), 100);
    }

    #[test]
    fn snapshot_since_is_incremental() {
        let t: TraceBuf = TraceBuf::new();
        for i in 0..10 {
            t.record(EventKind::Bcast { node: 0, value: i });
        }
        let first = t.snapshot();
        let last_seq = first.last().unwrap().seq;
        for i in 10..15 {
            t.record(EventKind::Bcast { node: 0, value: i });
        }
        let rest = t.snapshot_since(last_seq);
        assert_eq!(rest.len(), 5);
        assert!(rest.iter().all(|e| e.seq > last_seq));
    }

    #[test]
    fn concurrent_writers_interleave_consistently() {
        let t: TraceBuf = TraceBuf::new();
        std::thread::scope(|s| {
            for n in 0..4u32 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        t.record(EventKind::Send { from: n, to: i % 5 });
                    }
                });
            }
        });
        let snap = t.snapshot();
        assert_eq!(snap.len(), 4000);
        // Sequence numbers are unique and sorted.
        for w in snap.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }
}
