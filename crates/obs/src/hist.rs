//! A fixed-bucket log-scale histogram with lock-free recording.
//!
//! Buckets are laid out HdrHistogram-style: values below `2^SUB_BITS`
//! get one exact bucket each, and every octave above that is split into
//! `2^SUB_BITS` sub-buckets, so the relative quantization error is at
//! most `2^-SUB_BITS` (12.5% with the 3 sub-bits used here, halved on
//! average by the in-bucket interpolation). The bucket count is fixed at
//! compile time, so a histogram is a flat array of atomics: recording is
//! a handful of relaxed atomic adds, snapshots are a plain copy, and two
//! histograms merge by adding buckets.
//!
//! Percentile estimation interpolates linearly inside the target bucket
//! and clamps the bucket's edges to the *observed* minimum and maximum.
//! The clamp is what keeps the top bucket honest: without it, a p99/p100
//! query landing in the highest occupied bucket reports the bucket's
//! upper edge — up to 12.5% above any value ever recorded (and for the
//! final overflow bucket, `u64::MAX`). With it, `percentile(100.0)` is
//! exactly the recorded maximum.
//!
//! Like the rest of the crate's concurrent core, the histogram is
//! generic over the [`gcs_mc::Shims`] sync surface: `StdShims` (the
//! default) in production, `McShims` under the model checker (see
//! crates/obs/tests/mc_registry.rs and docs/CONCURRENCY.md).

use gcs_mc::{AtomicU64Api, Shims, StdShims};
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

type A64<S> = <S as Shims>::AtomicU64;

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;

/// Total bucket count for the full `u64` range.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Index of the bucket holding `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let base = (msb - SUB_BITS + 1) as usize * SUB;
        let sub = ((v >> (msb - SUB_BITS)) as usize) - SUB;
        base + sub
    }
}

/// The smallest value mapping to bucket `i`.
#[inline]
fn lower_bound(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let octave = (i / SUB) as u32; // = msb - SUB_BITS + 1
        let sub = (i % SUB) as u64;
        (SUB as u64 + sub) << (octave - 1)
    }
}

/// The largest value mapping to bucket `i`.
#[inline]
fn upper_bound(i: usize) -> u64 {
    if i + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        lower_bound(i + 1) - 1
    }
}

/// The shared histogram core: a flat array of atomic bucket counts plus
/// count/sum/min/max. All methods take `&self`; recording is wait-free.
pub(crate) struct HistCore<S: Shims = StdShims> {
    buckets: Vec<A64<S>>,
    count: A64<S>,
    sum: A64<S>,
    min: A64<S>,
    max: A64<S>,
}

impl<S: Shims> fmt::Debug for HistCore<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HistCore").finish_non_exhaustive()
    }
}

impl<S: Shims> HistCore<S> {
    fn new() -> Self {
        HistCore {
            buckets: (0..NUM_BUCKETS).map(|_| A64::<S>::new(0)).collect(),
            count: A64::<S>::new(0),
            sum: A64::<S>::new(0),
            min: A64::<S>::new(u64::MAX),
            max: A64::<S>::new(0),
        }
    }

    fn record(&self, v: u64) {
        // ordering: Relaxed throughout — independent statistical RMW
        // counters, no cross-field consistency claimed; snapshots are
        // advisory. The `registry_scrape_under_write` gcs-mc model checks
        // this: per-cell exactness at quiescence, torn cuts tolerated.
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            // ordering: Relaxed throughout — advisory reads; a snapshot
            // taken concurrently with record() may see count without sum
            // (or vice versa) and that is accepted, see HistSnapshot docs.
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A concurrently recordable log-scale histogram handle. Cloning shares
/// the underlying buckets.
pub struct Histogram<S: Shims = StdShims> {
    core: Arc<HistCore<S>>,
}

impl<S: Shims> Clone for Histogram<S> {
    fn clone(&self) -> Self {
        Histogram { core: Arc::clone(&self.core) }
    }
}

impl<S: Shims> fmt::Debug for Histogram<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram").finish_non_exhaustive()
    }
}

impl<S: Shims> Default for Histogram<S> {
    fn default() -> Self {
        Histogram::new()
    }
}

impl<S: Shims> Histogram<S> {
    /// A fresh standalone histogram (registry-managed histograms come
    /// from [`crate::Registry::histogram`]).
    pub fn new() -> Self {
        Histogram { core: Arc::new(HistCore::new()) }
    }

    pub(crate) fn from_core(core: Arc<HistCore<S>>) -> Self {
        Histogram { core }
    }

    pub(crate) fn core(&self) -> &Arc<HistCore<S>> {
        &self.core
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.core.record(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        // ordering: Relaxed — advisory statistical read.
        self.core.count.load(Ordering::Relaxed)
    }

    /// Mean of the recorded samples (exact — tracked via the running
    /// sum, not the buckets). 0 when empty.
    pub fn mean(&self) -> u64 {
        self.snapshot().mean()
    }

    /// The `p`-th percentile (0.0–100.0), interpolated within the target
    /// bucket and clamped to the observed min/max. 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        self.snapshot().percentile(p)
    }

    /// The largest recorded sample (exact). 0 when empty.
    pub fn max(&self) -> u64 {
        self.snapshot().max()
    }

    /// The smallest recorded sample (exact). 0 when empty.
    pub fn min(&self) -> u64 {
        self.snapshot().min()
    }

    /// An immutable snapshot of the current contents.
    pub fn snapshot(&self) -> HistSnapshot {
        self.core.snapshot()
    }
}

/// A frozen copy of a histogram's state; what snapshots and merges work
/// with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl HistSnapshot {
    /// An empty snapshot (useful as a merge accumulator).
    pub fn empty() -> Self {
        HistSnapshot { buckets: vec![0; NUM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Exact observed maximum (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact observed minimum (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The `p`-th percentile (0.0–100.0), linearly interpolated within
    /// the target bucket. Bucket edges are clamped to the observed
    /// min/max, so `percentile(100.0)` is exactly [`HistSnapshot::max`]
    /// even when the rank lands in the unbounded top bucket.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                // Interpolate inside this bucket, clamping its edges to
                // what was actually observed (the top-bucket-edge fix).
                let lo = lower_bound(i).max(self.min);
                let hi = upper_bound(i).min(self.max).max(lo);
                let need = rank - cum;
                if need >= c {
                    // The whole bucket is consumed: its (clamped) upper
                    // edge, exactly — no float round-trip, which would
                    // lose low bits on u64-scale spans.
                    return hi;
                }
                let frac = need as f64 / c as f64;
                return (lo + ((hi - lo) as f64 * frac).round() as u64).min(hi);
            }
            cum += c;
        }
        self.max
    }

    /// Folds `other` into `self` (bucket-wise addition; min/max/sum/count
    /// combine exactly).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(upper_bound, cumulative_count)` pairs, the
    /// shape Prometheus histogram exposition wants.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                cum += c;
                out.push((upper_bound(i), cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h: Histogram = Histogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        for p in [0.0, 50.0, 100.0] {
            let got = h.percentile(p);
            assert!(got < 8, "p{p} = {got}");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 7);
        assert_eq!(h.count(), 8);
        assert_eq!(h.mean(), 28 / 8);
    }

    #[test]
    fn bucket_index_bounds_roundtrip() {
        for v in (0..64).chain([100, 1000, 65_535, 1 << 40, u64::MAX - 1, u64::MAX]) {
            let i = bucket_index(v);
            assert!(
                lower_bound(i) <= v && v <= upper_bound(i),
                "v={v} i={i} lo={} hi={}",
                lower_bound(i),
                upper_bound(i)
            );
        }
        // Bucket bounds tile the u64 range without gaps or overlaps.
        for i in 1..NUM_BUCKETS {
            assert_eq!(lower_bound(i), upper_bound(i - 1).wrapping_add(1), "gap at bucket {i}");
        }
    }

    #[test]
    fn percentiles_are_within_bucket_error() {
        let h: Histogram = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        for (p, exact) in [(50.0, 500u64), (90.0, 900), (99.0, 990)] {
            let got = h.percentile(p);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.13, "p{p}: got {got}, exact {exact}, err {err:.3}");
        }
    }

    #[test]
    fn top_bucket_percentile_clamps_to_observed_max() {
        let h: Histogram = Histogram::new();
        // One sample deep inside a wide bucket: every percentile must
        // report a value we actually saw, not the bucket edge.
        h.record(1_000_000);
        assert_eq!(h.percentile(100.0), 1_000_000);
        assert_eq!(h.percentile(99.0), 1_000_000);
        assert_eq!(h.percentile(0.0), 1_000_000);
        // Many samples, then one extreme outlier: p100 is the outlier
        // itself, never the (huge) top bucket edge.
        let h: Histogram = Histogram::new();
        for _ in 0..999 {
            h.record(10);
        }
        h.record(u64::MAX / 3);
        assert_eq!(h.percentile(100.0), u64::MAX / 3);
        assert_eq!(h.max(), u64::MAX / 3);
    }

    #[test]
    fn merge_combines_everything() {
        let a: Histogram = Histogram::new();
        let b: Histogram = Histogram::new();
        for v in 1..=100u64 {
            a.record(v);
        }
        for v in 101..=200u64 {
            b.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 200);
        assert_eq!(m.min(), 1);
        assert_eq!(m.max(), 200);
        assert_eq!(m.sum(), (1..=200u64).sum::<u64>());
        let p50 = m.percentile(50.0);
        assert!((85..=115).contains(&p50), "merged p50 = {p50}");
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h: Histogram = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h: Histogram = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
    }
}
