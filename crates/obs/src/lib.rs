//! # gcs-obs — zero-dependency observability for the GCS stack
//!
//! Three pieces, all pure `std`:
//!
//! - [`metrics`]: a sharded registry of atomic [`Counter`]s,
//!   [`Gauge`]s, and log-scale [`Histogram`]s with mergeable snapshots
//!   and Prometheus-style text rendering ([`Registry::render_text`]).
//! - [`trace`]: a bounded, lock-light structured event ring
//!   ([`TraceBuf`]) with typed events for view changes, sends/receives,
//!   drops, reconnects, and fault injection.
//! - [`monitor`]: online monitors that replay the event stream against
//!   the paper's timing theorems — `b = 9δ + max{π + (n+3)δ, μ}` for
//!   membership stabilization and `d = 2π + nδ` for token-round
//!   delivery ([`StabilizationMonitor`], [`TokenRoundMonitor`]).
//! - [`expose`]: a plain-`TcpListener` text endpoint for scraping the
//!   registry ([`expose::serve`]).
//!
//! [`Obs`] bundles a registry and a trace ring behind one cheap
//! clonable handle; a cluster shares one `Obs` so every node's events
//! land on the same epoch and sequence stream.
//!
//! The concurrent structures ([`Registry`], [`Histogram`], [`TraceBuf`])
//! are generic over the [`gcs_mc::Shims`] sync surface. The default
//! (`StdShims`) monomorphizes to exactly the plain-`std` code it
//! replaced; instantiating with `McShims` runs the identical structure
//! under the gcs-mc model checker, which is how their lock and ordering
//! protocols are verified (crates/obs/tests/mc_*.rs, docs/
//! CONCURRENCY.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expose;
pub mod hist;
pub mod metrics;
pub mod monitor;
pub mod trace;

pub use expose::{fetch_text, serve, MetricsServer};
pub use hist::{HistSnapshot, Histogram};
pub use metrics::{Counter, Gauge, MetricKey, MetricValue, Registry, Snapshot};
pub use monitor::{BoundParams, MonitorReport, StabilizationMonitor, TokenRoundMonitor};
pub use trace::{DropReason, EventKind, FaultKind, ObsEvent, TraceBuf};

/// A registry plus a trace ring under one handle. Cloning shares both.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    /// The metrics registry.
    pub registry: Registry,
    /// The event-tracing ring.
    pub trace: TraceBuf,
}

impl Obs {
    /// An `Obs` with default-capacity tracing (65536 events).
    pub fn new() -> Self {
        Obs::default()
    }

    /// An `Obs` whose trace ring holds up to `capacity` events — use a
    /// generous capacity when a test needs the complete event record
    /// (check [`TraceBuf::evicted`] stays 0).
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Obs { registry: Registry::default(), trace: TraceBuf::with_capacity(capacity) }
    }

    /// An `Obs` whose trace ring runs on a manual (virtual) clock —
    /// the deterministic simulation harness advances it with
    /// [`TraceBuf::set_now_ms`] so the bound monitors consume
    /// virtual-time stamps.
    pub fn with_manual_clock(capacity: usize) -> Self {
        Obs { registry: Registry::default(), trace: TraceBuf::with_manual_clock(capacity) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_clones_share_state() {
        let obs = Obs::new();
        let other = obs.clone();
        other.registry.counter("x_total").inc();
        other.trace.record(EventKind::Bcast { node: 0, value: 1 });
        assert_eq!(obs.registry.counter("x_total").get(), 1);
        assert_eq!(obs.trace.len(), 1);
    }
}
