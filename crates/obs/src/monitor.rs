//! Online monitors for the paper's Section 8 timing bounds.
//!
//! The paper proves two conditional performance properties for the
//! membership/token stack, both relative to a network that has
//! *stabilized* (failure statuses stop changing):
//!
//! - **b = 9δ + max{π + (n+3)δ, μ}** — within `b` of stabilization,
//!   every group member has installed its final view (membership
//!   stabilization, Theorem 8.1 shape);
//! - **d = 2π + nδ** — a message sent in the stabilized view is
//!   delivered/safe everywhere within `d` (two token rotations).
//!
//! The monitors turn these offline theorems into runtime checks over the
//! [`crate::trace`] event stream. Network turbulence is what the stream
//! itself shows — [`EventKind::Fault`], [`EventKind::LinkUp`],
//! [`EventKind::LinkDown`] — so the monitors apply the bounds only where
//! the paper's hypothesis (a stable network) visibly holds:
//!
//! - [`StabilizationMonitor`] flags any view installation later than `b`
//!   after the last link disturbance (or after the stream start, when no
//!   disturbance was ever seen).
//! - [`TokenRoundMonitor`] tracks `Bcast → Brcv` pairs whose submit
//!   happened at least `b` past the last disturbance (so the view had
//!   time to stabilize) and flags pairs slower than `d`, as well as
//!   eligible submits still undelivered `d` after submission.
//!
//! A delay injected *below* the event stream — a slow network violating
//! the configured δ — is exactly what fires these monitors: the trace
//! shows a quiet network, but views form late and deliveries miss `d`.

use crate::trace::{EventKind, ObsEvent};
use std::collections::BTreeMap;

/// The protocol timing parameters the bounds are computed from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundParams {
    /// Group size n.
    pub n: u32,
    /// Good-channel delay δ, in ms.
    pub delta_ms: u64,
    /// Token launch period π, in ms.
    pub pi_ms: u64,
    /// Merge-probe period μ, in ms.
    pub mu_ms: u64,
}

impl BoundParams {
    /// The standard derivation used across this repository:
    /// `π = 2nδ`, `μ = 4nδ`.
    pub fn standard(n: u32, delta_ms: u64) -> Self {
        BoundParams { n, delta_ms, pi_ms: 2 * n as u64 * delta_ms, mu_ms: 4 * n as u64 * delta_ms }
    }

    /// The membership stabilization bound `b = 9δ + max{π + (n+3)δ, μ}`.
    pub fn b_ms(&self) -> u64 {
        9 * self.delta_ms + (self.pi_ms + (self.n as u64 + 3) * self.delta_ms).max(self.mu_ms)
    }

    /// The token-round delivery bound `d = 2π + nδ`.
    pub fn d_ms(&self) -> u64 {
        2 * self.pi_ms + self.n as u64 * self.delta_ms
    }

    /// These parameters with δ/π replaced by effective (adaptive)
    /// values, floored at the configured constants so the bounds only
    /// ever widen.
    fn with_effective(&self, delta_hat_ms: u64, pi_hat_ms: u64) -> Self {
        BoundParams {
            n: self.n,
            delta_ms: delta_hat_ms.max(self.delta_ms),
            pi_ms: pi_hat_ms.max(self.pi_ms),
            mu_ms: self.mu_ms,
        }
    }
}

/// Running maxima of the effective `δ̂/π̂` published by an adaptive
/// detector ([`EventKind::DetectorBound`]), shared by both monitors.
/// Taking the max over the stream keeps the re-derived b/d monotone:
/// sound (a run that violates the widest deadline the detector ever
/// enforced is genuinely late) but conservative.
#[derive(Debug)]
struct EffectiveBounds {
    delta_hat_ms: u64,
    pi_hat_ms: u64,
}

impl EffectiveBounds {
    fn new(params: &BoundParams) -> Self {
        EffectiveBounds { delta_hat_ms: params.delta_ms, pi_hat_ms: params.pi_ms }
    }

    /// Folds one published bound in; returns the re-derived params if
    /// either maximum moved.
    fn absorb(
        &mut self,
        params: &BoundParams,
        delta_hat_ms: u64,
        pi_hat_ms: u64,
    ) -> Option<BoundParams> {
        let d = delta_hat_ms.max(self.delta_hat_ms);
        let p = pi_hat_ms.max(self.pi_hat_ms);
        if d == self.delta_hat_ms && p == self.pi_hat_ms {
            return None;
        }
        self.delta_hat_ms = d;
        self.pi_hat_ms = p;
        Some(params.with_effective(d, p))
    }
}

/// What a monitor concluded.
#[derive(Clone, Debug)]
pub struct MonitorReport {
    /// Which monitor produced this.
    pub name: &'static str,
    /// The bound that was enforced, in ms.
    pub bound_ms: u64,
    /// How many events/pairs were actually checked against the bound.
    pub checked: u64,
    /// Human-readable violation descriptions.
    pub violations: Vec<String>,
}

impl MonitorReport {
    /// Whether no violations were observed.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Online monitor for the membership stabilization bound `b`: every
/// view installation must happen within `b` of the last link
/// disturbance (or of the stream start, for a stream with no
/// disturbances at all). Feed events in stream order.
#[derive(Debug)]
pub struct StabilizationMonitor {
    params: BoundParams,
    b_ms: u64,
    effective: EffectiveBounds,
    last_disturbance: Option<u64>,
    checked: u64,
    violations: Vec<String>,
}

impl StabilizationMonitor {
    /// A monitor enforcing `params.b_ms()`. Under an adaptive detector
    /// the bound is re-derived from the published effective `δ̂/π̂`
    /// (running maxima), so it can only widen.
    pub fn new(params: BoundParams) -> Self {
        StabilizationMonitor {
            params,
            b_ms: params.b_ms(),
            effective: EffectiveBounds::new(&params),
            last_disturbance: None,
            checked: 0,
            violations: Vec::new(),
        }
    }

    /// The enforced bound, in ms.
    pub fn bound_ms(&self) -> u64 {
        self.b_ms
    }

    /// Consumes one event.
    pub fn feed(&mut self, ev: &ObsEvent) {
        match &ev.kind {
            EventKind::Fault { .. } | EventKind::LinkUp { .. } | EventKind::LinkDown { .. } => {
                self.last_disturbance = Some(ev.t_ms);
            }
            EventKind::DetectorBound { delta_hat_ms, pi_hat_ms, .. } => {
                if let Some(p) = self.effective.absorb(&self.params, *delta_hat_ms, *pi_hat_ms) {
                    self.b_ms = p.b_ms();
                }
            }
            EventKind::ViewChange { node, epoch, size } => {
                self.checked += 1;
                // Baseline: the last disturbance, or the trace epoch
                // (t = 0) for an undisturbed stream.
                let t0 = self.last_disturbance.unwrap_or(0);
                let deadline = t0 + self.b_ms;
                if ev.t_ms > deadline {
                    self.violations.push(format!(
                        "view (epoch {epoch}, {size} members) installed at node {node} at \
                         t={} ms, {} ms past the stabilization deadline {} (last \
                         disturbance at {t0} ms, b = {} ms)",
                        ev.t_ms,
                        ev.t_ms - deadline,
                        deadline,
                        self.b_ms
                    ));
                }
            }
            _ => {}
        }
    }

    /// Feeds a whole slice of events in order.
    pub fn feed_all(&mut self, events: &[ObsEvent]) {
        for ev in events {
            self.feed(ev);
        }
    }

    /// Violations observed so far.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// View installations checked so far.
    pub fn checked(&self) -> u64 {
        self.checked
    }

    /// Finalizes the monitor into a report.
    pub fn finish(self) -> MonitorReport {
        let _ = self.params;
        MonitorReport {
            name: "stabilization (b)",
            bound_ms: self.b_ms,
            checked: self.checked,
            violations: self.violations,
        }
    }
}

/// Online monitor for the token-round delivery bound `d`: a value
/// submitted while the network is stable (at least `b` past the last
/// disturbance) must be delivered within `d`. Deliveries spanning a
/// disturbance are excused; eligible submits still pending `d` after
/// submission are flagged by [`TokenRoundMonitor::finish`]. Feed events
/// in stream order.
#[derive(Debug)]
pub struct TokenRoundMonitor {
    params: BoundParams,
    b_ms: u64,
    d_ms: u64,
    effective: EffectiveBounds,
    last_disturbance: Option<u64>,
    disturbances: Vec<u64>,
    /// value → submit time (first submit wins; values are assumed unique
    /// per run, as the load generators guarantee).
    pending: BTreeMap<u64, u64>,
    checked: u64,
    violations: Vec<String>,
}

impl TokenRoundMonitor {
    /// A monitor enforcing `params.d_ms()` for submits at least
    /// `params.b_ms()` past the last disturbance.
    pub fn new(params: BoundParams) -> Self {
        TokenRoundMonitor {
            params,
            b_ms: params.b_ms(),
            d_ms: params.d_ms(),
            effective: EffectiveBounds::new(&params),
            last_disturbance: None,
            disturbances: Vec::new(),
            pending: BTreeMap::new(),
            checked: 0,
            violations: Vec::new(),
        }
    }

    /// The enforced bound, in ms.
    pub fn bound_ms(&self) -> u64 {
        self.d_ms
    }

    /// Whether a submit at `t0` happened in a stabilized window: at
    /// least `b` past the last disturbance (or past the trace epoch,
    /// for an undisturbed stream).
    fn eligible(&self, t0: u64) -> bool {
        t0 >= self.last_disturbance.unwrap_or(0) + self.b_ms
    }

    /// Whether any disturbance falls in `(t0, t1]`.
    fn disturbed_between(&self, t0: u64, t1: u64) -> bool {
        // Disturbance times are appended in order; scan from the back.
        self.disturbances.iter().rev().take_while(|&&d| d > t0).any(|&d| d <= t1)
    }

    /// Consumes one event.
    pub fn feed(&mut self, ev: &ObsEvent) {
        match &ev.kind {
            EventKind::Fault { .. } | EventKind::LinkUp { .. } | EventKind::LinkDown { .. } => {
                self.last_disturbance = Some(ev.t_ms);
                self.disturbances.push(ev.t_ms);
            }
            EventKind::DetectorBound { delta_hat_ms, pi_hat_ms, .. } => {
                if let Some(p) = self.effective.absorb(&self.params, *delta_hat_ms, *pi_hat_ms) {
                    self.b_ms = p.b_ms();
                    self.d_ms = p.d_ms();
                }
            }
            EventKind::Bcast { value, .. } => {
                self.pending.entry(*value).or_insert(ev.t_ms);
            }
            EventKind::Brcv { value, node, .. } => {
                // First delivery anywhere closes the pair.
                if let Some(t0) = self.pending.remove(value) {
                    if !self.eligible(t0) || self.disturbed_between(t0, ev.t_ms) {
                        return;
                    }
                    self.checked += 1;
                    let lat = ev.t_ms.saturating_sub(t0);
                    if lat > self.d_ms {
                        self.violations.push(format!(
                            "value {value} submitted at {t0} ms first delivered (node \
                             {node}) after {lat} ms — exceeds d = {} ms",
                            self.d_ms
                        ));
                    }
                }
            }
            _ => {}
        }
    }

    /// Feeds a whole slice of events in order.
    pub fn feed_all(&mut self, events: &[ObsEvent]) {
        for ev in events {
            self.feed(ev);
        }
    }

    /// Violations observed so far.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Delivery pairs checked so far.
    pub fn checked(&self) -> u64 {
        self.checked
    }

    /// Finalizes at time `now_ms`: eligible submits still undelivered
    /// more than `d` after submission (with no intervening disturbance)
    /// are violations.
    pub fn finish(mut self, now_ms: u64) -> MonitorReport {
        let pending = std::mem::take(&mut self.pending);
        for (value, t0) in pending {
            if self.eligible(t0)
                && !self.disturbed_between(t0, now_ms)
                && now_ms.saturating_sub(t0) > self.d_ms
            {
                self.violations.push(format!(
                    "value {value} submitted at {t0} ms still undelivered at {now_ms} ms \
                     — exceeds d = {} ms",
                    self.d_ms
                ));
            }
        }
        let _ = self.params;
        MonitorReport {
            name: "token round (d)",
            bound_ms: self.d_ms,
            checked: self.checked,
            violations: self.violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::FaultKind;

    fn ev(t_ms: u64, seq: u64, kind: EventKind) -> ObsEvent {
        ObsEvent { t_ms, seq, kind }
    }

    fn params() -> BoundParams {
        // n=3, δ=20 → π=120, μ=240, b = 180 + max(240, 240) = 420, d = 300.
        BoundParams::standard(3, 20)
    }

    #[test]
    fn bounds_match_the_paper_formulas() {
        let p = params();
        let (delta, pi, mu) = (20, 120, 240);
        assert_eq!(p.b_ms(), 9 * delta + (pi + 6 * delta).max(mu));
        assert_eq!(p.d_ms(), 2 * 120 + 3 * 20);
    }

    #[test]
    fn stabilization_passes_timely_views_and_flags_late_ones() {
        let p = params();
        let b = p.b_ms();

        // Views within b of the disturbance: clean.
        let mut m = StabilizationMonitor::new(p);
        m.feed_all(&[
            ev(5, 0, EventKind::ViewChange { node: 0, epoch: 1, size: 3 }),
            ev(1000, 1, EventKind::Fault { node: 0, peer: 2, kind: FaultKind::Sever }),
            ev(1000 + b - 1, 2, EventKind::ViewChange { node: 0, epoch: 2, size: 2 }),
        ]);
        let r = m.finish();
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.checked, 2);

        // A view later than b after the last disturbance: violation.
        let mut m = StabilizationMonitor::new(p);
        m.feed_all(&[
            ev(1000, 0, EventKind::Fault { node: 0, peer: 2, kind: FaultKind::Heal }),
            ev(1000 + b + 50, 1, EventKind::ViewChange { node: 1, epoch: 3, size: 3 }),
        ]);
        let r = m.finish();
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    }

    #[test]
    fn stabilization_uses_stream_start_when_no_disturbance() {
        let p = params();
        let b = p.b_ms();
        let mut m = StabilizationMonitor::new(p);
        m.feed_all(&[
            ev(100, 0, EventKind::Bcast { node: 0, value: 1 }),
            ev(100 + b + 1, 1, EventKind::ViewChange { node: 0, epoch: 2, size: 3 }),
        ]);
        let r = m.finish();
        assert_eq!(r.violations.len(), 1, "churn on a quiet network must fire");
    }

    #[test]
    fn token_round_checks_only_stable_submits() {
        let p = params();
        let (b, d) = (p.b_ms(), p.d_ms());

        let mut m = TokenRoundMonitor::new(p);
        m.feed_all(&[
            // Submit before stabilization: ignored even though slow.
            ev(10, 0, EventKind::Bcast { node: 0, value: 1 }),
            ev(10 + d + 500, 1, EventKind::Brcv { node: 1, src: 0, value: 1 }),
            // Stable fast pair: checked, ok.
            ev(b + 100, 2, EventKind::Bcast { node: 0, value: 2 }),
            ev(b + 150, 3, EventKind::Brcv { node: 1, src: 0, value: 2 }),
            // Stable slow pair: violation.
            ev(b + 200, 4, EventKind::Bcast { node: 0, value: 3 }),
            ev(b + 200 + d + 1, 5, EventKind::Brcv { node: 2, src: 0, value: 3 }),
        ]);
        let r = m.finish(b + 200 + d + 10);
        assert_eq!(r.checked, 2);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    }

    #[test]
    fn token_round_excuses_pairs_spanning_a_disturbance() {
        let p = params();
        let (b, d) = (p.b_ms(), p.d_ms());
        let mut m = TokenRoundMonitor::new(p);
        m.feed_all(&[
            ev(b + 10, 0, EventKind::Bcast { node: 0, value: 7 }),
            ev(b + 20, 1, EventKind::Fault { node: 0, peer: 1, kind: FaultKind::Sever }),
            ev(b + 20 + 2 * d, 2, EventKind::Brcv { node: 1, src: 0, value: 7 }),
        ]);
        let r = m.finish(b + 20 + 2 * d + 1);
        assert_eq!(r.checked, 0, "pair spans a partition, must be excused");
        assert!(r.ok());
    }

    #[test]
    fn detector_bounds_widen_the_stabilization_deadline() {
        let p = params();
        let b = p.b_ms();
        // δ̂ = 60 (3× the configured δ = 20), π̂ unchanged:
        // b̂ = 9·60 + max(120 + 6·60, 240) = 540 + 480 = 1020 > b = 420.
        let b_hat = BoundParams { delta_ms: 60, ..p }.b_ms();
        assert!(b_hat > b);

        // A view past the fixed deadline but within the adaptive one is
        // clean once the detector has published the wider bound...
        let mut m = StabilizationMonitor::new(p);
        m.feed_all(&[
            ev(50, 0, EventKind::DetectorBound { node: 0, delta_hat_ms: 60, pi_hat_ms: 120 }),
            ev(1000, 1, EventKind::Fault { node: 0, peer: 2, kind: FaultKind::Sever }),
            ev(1000 + b + 100, 2, EventKind::ViewChange { node: 0, epoch: 2, size: 2 }),
        ]);
        let r = m.finish();
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.bound_ms, b_hat);

        // ...and still flagged past the widened deadline.
        let mut m = StabilizationMonitor::new(p);
        m.feed_all(&[
            ev(50, 0, EventKind::DetectorBound { node: 0, delta_hat_ms: 60, pi_hat_ms: 120 }),
            ev(1000, 1, EventKind::Fault { node: 0, peer: 2, kind: FaultKind::Sever }),
            ev(1000 + b_hat + 1, 2, EventKind::ViewChange { node: 0, epoch: 2, size: 2 }),
        ]);
        assert_eq!(m.finish().violations.len(), 1);
    }

    #[test]
    fn detector_bounds_take_running_maxima() {
        let p = params();
        let mut m = StabilizationMonitor::new(p);
        m.feed_all(&[
            ev(10, 0, EventKind::DetectorBound { node: 0, delta_hat_ms: 80, pi_hat_ms: 120 }),
            // A later, tighter report must not shrink the bound back.
            ev(20, 1, EventKind::DetectorBound { node: 1, delta_hat_ms: 25, pi_hat_ms: 120 }),
        ]);
        assert_eq!(m.bound_ms(), BoundParams { delta_ms: 80, ..p }.b_ms());
        // And δ̂ below the configured δ is floored at the constant.
        let mut m = StabilizationMonitor::new(p);
        m.feed(&ev(10, 0, EventKind::DetectorBound { node: 0, delta_hat_ms: 1, pi_hat_ms: 1 }));
        assert_eq!(m.bound_ms(), p.b_ms());
    }

    #[test]
    fn detector_bounds_widen_the_delivery_deadline() {
        let p = params();
        let (b, d) = (p.b_ms(), p.d_ms());
        let p_hat = BoundParams { pi_ms: 360, ..p };
        let (b_hat, d_hat) = (p_hat.b_ms(), p_hat.d_ms());
        assert!(d_hat > d);

        // π̂ = 3π: a delivery past the fixed d but within d̂ is clean.
        let mut m = TokenRoundMonitor::new(p);
        m.feed_all(&[
            ev(5, 0, EventKind::DetectorBound { node: 0, delta_hat_ms: 20, pi_hat_ms: 360 }),
            ev(b_hat + 10, 1, EventKind::Bcast { node: 0, value: 4 }),
            ev(b_hat + 10 + d + 50, 2, EventKind::Brcv { node: 1, src: 0, value: 4 }),
        ]);
        let r = m.finish(b_hat + 10 + d_hat + 1000);
        assert_eq!(r.checked, 1);
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.bound_ms, d_hat);

        // Past d̂ it still fires.
        let mut m = TokenRoundMonitor::new(p);
        m.feed_all(&[
            ev(5, 0, EventKind::DetectorBound { node: 0, delta_hat_ms: 20, pi_hat_ms: 360 }),
            ev(b_hat + 10, 1, EventKind::Bcast { node: 0, value: 4 }),
            ev(b_hat + 10 + d_hat + 1, 2, EventKind::Brcv { node: 1, src: 0, value: 4 }),
        ]);
        assert_eq!(m.finish(b_hat + 10 + d_hat + 1000).violations.len(), 1);
    }

    #[test]
    fn token_round_flags_undelivered_submits_at_finish() {
        let p = params();
        let (b, d) = (p.b_ms(), p.d_ms());
        let mut m = TokenRoundMonitor::new(p);
        m.feed(&ev(b + 10, 0, EventKind::Bcast { node: 0, value: 9 }));
        let r = m.finish(b + 10 + d + 100);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    }
}
