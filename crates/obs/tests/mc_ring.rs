//! gcs-mc models for the trace ring: the concurrent record/snapshot
//! protocol, and the `snapshot_since` in-flight-writer gap that PR 5
//! documented as a caveat. The gap model both *witnesses* the transient
//! anomaly (so the documentation is honest) and proves it is benign:
//! no event is lost, duplicated, or left missing at quiescence, under
//! every interleaving within the preemption bound.
//!
//! Compiled out under the `mc-seeded-bug` feature, which deliberately
//! breaks the seq publish ordering these models certify.
#![cfg(not(feature = "mc-seeded-bug"))]

use gcs_mc::{Checker, JoinApi, McShims, Shims};
use gcs_obs::trace::{EventKind, TraceBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

type McTraceBuf = TraceBuf<McShims>;

#[test]
fn ring_concurrent_record_snapshot_is_clean() {
    let report = Checker::new("ring-record-snapshot").check(|| {
        let buf: McTraceBuf = TraceBuf::with_manual_clock(64);
        let mut joins = Vec::new();
        for n in 0..2u32 {
            let b = buf.clone();
            joins.push(McShims::spawn(move || {
                b.record(EventKind::Bcast { node: n, value: n as u64 });
            }));
        }
        // Poll mid-flight, as an online consumer would: whatever is
        // visible must already be seq-unique and sorted.
        let mid = buf.snapshot();
        assert!(mid.len() <= 2);
        for w in mid.windows(2) {
            assert!(w[0].seq < w[1].seq, "dup/unsorted mid-flight snapshot");
        }
        for j in joins {
            j.join();
        }
        // Quiescence: a complete record.
        let fin = buf.snapshot();
        assert_eq!(fin.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(buf.recorded(), 2);
        assert_eq!(buf.evicted(), 0);
    });
    report.assert_ok();
}

#[test]
fn ring_record_many_blocks_are_contiguous() {
    let report = Checker::new("ring-record-many").check(|| {
        let buf: McTraceBuf = TraceBuf::with_manual_clock(64);
        let b = buf.clone();
        let t = McShims::spawn(move || {
            b.record_many([EventKind::Send { from: 0, to: 1 }, EventKind::Send { from: 0, to: 2 }]);
        });
        buf.record(EventKind::Bcast { node: 1, value: 7 });
        t.join();
        let fin = buf.snapshot();
        assert_eq!(fin.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        // The batch's two events hold adjacent sequence numbers in
        // submission order regardless of how the single record lands.
        let batch: Vec<u64> = fin
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Send { .. }))
            .map(|e| e.seq)
            .collect();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[1], batch[0] + 1, "batch split: {batch:?}");
        assert_eq!(buf.recorded(), 3);
    });
    report.assert_ok();
}

/// The PR 5 `snapshot_since` caveat, resolved: a writer preempted
/// between claiming its sequence number and pushing into its shard is
/// invisible to a concurrent poll, so the poll can observe seq `n+1`
/// without `n`. This model (a) asserts the invariants that must hold
/// even mid-flight — visible events are seq-unique and sorted — and
/// (b) proves the gap heals: at quiescence every claimed sequence
/// number is present exactly once. The witness flag confirms the
/// exploration actually visited a gap interleaving, so the caveat text
/// in `TraceBuf::snapshot_since` describes a real (and now
/// model-checked) phenomenon rather than folklore.
#[test]
fn ring_snapshot_since_gap_is_transient_and_heals() {
    let saw_gap = Arc::new(AtomicBool::new(false));
    let saw = Arc::clone(&saw_gap);
    let report = Checker::new("ring-snapshot-since-gap").preemption_bound(2).check(move || {
        let buf: McTraceBuf = TraceBuf::with_manual_clock(64);
        let b = buf.clone();
        let t = McShims::spawn(move || {
            b.record(EventKind::Send { from: 0, to: 1 });
        });
        buf.record(EventKind::Send { from: 1, to: 0 });
        // One online poll racing the spawned writer.
        let polled = buf.snapshot();
        for w in polled.windows(2) {
            assert!(w[0].seq < w[1].seq, "dup/unsorted poll");
        }
        if let Some(last) = polled.last() {
            let present: Vec<u64> = polled.iter().map(|e| e.seq).collect();
            if (0..last.seq).any(|s| !present.contains(&s)) {
                // Witness only: never branch model control flow on
                // this, so the schedule space stays deterministic.
                saw.store(true, Ordering::Relaxed);
            }
        }
        t.join();
        // The gap has healed: complete, seq-unique, nothing evicted.
        let fin = buf.snapshot();
        assert_eq!(fin.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(buf.recorded(), 2);
        assert_eq!(buf.evicted(), 0);
    });
    report.assert_ok();
    assert!(
        saw_gap.load(Ordering::Relaxed),
        "exploration never witnessed the documented transient gap"
    );
}

/// `recorded()` as a high-water cursor: once the Acquire load observes
/// seq == n after joining the writers, everything is visible and the
/// eviction accounting balances. Overflow model: capacity 8 means one
/// slot per shard, so same-shard writers evict.
#[test]
fn ring_overflow_accounting_balances() {
    let report = Checker::new("ring-overflow").check(|| {
        let buf: McTraceBuf = TraceBuf::with_manual_clock(8);
        let b = buf.clone();
        let t = McShims::spawn(move || {
            // Model tid 1 → shard 1.
            b.record(EventKind::Bcast { node: 1, value: 1 });
            b.record(EventKind::Bcast { node: 1, value: 2 });
        });
        buf.record(EventKind::Bcast { node: 0, value: 0 });
        t.join();
        // The spawned writer's second record evicted its first (one
        // slot per shard); main's shard is untouched.
        assert_eq!(buf.recorded(), 3);
        assert_eq!(buf.evicted(), 1);
        assert_eq!(buf.len(), 2);
        let fin = buf.snapshot();
        for w in fin.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    });
    report.assert_ok();
}
