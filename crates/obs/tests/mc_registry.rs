//! gcs-mc models for the sharded metrics registry: concurrent
//! registration must converge on one shared cell, scrapes racing
//! writers must be exact at quiescence (the "merge-under-write"
//! surface), and the histogram's all-Relaxed recording protocol must
//! lose nothing.
//!
//! Compiled out under the `mc-seeded-bug` feature (which breaks the
//! trace ring these builds share a lib with).
#![cfg(not(feature = "mc-seeded-bug"))]

use gcs_mc::{Checker, JoinApi, McShims, Shims};
use gcs_obs::{Histogram, MetricValue, Registry};

#[test]
fn registry_concurrent_registration_shares_one_cell() {
    let report = Checker::new("registry-register").check(|| {
        let r: Registry<McShims> = Registry::new();
        let r2 = r.clone();
        let t = McShims::spawn(move || {
            r2.counter("ops").inc();
        });
        r.counter("ops").inc();
        t.join();
        // Both registrations resolved to the same cell: the join edge
        // makes both RMW increments visible.
        assert_eq!(r.counter("ops").get(), 2);
    });
    report.assert_ok();
}

#[test]
fn registry_scrape_under_write_is_exact_at_quiescence() {
    let report = Checker::new("registry-scrape").check(|| {
        let r: Registry<McShims> = Registry::new();
        let c = r.counter("events");
        let g = r.gauge("depth");
        let (c2, g2) = (c.clone(), g.clone());
        let t = McShims::spawn(move || {
            c2.add(2);
            g2.add(1);
        });
        c.inc();
        g.add(-3);
        // A scrape racing the writer: not a consistent cut, but every
        // value it reports must be one the cell actually held.
        let mid = r.snapshot();
        assert!(mid.counter_value("events", &[]) <= 3);
        t.join();
        // Quiescent scrape: exact totals (counter RMWs never lose an
        // increment; the gauge sums both signed adds).
        let fin = r.snapshot();
        assert_eq!(fin.counter_value("events", &[]), 3);
        assert_eq!(fin.get("depth", &[]), Some(&MetricValue::Gauge(-2)));
    });
    report.assert_ok();
}

#[test]
fn histogram_concurrent_recording_loses_nothing() {
    let report = Checker::new("hist-record").check(|| {
        let h: Histogram<McShims> = Histogram::new();
        let h2 = h.clone();
        let t = McShims::spawn(move || {
            h2.record(10);
        });
        h.record(30);
        t.join();
        // All-Relaxed recording: every cell is still individually
        // exact once the join edge orders the writers.
        let snap = h.snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.sum(), 40);
        assert_eq!(snap.min(), 10);
        assert_eq!(snap.max(), 30);
        assert_eq!(snap.percentile(100.0), 30);
    });
    report.assert_ok();
}

#[test]
fn registry_histogram_handles_share_buckets() {
    let report = Checker::new("registry-hist-share").check(|| {
        let r: Registry<McShims> = Registry::new();
        let r2 = r.clone();
        let t = McShims::spawn(move || {
            r2.histogram("lat").record(5);
        });
        r.histogram("lat").record(7);
        t.join();
        match r.snapshot().get("lat", &[]) {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count(), 2);
                assert_eq!(h.sum(), 12);
            }
            other => panic!("lat missing: {other:?}"),
        }
    });
    report.assert_ok();
}
