//! Meta-test for the happens-before checker: with the `mc-seeded-bug`
//! feature on, the trace ring's seq publish ordering is downgraded
//! from AcqRel to Relaxed (see `SEQ_PUBLISH` in crates/obs/src/
//! trace.rs). The checker must catch the broken publish pair — the
//! Acquire load in `recorded()` claiming an edge the Relaxed fetch_add
//! never provides — with file:line on both sides pointing into
//! trace.rs, and the shipped schedule must replay to the same failure.
//!
//! Run via: cargo test -p gcs-obs --features mc-seeded-bug --test mc_seeded_bug
#![cfg(feature = "mc-seeded-bug")]

use gcs_mc::{Checker, FailureKind, JoinApi, McShims, Shims};
use gcs_obs::trace::{EventKind, TraceBuf};

#[test]
fn seeded_relaxed_publish_is_caught_with_sites_in_trace_rs() {
    let model = || {
        let buf: TraceBuf<McShims> = TraceBuf::with_manual_clock(64);
        let b = buf.clone();
        let t = McShims::spawn(move || {
            b.record(EventKind::Bcast { node: 0, value: 1 });
        });
        // The poller's high-water read: under the seeded Relaxed
        // publish this Acquire load can observe the writer's claim
        // without any release edge behind it.
        let _hi = buf.recorded();
        t.join();
    };
    let report = Checker::new("ring-seeded-relaxed-bug").preemption_bound(1).check(model);
    let f = report.expect_failure();
    match &f.kind {
        FailureKind::VacuousAcquire { store, load } => {
            assert!(store.file.ends_with("trace.rs"), "store site: {store}");
            assert!(load.file.ends_with("trace.rs"), "load site: {load}");
            assert_ne!(store.line, load.line, "sites must be distinct lines");
        }
        other => panic!("expected VacuousAcquire, got {other}"),
    }
    assert!(report.artifact.is_some(), "repro artifact must be written");

    // The schedule in the artifact is a deterministic repro.
    let replayed = Checker::new("ring-seeded-replay").replay(model, &f.schedule);
    let rf = replayed.expect_failure();
    assert!(matches!(rf.kind, FailureKind::VacuousAcquire { .. }), "replay produced {}", rf.kind);
    assert_eq!(rf.digest, f.digest, "replay diverged from the original execution");
}
