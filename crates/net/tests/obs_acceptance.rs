//! The observability acceptance scenario: a five-node loopback cluster
//! under partition/merge fault injection serves a metrics endpoint whose
//! counters reconcile exactly with the merged trace ring, and the online
//! b/d bound monitors pass on a clean run but fire when a covert send
//! delay violates the configured δ underneath a quiet-looking network.

use gcs_core::cause::check_trace;
use gcs_core::to_trace::check_to_trace;
use gcs_model::{ProcId, Value};
use gcs_net::cluster::{ClusterConfig, LoopbackCluster};
use gcs_net::transport::TransportConfig;
use gcs_obs::{BoundParams, EventKind, Obs, StabilizationMonitor, TokenRoundMonitor};
use gcs_vsimpl::convert::{to_obs, vs_actions};
use std::net::TcpListener;
use std::time::{Duration, Instant};

fn wait_for(deadline: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn full_view_everywhere(cluster: &LoopbackCluster) -> bool {
    let n = cluster.n();
    cluster.views().iter().all(|vs| vs.last().is_some_and(|v| v.size() == n as usize))
}

fn assert_checkers_pass(
    cluster_trace: &gcs_ioa::TimedTrace<gcs_netsim::TraceEvent<gcs_vsimpl::ImplEvent>>,
    n: u32,
) {
    let to = check_to_trace(&to_obs(cluster_trace).untimed());
    assert!(to.ok(), "TO checker failed: {:?}", to.violations.first());
    let cause = check_trace(&vs_actions(cluster_trace), &ProcId::range(n));
    assert!(cause.ok(), "cause checker failed: {:?}", cause.violations.first());
}

/// The latest disturbance (fault injection or link churn) in the stream,
/// or 0 for a stream without one.
fn last_disturbance_ms(obs: &Obs) -> u64 {
    obs.trace
        .snapshot()
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::Fault { .. } | EventKind::LinkUp { .. } | EventKind::LinkDown { .. }
            )
        })
        .map(|e| e.t_ms)
        .max()
        .unwrap_or(0)
}

/// Waits until the registry and trace have stopped moving (detached
/// reader threads finish their last event after a stop).
fn settle(obs: &Obs) {
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut last = (0u64, String::new());
    while Instant::now() < deadline {
        let now = (obs.trace.recorded(), obs.registry.render_text());
        if now == last {
            return;
        }
        last = now;
        std::thread::sleep(Duration::from_millis(200));
    }
}

/// Counters served over the metrics endpoint reconcile with the merged
/// trace ring: sends, receives, drops, rejects, view installs, submits
/// and deliveries each match their trace event counts one-for-one, and
/// `sent ≥ recv + rejected` (the residual is frames lost or buffered in
/// kicked sockets — frames are never conjured).
#[test]
fn metrics_endpoint_reconciles_with_merged_trace() {
    let n = 5u32;
    let obs = Obs::with_trace_capacity(1 << 20);
    let cluster = LoopbackCluster::start_with_obs(ClusterConfig::patient(n), obs.clone())
        .expect("bind loopback");
    assert!(
        wait_for(Duration::from_secs(30), || full_view_everywhere(&cluster)),
        "initial view never formed"
    );

    // Steady state.
    let mut next = 1u64;
    for _ in 0..100 {
        cluster.submit(ProcId((next % n as u64) as u32), Value::from_u64(next));
        next += 1;
    }
    assert!(cluster.await_deliveries(100, Duration::from_secs(60)), "phase 1 stalled");

    // Socket churn: kill the live p0↔p1 connections mid-view.
    let t0 = cluster.node(ProcId(0)).transport();
    let gen_before = t0.generation(ProcId(1));
    cluster.kick_pair(ProcId(0), ProcId(1));
    assert!(
        wait_for(Duration::from_secs(10), || {
            t0.generation(ProcId(1)) > gen_before && t0.connected(ProcId(1))
        }),
        "p0 never reconnected to p1"
    );

    // Partition p4 away, keep the majority delivering, then merge.
    let pre_partition_epoch = cluster.views()[0].last().expect("has view").id.epoch;
    cluster.isolate(ProcId(4));
    assert!(
        wait_for(Duration::from_secs(60), || {
            (0..4).all(|i| cluster.views()[i].last().is_some_and(|v| !v.set.contains(&ProcId(4))))
        }),
        "majority never reformed without p4"
    );
    for _ in 0..100 {
        cluster.submit(ProcId((next % 4) as u32), Value::from_u64(next));
        next += 1;
    }
    assert!(
        wait_for(Duration::from_secs(120), || {
            cluster.delivered()[..4].iter().all(|d| d.len() >= 200)
        }),
        "majority stalled during partition"
    );
    cluster.rejoin(ProcId(4));
    assert!(
        wait_for(Duration::from_secs(60), || {
            cluster.views().iter().all(|vs| {
                vs.last().is_some_and(|v| v.size() == 5 && v.id.epoch > pre_partition_epoch)
            })
        }),
        "merge view never formed"
    );
    for _ in 0..100 {
        cluster.submit(ProcId((next % n as u64) as u32), Value::from_u64(next));
        next += 1;
    }
    assert!(cluster.await_deliveries(300, Duration::from_secs(120)), "final stall");

    let delivered = cluster.delivered();
    let cluster_trace = cluster.stop();
    settle(&obs);
    for (i, d) in delivered.iter().enumerate() {
        assert_eq!(&delivered[0][..300], &d[..300], "total orders diverge at node {i}");
    }
    assert_checkers_pass(&cluster_trace, n);

    // The trace ring held the complete run.
    assert_eq!(obs.trace.evicted(), 0, "trace window must cover the whole run");
    let events = obs.trace.snapshot();
    let count =
        |pred: fn(&EventKind) -> bool| events.iter().filter(|e| pred(&e.kind)).count() as u64;
    let sends = count(|k| matches!(k, EventKind::Send { .. }));
    let recvs = count(|k| matches!(k, EventKind::Recv { .. }));
    let drops = count(|k| matches!(k, EventKind::Drop { .. }));
    let rejects = count(|k| matches!(k, EventKind::Reject { .. }));
    let views = count(|k| matches!(k, EventKind::ViewChange { .. }));
    let bcasts = count(|k| matches!(k, EventKind::Bcast { .. }));
    let brcvs = count(|k| matches!(k, EventKind::Brcv { .. }));
    let faults = count(|k| matches!(k, EventKind::Fault { .. }));

    // Counter ↔ trace reconciliation, name by name.
    let snap = obs.registry.snapshot();
    assert_eq!(snap.counter_total("net_frames_sent_total"), sends);
    assert_eq!(snap.counter_total("net_frames_recv_total"), recvs);
    assert_eq!(snap.counter_total("net_frames_dropped_total"), drops);
    assert_eq!(snap.counter_total("net_frames_rejected_total"), rejects);
    assert_eq!(snap.counter_total("node_views_installed_total"), views);
    assert_eq!(snap.counter_total("node_submits_total"), bcasts);
    assert_eq!(snap.counter_total("node_deliveries_total"), brcvs);
    assert_eq!(snap.counter_total("net_faults_injected_total"), faults);

    // Flow conservation: every frame handed to the runtime or rejected
    // was first written somewhere; the residual is in-flight/lost.
    assert!(sends >= recvs + rejects, "sends={sends} < recvs={recvs} + rejects={rejects}");
    assert!(drops > 0, "the partition must produce counted drops");
    assert!(views >= n as u64, "partition and merge must install views everywhere");
    assert_eq!(bcasts, 300, "every submit must be traced");
    assert_eq!(brcvs, delivered.iter().map(|d| d.len() as u64).sum::<u64>());

    // The endpoint serves exactly the registry's current rendering.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind metrics");
    let addr = listener.local_addr().expect("metrics addr");
    let server = gcs_obs::serve(listener, obs.registry.clone()).expect("serve metrics");
    let body = gcs_obs::fetch_text(addr).expect("scrape metrics");
    server.stop();
    assert_eq!(body, obs.registry.render_text());
    assert!(body.contains("net_frames_sent_total{node=\"0\"}"));
    assert!(body.contains("node_deliveries_total{node=\"4\"}"));
}

/// On a clean run — patient δ, no fault injection — both bound monitors
/// pass: no view installs later than `b` after the network quiesces, and
/// every stable-window submit is delivered within `d`.
#[test]
fn bound_monitors_pass_on_a_clean_run() {
    let n = 5u32;
    let delta_ms = 200u64;
    let params = BoundParams::standard(n, delta_ms);
    let obs = Obs::with_trace_capacity(1 << 18);
    let cluster = LoopbackCluster::start_with_obs(
        ClusterConfig { n, delta_ms, transport: TransportConfig::default() },
        obs.clone(),
    )
    .expect("bind loopback");
    assert!(
        wait_for(Duration::from_secs(30), || full_view_everywhere(&cluster)),
        "initial view never formed"
    );

    // Let the boot-time link establishment age past b, so the submits
    // below land in a provably stabilized window.
    let quiesced = wait_for(Duration::from_secs(60), || {
        obs.trace.now_ms() > last_disturbance_ms(&obs) + params.b_ms() + 100
    });
    assert!(quiesced, "network never quiesced");

    const OPS: u64 = 25;
    for i in 1..=OPS {
        cluster.submit(ProcId((i % n as u64) as u32), Value::from_u64(i));
    }
    assert!(
        cluster.await_deliveries(OPS as usize, Duration::from_secs(60)),
        "clean-run deliveries stalled"
    );
    std::thread::sleep(Duration::from_millis(200));

    let events = obs.trace.snapshot();
    let now_ms = obs.trace.now_ms();
    let mut stab = StabilizationMonitor::new(params);
    let mut round = TokenRoundMonitor::new(params);
    stab.feed_all(&events);
    round.feed_all(&events);
    let stab = stab.finish();
    let round = round.finish(now_ms);
    assert!(stab.ok(), "stabilization violations on a clean run: {:?}", stab.violations);
    assert!(round.ok(), "token-round violations on a clean run: {:?}", round.violations);
    assert_eq!(round.checked, OPS, "every stable-window submit must be checked");
    cluster.stop();
}

/// A covert delay injected *below* the event stream — every outbound
/// frame sleeps 150 ms while the trace shows a quiet network — breaks
/// both bounds for δ = 20 ms, and the monitors catch it: views churn
/// past the stabilization deadline (token rotation now exceeds the token
/// timeout) and deliveries miss `d` or never arrive.
#[test]
fn bound_monitors_fire_under_covert_send_delay() {
    let n = 3u32;
    let delta_ms = 20u64;
    let params = BoundParams::standard(n, delta_ms); // b = 420 ms, d = 300 ms
    let obs = Obs::with_trace_capacity(1 << 18);
    let cluster = LoopbackCluster::start_with_obs(
        ClusterConfig {
            n,
            delta_ms,
            transport: TransportConfig {
                inject_send_delay: Some(Duration::from_millis(150)),
                ..Default::default()
            },
        },
        obs.clone(),
    )
    .expect("bind loopback");

    // Links come up promptly (the Hello handshake is not delayed); after
    // that the stream looks quiet while every frame crawls.
    assert!(
        wait_for(Duration::from_secs(10), || {
            (0..n).all(|p| {
                (0..n).all(|q| p == q || cluster.node(ProcId(p)).transport().connected(ProcId(q)))
            })
        }),
        "links never came up"
    );

    // Submit well past b from the boot disturbances so the pairs are
    // eligible, spread out so some land mid-churn.
    std::thread::sleep(Duration::from_millis(2 * params.b_ms()));
    for i in 1..=30u64 {
        cluster.submit(ProcId((i % n as u64) as u32), Value::from_u64(i));
        std::thread::sleep(Duration::from_millis(100));
    }
    std::thread::sleep(Duration::from_secs(2));

    let events = obs.trace.snapshot();
    let now_ms = obs.trace.now_ms();
    let mut stab = StabilizationMonitor::new(params);
    let mut round = TokenRoundMonitor::new(params);
    stab.feed_all(&events);
    round.feed_all(&events);
    let stab = stab.finish();
    let round = round.finish(now_ms);
    assert!(
        !stab.ok(),
        "a 150 ms per-frame delay must drive view churn past b = {} ms (checked {})",
        stab.bound_ms,
        stab.checked
    );
    assert!(
        !round.ok(),
        "deliveries over 150 ms hops cannot meet d = {} ms (checked {})",
        round.bound_ms,
        round.checked
    );
    cluster.stop();
}
