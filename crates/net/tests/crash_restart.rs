//! Crash/recovery integration test: a node stops abruptly (losing its
//! volatile view, token, and buffers), the majority reforms without it,
//! and a restarted incarnation recovers from its stable-storage
//! snapshot, re-merges, and catches up on everything it missed — with
//! no value delivered twice at any location and the merged
//! cross-incarnation trace passing the VS/TO safety checkers.

use gcs_core::cause::check_trace;
use gcs_core::to_trace::check_to_trace;
use gcs_model::{ProcId, Value};
use gcs_net::cluster::{ClusterConfig, LoopbackCluster};
use gcs_vsimpl::convert::{to_obs, vs_actions};
use std::collections::HashSet;
use std::time::{Duration, Instant};

fn wait_for(deadline: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn full_view_everywhere(cluster: &LoopbackCluster) -> bool {
    let n = cluster.n();
    cluster.views().iter().all(|vs| vs.last().is_some_and(|v| v.size() == n as usize))
}

#[test]
fn crash_and_restart_recovers_without_duplicate_deliveries() {
    let n = 3u32;
    let mut cluster = LoopbackCluster::start(ClusterConfig::patient(n)).expect("bind loopback");
    assert!(
        wait_for(Duration::from_secs(20), || full_view_everywhere(&cluster)),
        "initial view never formed: {:?}",
        cluster.views()
    );

    // Phase 1: steady state with everyone up.
    for i in 1..=20u64 {
        cluster.submit(ProcId((i % 3) as u32), Value::from_u64(i));
    }
    assert!(cluster.await_deliveries(20, Duration::from_secs(30)), "phase 1 stalled");

    // Crash p2 abruptly. The survivors must install a view without it.
    let epoch_before = cluster.views()[0].last().expect("has view").id.epoch;
    cluster.crash(ProcId(2));
    assert!(
        wait_for(Duration::from_secs(60), || {
            cluster.views()[..2]
                .iter()
                .all(|vs| vs.last().is_some_and(|v| !v.set.contains(&ProcId(2))))
        }),
        "majority never reformed without p2: {:?}",
        cluster.views()
    );

    // Phase 2: the majority keeps delivering while p2 is down.
    // (`await_deliveries` only counts live nodes.)
    for i in 21..=40u64 {
        cluster.submit(ProcId((i % 2) as u32), Value::from_u64(i));
    }
    assert!(cluster.await_deliveries(40, Duration::from_secs(60)), "majority stalled");

    // Restart p2 from stable storage: it rebinds the same port under a
    // fresh incarnation, re-merges into a full view, and the state
    // exchange brings it everything it missed.
    cluster.restart(ProcId(2)).expect("restart p2");
    assert!(
        wait_for(Duration::from_secs(60), || {
            cluster
                .views()
                .iter()
                .all(|vs| vs.last().is_some_and(|v| v.size() == 3 && v.id.epoch > epoch_before))
        }),
        "post-restart merge never formed: {:?}",
        cluster.views()
    );

    // Phase 3: steady state again, restarted node included.
    for i in 41..=60u64 {
        cluster.submit(ProcId((i % 3) as u32), Value::from_u64(i));
    }
    assert!(
        cluster.await_deliveries(60, Duration::from_secs(120)),
        "post-restart deliveries stalled: {:?}",
        cluster.delivered().iter().map(|d| d.len()).collect::<Vec<_>>()
    );

    // One total order everywhere, spanning p2's two incarnations: the
    // concatenation of its pre-crash and post-restart deliveries is the
    // client-visible sequence, and recovery must neither replay a value
    // already delivered nor skip one it missed while down.
    let delivered = cluster.delivered();
    for (i, d) in delivered.iter().enumerate() {
        assert!(d.len() >= 60, "node {i} delivered only {} of 60", d.len());
        assert_eq!(&delivered[0][..60], &d[..60], "total orders diverge at node {i}");
        let distinct: HashSet<&Value> = d.iter().map(|(_, a)| a).collect();
        assert_eq!(distinct.len(), d.len(), "node {i} delivered a value twice");
    }

    // The merged trace — every incarnation of every node — satisfies the
    // same specifications the simulator is checked against, and shutdown
    // leaks no threads.
    let (trace, shutdown) = cluster.stop_report();
    assert!(shutdown.clean(), "leaked {} transport threads", shutdown.leaked);
    let to = check_to_trace(&to_obs(&trace).untimed());
    assert!(to.ok(), "TO checker failed: {:?}", to.violations.first());
    let cause = check_trace(&vs_actions(&trace), &ProcId::range(n));
    assert!(cause.ok(), "cause checker failed: {:?}", cause.violations.first());
}
