//! Integration tests for the TCP stack: a loopback cluster delivering
//! client operations in total order, surviving socket loss and emulated
//! partitions, with every recorded trace passing the same VS/TO safety
//! checkers the simulator runs against.

use gcs_core::cause::check_trace;
use gcs_core::to_trace::check_to_trace;
use gcs_model::{ProcId, Value, View};
use gcs_net::cluster::{ClusterConfig, LoopbackCluster};
use gcs_net::load::{run_load, LoadConfig, LoadMode};
use gcs_vsimpl::convert::{to_obs, vs_actions};
use std::time::{Duration, Instant};

/// Polls until `pred` holds or the deadline passes.
fn wait_for(deadline: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

/// Every node has installed a view containing exactly the full set.
fn full_view_everywhere(cluster: &LoopbackCluster) -> bool {
    let n = cluster.n();
    cluster.views().iter().all(|vs| vs.last().is_some_and(|v| v.size() == n as usize))
}

fn assert_total_order_prefix(delivered: &[Vec<(ProcId, Value)>], count: usize) {
    for (i, d) in delivered.iter().enumerate() {
        assert!(d.len() >= count, "node {i} delivered only {} of {count}", d.len());
        assert_eq!(&delivered[0][..count], &d[..count], "total orders diverge at node {i}");
    }
}

fn assert_checkers_pass(
    trace: &gcs_ioa::TimedTrace<gcs_netsim::TraceEvent<gcs_vsimpl::ImplEvent>>,
    n: u32,
) {
    let to = check_to_trace(&to_obs(trace).untimed());
    assert!(to.ok(), "TO checker failed: {:?}", to.violations.first());
    let cause = check_trace(&vs_actions(trace), &ProcId::range(n));
    assert!(cause.ok(), "cause checker failed: {:?}", cause.violations.first());
}

#[test]
fn three_node_cluster_delivers_in_total_order() {
    let cluster = LoopbackCluster::start(ClusterConfig::patient(3)).expect("bind loopback");
    assert!(
        wait_for(Duration::from_secs(20), || full_view_everywhere(&cluster)),
        "initial view never formed: {:?}",
        cluster.views()
    );
    for i in 0..30u64 {
        cluster.submit(ProcId((i % 3) as u32), Value::from_u64(i + 1));
    }
    assert!(
        cluster.await_deliveries(30, Duration::from_secs(30)),
        "deliveries timed out: {:?}",
        cluster.delivered().iter().map(|d| d.len()).collect::<Vec<_>>()
    );
    let delivered = cluster.delivered();
    let trace = cluster.stop();
    assert_total_order_prefix(&delivered, 30);
    assert_checkers_pass(&trace, 3);
}

#[test]
fn tcp_client_load_generator_round_trips() {
    let cluster = LoopbackCluster::start(ClusterConfig::patient(3)).expect("bind loopback");
    assert!(
        wait_for(Duration::from_secs(20), || full_view_everywhere(&cluster)),
        "initial view never formed"
    );
    let report = run_load(
        cluster.addr(ProcId(0)),
        &LoadConfig {
            ops: 200,
            value_base: 1,
            mode: LoadMode::Closed { window: 16 },
            idle_timeout: Duration::from_secs(30),
            warmup: 0,
        },
    )
    .expect("client connects");
    assert_eq!(report.submitted, 200);
    assert_eq!(report.delivered, 200, "client lost operations");
    assert_eq!(report.latency_us.count(), 200);
    assert!(report.latency_us.mean() > 0);
    // The other nodes deliver the client's operations too.
    assert!(cluster.await_deliveries(200, Duration::from_secs(30)), "peers missed client traffic");
    let trace = cluster.stop();
    assert_checkers_pass(&trace, 3);
}

/// The ISSUE acceptance scenario: a 5-node loopback cluster delivers
/// ≥ 10k client operations in total order across all nodes, survives a
/// forced TCP disconnect/reconnect, a partition and a merge (both
/// observed as view changes), and the merged recorded trace passes the
/// existing VS/TO safety checkers.
#[test]
fn five_node_cluster_10k_ops_survives_partition_and_merge() {
    const TOTAL: u64 = 10_000;
    let n = 5u32;
    // δ sets the protocol's patience. At this volume the state-exchange
    // summaries carry thousands of entries, and (in debug builds) merging
    // them on view establishment can hold the token for hundreds of
    // milliseconds — a short token timeout would kill each freshly formed
    // view during its own establishment and churn forever. δ = 150 ms
    // gives a token timeout of π + (n+3)δ ≈ 2.7 s, comfortably above
    // that.
    let cluster =
        LoopbackCluster::start(ClusterConfig { n, delta_ms: 150, transport: Default::default() })
            .expect("bind loopback");
    assert!(
        wait_for(Duration::from_secs(30), || full_view_everywhere(&cluster)),
        "initial view never formed: {:?}",
        cluster.views()
    );

    // Phase 1: steady state. 4k operations round-robin.
    let mut next = 1u64;
    for _ in 0..4_000 {
        cluster.submit(ProcId((next % n as u64) as u32), Value::from_u64(next));
        next += 1;
    }
    assert!(
        cluster.await_deliveries(4_000, Duration::from_secs(120)),
        "phase 1 deliveries timed out: {:?}",
        cluster.delivered().iter().map(|d| d.len()).collect::<Vec<_>>()
    );

    // Forced TCP disconnect: kill the live sockets between p0 and p1.
    // The writers must reconnect (fresh connection generation) and the
    // ring must keep delivering.
    let t0 = cluster.node(ProcId(0)).transport();
    let gen_before = t0.generation(ProcId(1));
    cluster.kick_pair(ProcId(0), ProcId(1));
    assert!(
        wait_for(Duration::from_secs(10), || {
            t0.generation(ProcId(1)) > gen_before && t0.connected(ProcId(1))
        }),
        "p0 never re-established its link to p1"
    );

    // Phase 2: partition p4 away. The majority must reform without it
    // (partition observed as a view change) and keep delivering.
    let pre_partition_epoch = cluster.views()[0].last().expect("has view").id.epoch;
    cluster.isolate(ProcId(4));
    let majority_reformed = |vs: &[Vec<View>]| {
        (0..4).all(|i| {
            vs[i]
                .last()
                .is_some_and(|v| !v.set.contains(&ProcId(4)) && v.set.contains(&ProcId(i as u32)))
        })
    };
    assert!(
        wait_for(Duration::from_secs(60), || majority_reformed(&cluster.views())),
        "majority never reformed without p4: {:?}",
        cluster.views()
    );
    for _ in 0..3_000 {
        cluster.submit(ProcId((next % 4) as u32), Value::from_u64(next));
        next += 1;
    }
    let majority_caught_up = wait_for(Duration::from_secs(120), || {
        cluster.delivered()[..4].iter().all(|d| d.len() >= 7_000)
    });
    assert!(
        majority_caught_up,
        "majority stalled during partition: {:?}",
        cluster.delivered().iter().map(|d| d.len()).collect::<Vec<_>>()
    );

    // Phase 3: merge. Everyone must install a full view again with a
    // higher epoch, and p4 must catch up on everything it missed.
    cluster.rejoin(ProcId(4));
    assert!(
        wait_for(Duration::from_secs(60), || {
            cluster.views().iter().all(|vs| {
                vs.last().is_some_and(|v| v.size() == 5 && v.id.epoch > pre_partition_epoch)
            })
        }),
        "merge view never formed: {:?}",
        cluster.views()
    );
    for _ in 0..3_000 {
        cluster.submit(ProcId((next % n as u64) as u32), Value::from_u64(next));
        next += 1;
    }
    assert_eq!(next - 1, TOTAL);
    assert!(
        cluster.await_deliveries(TOTAL as usize, Duration::from_secs(300)),
        "final deliveries timed out: {:?}",
        cluster.delivered().iter().map(|d| d.len()).collect::<Vec<_>>()
    );

    // One total order across all five nodes, all 10k operations.
    let delivered = cluster.delivered();
    assert_total_order_prefix(&delivered, TOTAL as usize);

    // The partition and the merge were both observed as view changes at
    // the isolated node too.
    let p4_views = &cluster.views()[4];
    assert!(
        p4_views.iter().any(|v| v.size() < 5),
        "p4 never installed a minority view: {p4_views:?}"
    );
    let last4 = p4_views.last().expect("p4 has views");
    assert!(last4.size() == 5 && last4.id.epoch > pre_partition_epoch);

    // The merged wall-clock trace satisfies the same specifications the
    // simulator is checked against.
    let trace = cluster.stop();
    assert_checkers_pass(&trace, n);
}

/// The fault-injection satellite: kill a live TCP connection mid-view,
/// assert the transport reconnects with backoff (attempt counters and a
/// fresh connection generation), a new view forms after a real
/// partition, and the recorded traces still pass the safety checkers.
#[test]
fn fault_injection_reconnect_and_reform() {
    let cluster = LoopbackCluster::start(ClusterConfig::patient(3)).expect("bind loopback");
    assert!(
        wait_for(Duration::from_secs(20), || full_view_everywhere(&cluster)),
        "initial view never formed"
    );
    for i in 0..20u64 {
        cluster.submit(ProcId((i % 3) as u32), Value::from_u64(i + 1));
    }
    assert!(cluster.await_deliveries(20, Duration::from_secs(30)), "warmup stalled");

    // Kill the live sockets between p0 and p1 mid-view.
    let t0 = cluster.node(ProcId(0)).transport();
    let attempts_before = t0.connect_attempts(ProcId(1));
    let gen_before = t0.generation(ProcId(1));
    cluster.kick_pair(ProcId(0), ProcId(1));
    assert!(
        wait_for(Duration::from_secs(10), || {
            t0.connect_attempts(ProcId(1)) > attempts_before
                && t0.generation(ProcId(1)) > gen_before
                && t0.connected(ProcId(1))
        }),
        "p0 did not reconnect to p1 after the socket was killed"
    );
    // The ring keeps delivering over the re-established link.
    for i in 20..40u64 {
        cluster.submit(ProcId((i % 3) as u32), Value::from_u64(i + 1));
    }
    assert!(
        cluster.await_deliveries(40, Duration::from_secs(60)),
        "deliveries stalled after reconnect: {:?}",
        cluster.delivered().iter().map(|d| d.len()).collect::<Vec<_>>()
    );

    // A real partition now: p2 cut off long enough for the token to time
    // out, so a new (smaller) view must form; then heal and re-merge.
    let epoch_before = cluster.views()[0].last().expect("has view").id.epoch;
    cluster.isolate(ProcId(2));
    assert!(
        wait_for(Duration::from_secs(60), || {
            cluster.views()[0].last().is_some_and(|v| !v.set.contains(&ProcId(2)))
        }),
        "no new view formed after the partition: {:?}",
        cluster.views()
    );
    cluster.rejoin(ProcId(2));
    assert!(
        wait_for(Duration::from_secs(60), || {
            cluster
                .views()
                .iter()
                .all(|vs| vs.last().is_some_and(|v| v.size() == 3 && v.id.epoch > epoch_before))
        }),
        "merge never completed: {:?}",
        cluster.views()
    );
    for i in 40..60u64 {
        cluster.submit(ProcId((i % 3) as u32), Value::from_u64(i + 1));
    }
    assert!(
        cluster.await_deliveries(60, Duration::from_secs(60)),
        "deliveries stalled after merge"
    );

    let delivered = cluster.delivered();
    let trace = cluster.stop();
    assert_total_order_prefix(&delivered, 60);
    assert_checkers_pass(&trace, 3);
}
