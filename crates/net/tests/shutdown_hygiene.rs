//! Shutdown-hygiene test: a calm cluster tears down deterministically.
//! Every transport thread (accept loop, per-peer writers, per-connection
//! readers) must join within its bounded deadline, and a well-behaved
//! run must not have silently shed frames to a full send queue — drops
//! the protocol would paper over with retransmission timers, hiding a
//! slow-consumer problem from every later assertion.

use gcs_model::{ProcId, Value};
use gcs_net::cluster::{ClusterConfig, LoopbackCluster};
use std::time::{Duration, Instant};

fn wait_for(deadline: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn calm_cluster_stops_clean_with_no_queue_full_drops() {
    let n = 3u32;
    let cluster = LoopbackCluster::start(ClusterConfig::patient(n)).expect("bind loopback");
    assert!(
        wait_for(Duration::from_secs(20), || {
            cluster.views().iter().all(|vs| vs.last().is_some_and(|v| v.size() == n as usize))
        }),
        "initial view never formed: {:?}",
        cluster.views()
    );
    for i in 1..=15u64 {
        cluster.submit(ProcId((i % 3) as u32), Value::from_u64(i));
    }
    assert!(cluster.await_deliveries(15, Duration::from_secs(30)), "deliveries stalled");

    // No send queue ever filled: every frame either went out or was
    // dropped for an explicit, recorded reason (blocked link, stale
    // generation) — never silently for backpressure.
    for p in 0..n {
        let t = cluster.node(ProcId(p)).transport();
        assert_eq!(t.queue_full_drops(), 0, "node {p} shed frames to a full send queue");
        assert!(t.frames_sent() > 0, "node {p} sent nothing");
    }

    let (_, shutdown) = cluster.stop_report();
    assert!(
        shutdown.clean(),
        "leaked {} of {} transport threads",
        shutdown.leaked,
        shutdown.joined + shutdown.leaked
    );
    assert!(shutdown.joined > 0, "shutdown joined no threads at all");
}
