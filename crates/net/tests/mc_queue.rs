//! gcs-mc models for the bounded per-peer send queue: value hand-off,
//! the queue-full drop path, and writer death (receiver gone), under
//! every interleaving within the preemption bound.

use gcs_mc::{Checker, JoinApi, McShims, Shims};
use gcs_net::queue::{bounded, RecvTimeoutError, TrySendError};
use std::time::Duration;

#[test]
fn queue_hands_off_values_in_order() {
    let report = Checker::new("queue-handoff").check(|| {
        let (tx, rx) = bounded::<u64, McShims>(4);
        let t = McShims::spawn(move || {
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
        });
        // The sender thread stays live until both sends land, so the
        // timed wait can only fire after it exits — at which point the
        // values are queued and Disconnected is unreachable until
        // they drain.
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Ok(2));
        t.join();
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Err(RecvTimeoutError::Disconnected));
    });
    report.assert_ok();
}

#[test]
fn queue_full_drops_exactly_the_overflow() {
    let report = Checker::new("queue-full").preemption_bound(2).check(|| {
        let (tx, rx) = bounded::<u64, McShims>(1);
        let tx2 = tx.clone();
        let t = McShims::spawn(move || {
            let _ = tx2.try_send(7);
        });
        let _ = tx.try_send(8);
        t.join();
        // Capacity 1, nothing drained: whichever sender locked first
        // landed its value, the other got Full — never both, never
        // neither, never a block.
        assert_eq!(rx.len(), 1, "exactly one send fits a full queue");
        drop(tx);
    });
    report.assert_ok();
}

#[test]
fn writer_death_disconnects_concurrent_senders() {
    let report = Checker::new("queue-writer-death").preemption_bound(2).check(|| {
        let (tx, rx) = bounded::<u64, McShims>(4);
        // The writer dies (the transport's writer_loop returning drops
        // its receiver) while a sender races it.
        let t = McShims::spawn(move || drop(rx));
        let first = tx.try_send(9);
        // Racing the death, the send either lands or reports
        // Disconnected — it must never block or claim Full.
        assert!(
            matches!(first, Ok(()) | Err(TrySendError::Disconnected(9))),
            "unexpected: {first:?}"
        );
        t.join();
        // After the join edge the death is visible: deterministic
        // Disconnected, with the value handed back for drop counting.
        assert_eq!(tx.try_send(10), Err(TrySendError::Disconnected(10)));
    });
    report.assert_ok();
}

#[test]
fn sender_death_wakes_the_parked_receiver() {
    let report = Checker::new("queue-sender-death").check(|| {
        let (tx, rx) = bounded::<u64, McShims>(2);
        let t = McShims::spawn(move || drop(tx));
        // Whatever the interleaving: never a value, always a clean
        // exit (Timeout only if the drop hasn't landed when the
        // all-blocked timeout fires, Disconnected otherwise).
        let r = rx.recv_timeout(Duration::from_millis(50));
        assert!(r.is_err(), "received a value nobody sent");
        t.join();
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Err(RecvTimeoutError::Disconnected));
    });
    report.assert_ok();
}
