//! Property tests for the wire codec: every `Frame`/`Wire`/`AppMsg`
//! variant round-trips bit-exactly through encode/decode, and decoding
//! any truncated or corrupted byte string returns a clean error — never
//! a panic, never an allocation blow-up.
//!
//! The vendored proptest stub has no `prop_oneof`, so variant selection
//! is an integer-range strategy dispatched in `prop_map`/`prop_flat_map`.

use gcs_core::msg::AppMsg;
use gcs_model::{Label, ProcId, Summary, Value, View, ViewId};
use gcs_net::codec::{decode_payload, encode_frame, encode_payload, Frame, HelloKind};
use gcs_vsimpl::{Token, TokenMsg, Wire};
use proptest::prelude::*;
use proptest::{collection, option, BoxedStrategy};
use std::io::Write as _;

/// The vendored proptest has no failure persistence, so we provide our
/// own: any input that breaks a property is appended to the regression
/// corpus, which `corpus_replay.rs` replays as a plain test on every
/// run from then on. `tag` is the corpus entry kind (`ok` for payloads
/// that must decode canonically, `raw` for must-not-panic bytes).
fn persist_failure(tag: &str, bytes: &[u8]) {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
        .join("regressions.hex");
    let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
    if let Ok(mut f) = std::fs::OpenOptions::new().append(true).create(true).open(&path) {
        let _ = writeln!(f, "{tag} {hex}");
        eprintln!("persisted failing input to {}", path.display());
    }
}

/// Runs the decoder under `catch_unwind` so a panicking input can be
/// persisted before the property fails.
fn decode_guarded(bytes: &[u8]) -> Result<(), ()> {
    std::panic::catch_unwind(|| {
        let _ = decode_payload(bytes);
    })
    .map_err(|_| ())
}

fn proc_strategy() -> impl Strategy<Value = ProcId> {
    (0u32..1000).prop_map(ProcId)
}

fn viewid_strategy() -> impl Strategy<Value = ViewId> {
    ((0u64..1 << 40), proc_strategy()).prop_map(|(epoch, origin)| ViewId::new(epoch, origin))
}

fn view_strategy() -> impl Strategy<Value = View> {
    (viewid_strategy(), collection::btree_set(proc_strategy(), 1..8))
        .prop_map(|(id, set)| View::new(id, set))
}

fn value_strategy() -> BoxedStrategy<Value> {
    (0u8..3)
        .prop_flat_map(|variant| -> BoxedStrategy<Value> {
            match variant {
                0 => any::<u64>().prop_map(Value::from_u64).boxed(),
                1 => collection::vec(any::<u8>(), 0..64).prop_map(Value::from).boxed(),
                _ => (0usize..1).prop_map(|_| Value::default()).boxed(),
            }
        })
        .boxed()
}

fn label_strategy() -> impl Strategy<Value = Label> {
    // Label::new rejects seqno 0, and the codec rejects it on decode.
    (viewid_strategy(), 1u64..1 << 30, proc_strategy())
        .prop_map(|(view, seqno, origin)| Label::new(view, seqno, origin))
}

fn summary_strategy() -> impl Strategy<Value = Summary> {
    (
        collection::btree_map(label_strategy(), value_strategy(), 0..8),
        collection::vec(label_strategy(), 0..8),
        1u64..1 << 30,
        option::of(viewid_strategy()),
    )
        .prop_map(|(con, ord, next, high)| Summary { con, ord, next, high })
}

fn appmsg_strategy() -> BoxedStrategy<AppMsg> {
    (0u8..2)
        .prop_flat_map(|variant| -> BoxedStrategy<AppMsg> {
            match variant {
                0 => (label_strategy(), value_strategy())
                    .prop_map(|(l, a)| AppMsg::Val(l, a))
                    .boxed(),
                _ => summary_strategy().prop_map(AppMsg::Summary).boxed(),
            }
        })
        .boxed()
}

fn token_msg_strategy() -> impl Strategy<Value = TokenMsg> {
    (proc_strategy(), any::<u64>(), appmsg_strategy()).prop_map(|(src, mid, msg)| TokenMsg {
        src,
        mid,
        msg,
    })
}

fn token_strategy() -> impl Strategy<Value = Token> {
    (
        viewid_strategy(),
        any::<u64>(),
        any::<u64>(),
        collection::vec(token_msg_strategy(), 0..6),
        collection::vec(token_msg_strategy(), 0..4),
        any::<u64>(),
        collection::btree_map(proc_strategy(), any::<u64>(), 0..8),
    )
        .prop_map(|(view, round, seq_start, entries, collect, acked, delivered)| Token {
            view,
            round,
            seq_start,
            entries,
            collect,
            acked,
            delivered,
        })
}

fn wire_strategy() -> BoxedStrategy<Wire> {
    (0u8..5)
        .prop_flat_map(|variant| -> BoxedStrategy<Wire> {
            match variant {
                0 => (0usize..1).prop_map(|_| Wire::Probe).boxed(),
                1 => viewid_strategy().prop_map(|viewid| Wire::Call { viewid }).boxed(),
                2 => viewid_strategy().prop_map(|viewid| Wire::Accept { viewid }).boxed(),
                3 => view_strategy().prop_map(|view| Wire::Join { view }).boxed(),
                _ => token_strategy().prop_map(|t| Wire::Token(Box::new(t))).boxed(),
            }
        })
        .boxed()
}

fn group_strategy() -> impl Strategy<Value = u32> {
    // Group ids skew small in practice but the codec must take any u32.
    (0u8..2).prop_flat_map(|wide| -> BoxedStrategy<u32> {
        match wide {
            0 => (0u32..8).boxed(),
            _ => any::<u32>().boxed(),
        }
    })
}

fn frame_strategy() -> BoxedStrategy<Frame> {
    (0u8..10)
        .prop_flat_map(|variant| -> BoxedStrategy<Frame> {
            match variant {
                0 => (proc_strategy(), any::<u64>(), any::<bool>())
                    .prop_map(|(node, generation, peer)| Frame::Hello {
                        node,
                        generation,
                        kind: if peer { HelloKind::Peer } else { HelloKind::Client },
                    })
                    .boxed(),
                1 => wire_strategy().prop_map(Frame::Peer).boxed(),
                2 => value_strategy().prop_map(Frame::Submit).boxed(),
                3 => (proc_strategy(), value_strategy())
                    .prop_map(|(src, a)| Frame::Deliver { src, a })
                    .boxed(),
                4 => collection::vec((proc_strategy(), value_strategy()), 0..16)
                    .prop_map(Frame::DeliverBatch)
                    .boxed(),
                5 => collection::vec(value_strategy(), 0..16).prop_map(Frame::SubmitBatch).boxed(),
                6 => (group_strategy(), wire_strategy())
                    .prop_map(|(group, wire)| Frame::PeerGroup { group, wire })
                    .boxed(),
                7 => (group_strategy(), collection::vec(value_strategy(), 0..16))
                    .prop_map(|(group, batch)| Frame::SubmitGroup { group, batch })
                    .boxed(),
                8 => {
                    (group_strategy(), collection::vec((proc_strategy(), value_strategy()), 0..16))
                        .prop_map(|(group, batch)| Frame::DeliverGroup { group, batch })
                        .boxed()
                }
                _ => (group_strategy(), view_strategy())
                    .prop_map(|(group, view)| Frame::View { group, view })
                    .boxed(),
            }
        })
        .boxed()
}

/// A token mid-rotation under load: a large `entries` delta (hundreds of
/// messages) with realistic monotone cursors. The small `token_strategy`
/// above keeps the general frame tests fast; this one exists so the
/// batched hot-path shape gets direct roundtrip/truncation coverage.
fn batched_token_strategy() -> impl Strategy<Value = Token> {
    (
        viewid_strategy(),
        any::<u64>(),
        0u64..1 << 40,
        collection::vec(token_msg_strategy(), 64..384),
        collection::vec(token_msg_strategy(), 0..8),
        any::<u64>(),
        collection::btree_map(proc_strategy(), any::<u64>(), 1..8),
    )
        .prop_map(|(view, round, seq_start, entries, collect, acked, delivered)| Token {
            view,
            round,
            seq_start,
            entries,
            collect,
            acked,
            delivered,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Every frame round-trips bit-exactly through the payload codec.
    #[test]
    fn frame_roundtrips(frame in frame_strategy()) {
        let bytes = encode_payload(&frame);
        let back = decode_payload(&bytes);
        if back.as_ref().ok() != Some(&frame) {
            persist_failure("ok", &bytes);
        }
        prop_assert!(back.is_ok(), "decode failed: {:?}", back);
        prop_assert_eq!(back.unwrap(), frame);
    }

    /// Every `Wire` variant round-trips inside a `Peer` frame (the hot
    /// path between nodes).
    #[test]
    fn wire_roundtrips(wire in wire_strategy()) {
        let frame = Frame::Peer(wire);
        let back = decode_payload(&encode_payload(&frame));
        prop_assert_eq!(back.ok(), Some(frame));
    }

    /// Encoding is deterministic: equal frames produce equal bytes.
    #[test]
    fn encoding_is_deterministic(frame in frame_strategy()) {
        prop_assert_eq!(encode_payload(&frame), encode_payload(&frame));
        prop_assert_eq!(encode_frame(&frame), encode_frame(&frame));
    }

    /// The length prefix in `encode_frame` matches the payload exactly.
    #[test]
    fn length_prefix_matches_payload(frame in frame_strategy()) {
        let framed = encode_frame(&frame);
        prop_assert!(framed.len() >= 4);
        let len = u32::from_be_bytes([framed[0], framed[1], framed[2], framed[3]]) as usize;
        prop_assert_eq!(len, framed.len() - 4);
        prop_assert_eq!(decode_payload(&framed[4..]).ok(), Some(frame));
    }

    /// Every strict prefix of a valid payload fails to decode with a
    /// clean error — no panic, no success on partial data.
    #[test]
    fn truncations_error_cleanly(frame in frame_strategy()) {
        let bytes = encode_payload(&frame);
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_payload(&bytes[..cut]).is_err(),
                "truncation at {} decoded successfully", cut
            );
        }
    }

    /// Flipping any single byte either fails cleanly or decodes to some
    /// frame — it never panics. (A flip inside an opaque value payload
    /// legitimately decodes to a different frame.)
    #[test]
    fn corruption_never_panics(
        frame in frame_strategy(),
        pos in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_payload(&frame);
        let i = (pos % bytes.len() as u64) as usize;
        bytes[i] ^= flip;
        let returned = decode_guarded(&bytes);
        if returned.is_err() {
            persist_failure("raw", &bytes);
        }
        prop_assert!(returned.is_ok(), "decoder panicked on single-byte corruption");
    }

    /// Garbage of any shape never panics the decoder.
    #[test]
    fn random_bytes_never_panic(bytes in collection::vec(any::<u8>(), 0..256)) {
        let returned = decode_guarded(&bytes);
        if returned.is_err() {
            persist_failure("raw", &bytes);
        }
        prop_assert!(returned.is_ok(), "decoder panicked on random bytes");
    }
}

proptest! {
    // Large tokens are expensive to generate; fewer cases keep the suite
    // interactive while still sweeping hundreds of batch shapes.
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// A heavily batched token round-trips bit-exactly.
    #[test]
    fn batched_token_roundtrips(t in batched_token_strategy()) {
        let frame = Frame::Peer(Wire::Token(Box::new(t)));
        let bytes = encode_payload(&frame);
        let back = decode_payload(&bytes);
        if back.as_ref().ok() != Some(&frame) {
            persist_failure("ok", &bytes);
        }
        prop_assert_eq!(back.ok(), Some(frame));
    }

    /// Truncating a batched token anywhere — including mid-entry — fails
    /// cleanly. Cuts sweep the whole payload at a stride so every region
    /// (header, entries, collect, counts) is hit without O(len) decodes
    /// per case.
    #[test]
    fn batched_token_truncations_error_cleanly(t in batched_token_strategy(), seed in any::<u64>()) {
        let frame = Frame::Peer(Wire::Token(Box::new(t)));
        let bytes = encode_payload(&frame);
        let stride = (bytes.len() / 64).max(1);
        let offset = (seed % stride as u64) as usize;
        let mut cut = offset;
        while cut < bytes.len() {
            prop_assert!(
                decode_payload(&bytes[..cut]).is_err(),
                "truncation at {} of {} decoded successfully", cut, bytes.len()
            );
            cut += stride;
        }
    }

    /// Corrupting a single byte of a batched token never panics.
    #[test]
    fn batched_token_corruption_never_panics(
        t in batched_token_strategy(),
        pos in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let frame = Frame::Peer(Wire::Token(Box::new(t)));
        let mut bytes = encode_payload(&frame);
        let i = (pos % bytes.len() as u64) as usize;
        bytes[i] ^= flip;
        let returned = decode_guarded(&bytes);
        if returned.is_err() {
            persist_failure("raw", &bytes);
        }
        prop_assert!(returned.is_ok(), "decoder panicked on corrupted batched token");
    }
}

/// Pipeline-rotation-sized tokens (the `bench_token_codec` shapes, up to
/// 4096 entries) round-trip; a plain test because proptest generation at
/// this size would dominate the suite's runtime.
#[test]
fn rotation_sized_tokens_roundtrip() {
    for batch in [1usize, 16, 256, 4096] {
        let view = View::new(ViewId::new(3, ProcId(0)), ProcId::range(5));
        let mut t = Token::new(&view);
        t.round = 42;
        t.seq_start = 10_000;
        t.acked = 9_000;
        for i in 0..batch {
            let l = Label::new(view.id, t.seq_start + i as u64, ProcId((i % 5) as u32));
            t.entries.push(TokenMsg {
                src: ProcId((i % 5) as u32),
                mid: i as u64,
                msg: AppMsg::Val(l, Value::from_u64(i as u64)),
            });
        }
        let frame = Frame::Peer(Wire::Token(Box::new(t)));
        let bytes = encode_payload(&frame);
        assert_eq!(decode_payload(&bytes).ok(), Some(frame), "batch size {batch}");
    }
}
