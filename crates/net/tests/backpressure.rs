//! Slow-consumer backpressure: the per-peer writer queue is bounded, so
//! a peer that stops draining its socket costs dropped frames — counted
//! under `net_frames_dropped_total{reason="queue_full"}` and recorded in
//! the trace ring — never unbounded memory. A cluster running with the
//! same tiny queue still delivers in total order and passes the VS/TO
//! safety checkers, because the protocol recovers dropped tokens through
//! its token-loss and probe timers.

use gcs_core::cause::check_trace;
use gcs_core::to_trace::check_to_trace;
use gcs_model::{ProcId, Value, View, ViewId};
use gcs_net::cluster::{ClusterConfig, LoopbackCluster};
use gcs_net::transport::{Incoming, TcpTransport, TransportConfig, COALESCE_FRAMES};
use gcs_obs::{DropReason, EventKind, Obs};
use gcs_vsimpl::convert::{to_obs, vs_actions};
use gcs_vsimpl::Wire;
use std::collections::BTreeMap;
use std::net::TcpListener;
use std::sync::mpsc;
use std::time::{Duration, Instant};

fn wait_for(deadline: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

/// A writer facing a peer that accepts connections but never reads:
/// once the socket buffers fill, the writer blocks mid-frame, the
/// bounded send queue fills behind it, and every further send must be
/// dropped and counted — the queue never grows past its configured
/// depth.
#[test]
fn slow_consumer_fills_queue_and_drops_are_counted() {
    const QUEUE: usize = 8;
    const SENDS: u64 = 200;

    // The sink: accepts and holds connections, never reads a byte.
    let sink = TcpListener::bind("127.0.0.1:0").expect("bind sink");
    let sink_addr = sink.local_addr().expect("sink addr");
    std::thread::spawn(move || {
        let mut held = Vec::new();
        for stream in sink.incoming() {
            match stream {
                Ok(s) => held.push(s),
                Err(_) => break,
            }
        }
    });

    let me = ProcId(0);
    let peer = ProcId(1);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind transport");
    let mut peers = BTreeMap::new();
    peers.insert(me, listener.local_addr().expect("local addr"));
    peers.insert(peer, sink_addr);
    let (events_tx, _events_rx) = mpsc::channel::<Incoming>();
    let obs = Obs::new();
    let transport = TcpTransport::start_with_obs(
        me,
        listener,
        &peers,
        TransportConfig { send_queue: QUEUE, ..Default::default() },
        events_tx,
        obs.clone(),
    )
    .expect("start transport");
    assert!(
        wait_for(Duration::from_secs(5), || transport.connected(peer)),
        "writer never connected to the sink"
    );

    // Large frames (~200 KB encoded) so a handful saturates the socket
    // buffers and the writer blocks mid-write.
    let big = Wire::Join {
        view: View { id: ViewId { epoch: 1, origin: me }, set: (0..50_000).map(ProcId).collect() },
    };
    for _ in 0..SENDS {
        transport.send(peer, big.clone());
    }

    let snap = obs.registry.snapshot();
    let label = [("node", "0"), ("reason", "queue_full")];
    let queue_full = snap.counter_value("net_frames_dropped_total", &label);
    let sent = snap.counter_value("net_frames_sent_total", &[("node", "0")]);
    assert!(queue_full > 0, "a non-draining peer must produce queue_full drops");
    // Conservation: every frame was written, dropped, or sits in the
    // bounded queue / the writer's in-flight coalescing batch (counted
    // as sent or dropped only once the batch write resolves).
    assert!(
        sent + queue_full + QUEUE as u64 + COALESCE_FRAMES as u64 >= SENDS,
        "frames unaccounted for: sent={sent} dropped={queue_full}"
    );
    assert!(sent + queue_full <= SENDS, "sent={sent} dropped={queue_full} exceed submissions");

    // The trace ring carries the same story, one Drop event per count.
    let trace_drops = obs
        .trace
        .snapshot()
        .iter()
        .filter(|e| {
            matches!(e.kind, EventKind::Drop { reason: DropReason::QueueFull, node: 0, .. })
        })
        .count() as u64;
    assert_eq!(trace_drops, queue_full, "metric and trace disagree on drops");

    transport.stop();
}

/// The same tiny queue inside a live cluster: a partition produces
/// counted drops (blocked-peer probes and token traffic), yet the ring
/// reforms, total order holds across every node, and the merged trace
/// passes the VS/TO checkers.
#[test]
fn tiny_send_queue_cluster_survives_partition_and_passes_checkers() {
    let n = 3u32;
    let obs = Obs::with_trace_capacity(1 << 18);
    let cluster = LoopbackCluster::start_with_obs(
        ClusterConfig {
            n,
            delta_ms: 20,
            transport: TransportConfig { send_queue: 8, ..Default::default() },
        },
        obs.clone(),
    )
    .expect("bind loopback");
    let full_view = |c: &LoopbackCluster| {
        c.views().iter().all(|vs| vs.last().is_some_and(|v| v.size() == n as usize))
    };
    assert!(wait_for(Duration::from_secs(20), || full_view(&cluster)), "initial view never formed");

    for i in 0..20u64 {
        cluster.submit(ProcId((i % 3) as u32), Value::from_u64(i + 1));
    }
    assert!(cluster.await_deliveries(20, Duration::from_secs(30)), "warmup stalled");

    // Partition p2: probes and token frames toward it are dropped (and
    // counted) at the senders until the heal.
    let epoch_before = cluster.views()[0].last().expect("has view").id.epoch;
    cluster.isolate(ProcId(2));
    assert!(
        wait_for(Duration::from_secs(60), || {
            cluster.views()[0].last().is_some_and(|v| !v.set.contains(&ProcId(2)))
        }),
        "no minority view formed after the partition"
    );
    for i in 20..35u64 {
        cluster.submit(ProcId((i % 2) as u32), Value::from_u64(i + 1));
    }
    assert!(
        wait_for(Duration::from_secs(60), || {
            cluster.delivered()[..2].iter().all(|d| d.len() >= 35)
        }),
        "majority stalled during partition"
    );
    cluster.rejoin(ProcId(2));
    assert!(
        wait_for(Duration::from_secs(60), || {
            cluster
                .views()
                .iter()
                .all(|vs| vs.last().is_some_and(|v| v.size() == 3 && v.id.epoch > epoch_before))
        }),
        "merge never completed"
    );
    for i in 35..50u64 {
        cluster.submit(ProcId((i % 3) as u32), Value::from_u64(i + 1));
    }
    assert!(
        cluster.await_deliveries(50, Duration::from_secs(60)),
        "deliveries stalled after merge: {:?}",
        cluster.delivered().iter().map(|d| d.len()).collect::<Vec<_>>()
    );

    let delivered = cluster.delivered();
    let trace = cluster.stop();
    for (i, d) in delivered.iter().enumerate() {
        assert_eq!(&delivered[0][..50], &d[..50], "total orders diverge at node {i}");
    }
    let to = check_to_trace(&to_obs(&trace).untimed());
    assert!(to.ok(), "TO checker failed: {:?}", to.violations.first());
    let cause = check_trace(&vs_actions(&trace), &ProcId::range(n));
    assert!(cause.ok(), "cause checker failed: {:?}", cause.violations.first());

    // Every drop the partition caused is visible in the registry and
    // mirrored one-for-one in the trace ring.
    assert_eq!(obs.trace.evicted(), 0, "trace window must cover the run");
    let dropped = obs.registry.snapshot().counter_total("net_frames_dropped_total");
    assert!(dropped > 0, "a partition must produce counted drops");
    let trace_drops =
        obs.trace.snapshot().iter().filter(|e| matches!(e.kind, EventKind::Drop { .. })).count()
            as u64;
    assert_eq!(dropped, trace_drops, "metric and trace disagree on drops");
}
