//! Replays the codec regression corpus as a plain `#[test]` — no
//! proptest involved, so every entry runs on every `cargo test`
//! invocation and a once-found decoder bug can never quietly regress.
//!
//! Corpus format (`tests/corpus/*.hex`): one entry per line,
//! `#`-comments and blank lines ignored. Two entry kinds:
//!
//! - `ok <hex>` — a canonical payload: must decode, and re-encoding the
//!   decoded frame must reproduce the bytes bit-exactly.
//! - `raw <hex>` — arbitrary bytes: the decoder must return (ok or a
//!   clean error), never panic. Failing proptest cases land here via
//!   the persist-on-failure hook in `codec_roundtrip.rs`.

use gcs_core::msg::AppMsg;
use gcs_model::{Label, ProcId, Summary, Value, View, ViewId};
use gcs_net::codec::{decode_payload, encode_payload, Frame, HelloKind};
use gcs_vsimpl::{Token, TokenMsg, Wire};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("corpus")
}

fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err(format!("odd hex length {}", s.len()));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|e| e.to_string()))
        .collect()
}

fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn corpus_replays_cleanly() {
    let dir = corpus_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing corpus dir {}: {e}", dir.display()))
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "hex"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .hex corpus files in {}", dir.display());

    let (mut canonical, mut raw) = (0usize, 0usize);
    for path in &files {
        let text = std::fs::read_to_string(path).expect("readable corpus file");
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let at = || format!("{}:{}", path.display(), lineno + 1);
            let (tag, hex) = line.split_once(' ').unwrap_or_else(|| panic!("{}: no tag", at()));
            let bytes = from_hex(hex.trim()).unwrap_or_else(|e| panic!("{}: {e}", at()));
            match tag {
                "ok" => {
                    let frame = decode_payload(&bytes)
                        .unwrap_or_else(|e| panic!("{}: canonical entry failed: {e:?}", at()));
                    assert_eq!(
                        encode_payload(&frame),
                        bytes,
                        "{}: re-encode is not bit-exact for {frame:?}",
                        at()
                    );
                    canonical += 1;
                }
                "raw" => {
                    // Must return — a panic aborts the test run here, at
                    // the exact offending entry.
                    let _ = decode_payload(&bytes);
                    raw += 1;
                }
                other => panic!("{}: unknown tag {other:?}", at()),
            }
        }
    }
    assert!(canonical >= 10, "seed corpus too small: {canonical} canonical entries");
    assert!(raw >= 5, "seed corpus too small: {raw} raw entries");
}

/// Every `Frame` variant (and every `Wire` variant inside `Peer`), built
/// deterministically — the seed half of the corpus. Values are chosen to
/// exercise field-width edges: zero, single-byte, and >7-bit varint
/// territory.
fn seed_frames() -> Vec<Frame> {
    let vid = |e: u64, o: u32| ViewId::new(e, ProcId(o));
    let view = |e: u64, o: u32, members: &[u32]| {
        View::new(vid(e, o), members.iter().map(|&p| ProcId(p)).collect::<BTreeSet<_>>())
    };
    let label = |e: u64, s: u64, o: u32| Label::new(vid(e, o), s, ProcId(o));
    let summary = Summary {
        con: BTreeMap::from([
            (label(1, 1, 0), Value::from_u64(7)),
            (label(1, 2, 1), Value::from(vec![0u8, 255, 128])),
        ]),
        ord: vec![label(1, 1, 0), label(1, 2, 1), label(2, 1, 2)],
        next: 3,
        high: Some(vid(2, 2)),
    };
    let token = Token {
        view: vid(3, 0),
        round: 130,
        seq_start: 7,
        entries: vec![
            TokenMsg {
                src: ProcId(0),
                mid: 1,
                msg: AppMsg::Val(label(3, 1, 0), Value::from_u64(0)),
            },
            TokenMsg { src: ProcId(4), mid: u64::MAX, msg: AppMsg::Summary(summary.clone()) },
        ],
        collect: vec![TokenMsg {
            src: ProcId(3),
            mid: (3 << 40) | 9,
            msg: AppMsg::Val(label(3, 2, 3), Value::from(vec![1u8, 2, 3])),
        }],
        acked: 5,
        delivered: BTreeMap::from([(ProcId(0), 2), (ProcId(4), 0)]),
    };
    vec![
        Frame::Hello { node: ProcId(0), generation: 0, kind: HelloKind::Peer },
        Frame::Hello { node: ProcId(999), generation: 1 << 33, kind: HelloKind::Client },
        Frame::Peer(Wire::Probe),
        Frame::Peer(Wire::Call { viewid: vid(0, 0) }),
        Frame::Peer(Wire::Call { viewid: vid(1 << 39, 31) }),
        Frame::Peer(Wire::Accept { viewid: vid(200, 4) }),
        Frame::Peer(Wire::Join { view: view(9, 2, &[0, 1, 2, 3, 4]) }),
        Frame::Peer(Wire::Join { view: view(1, 7, &[7]) }),
        Frame::Peer(Wire::Token(Box::new(token))),
        Frame::Peer(Wire::Token(Box::new(Token {
            view: vid(1, 0),
            round: 0,
            seq_start: 0,
            entries: vec![],
            collect: vec![],
            acked: 0,
            delivered: BTreeMap::new(),
        }))),
        Frame::Submit(Value::default()),
        Frame::Submit(Value::from_u64(u64::MAX)),
        Frame::Submit(Value::from((0u8..=63).collect::<Vec<u8>>())),
        Frame::Deliver { src: ProcId(2), a: Value::from_u64(42) },
        Frame::Deliver { src: ProcId(0), a: Value::from(vec![]) },
    ]
}

/// The seed corpus stays in lockstep with the encoder: each committed
/// `ok` line in `seed_frames.hex` is exactly `encode_payload` of the
/// corresponding frame above. If the wire format changes intentionally,
/// regenerate with
/// `cargo test -p gcs-net --test corpus_replay -- --ignored`.
#[test]
fn seed_corpus_matches_current_encoder() {
    let path = corpus_dir().join("seed_frames.hex");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
    let committed: Vec<Vec<u8>> = text
        .lines()
        .filter_map(|l| l.trim().strip_prefix("ok "))
        .map(|hex| from_hex(hex.trim()).expect("valid hex in seed corpus"))
        .collect();
    let current: Vec<Vec<u8>> = seed_frames().iter().map(encode_payload).collect();
    assert_eq!(
        committed, current,
        "seed corpus is stale — the wire format changed; regenerate with --ignored"
    );
}

#[test]
#[ignore = "writes tests/corpus/seed_frames.hex; run on intentional wire-format changes"]
fn regenerate_seed_corpus() {
    let mut out = String::from(
        "# Canonical codec corpus: one `ok <hex>` payload per seed frame in\n\
         # corpus_replay.rs::seed_frames(). Regenerated, never hand-edited.\n",
    );
    for frame in seed_frames() {
        out.push_str("ok ");
        out.push_str(&to_hex(&encode_payload(&frame)));
        out.push('\n');
    }
    let path = corpus_dir().join("seed_frames.hex");
    std::fs::write(&path, out).expect("write seed corpus");
}
