//! `gcs-loopback-bench`: the repeatable throughput benchmark for the
//! batched, pipelined token ring over the real TCP stack.
//!
//! ```text
//! gcs-loopback-bench [--nodes 5] [--ops 20000] [--window 256]
//!                    [--warmup 2000] [--delta-ms 20]
//!                    [--out BENCH_loopback.json] [--floor <ops/s>]
//! ```
//!
//! Boots an n-node loopback cluster, warms the ring (the warm-up
//! operations are excluded from every statistic), drives a closed-loop
//! client against node 0, and then verifies the run end to end: the
//! merged recorded trace must pass the VS cause checker and the TO
//! checker, and the `gcs-obs` event stream must satisfy the online b/d
//! bound monitors. The result — throughput, latency percentiles, and
//! the verification verdicts — is written as one JSON object (schema
//! documented in `EXPERIMENTS.md`).
//!
//! With `--floor`, the process exits nonzero if the measured closed-loop
//! throughput falls below that many ops/s — the CI throughput gate.
//! Checker or monitor failures always exit nonzero: a fast run that
//! breaks total order is a bug, not a benchmark result.

use gcs_core::cause::check_trace;
use gcs_core::to_trace::check_to_trace;
use gcs_model::ProcId;
use gcs_net::cluster::{ClusterConfig, LoopbackCluster};
use gcs_net::load::{run_load, LoadConfig, LoadMode, LoadReport};
use gcs_obs::{BoundParams, Obs, StabilizationMonitor, TokenRoundMonitor};
use gcs_vsimpl::convert::{to_obs, vs_actions};
use std::process::exit;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: gcs-loopback-bench [--nodes <n>] [--ops <n>] [--window <w>] [--warmup <n>]\n\
         \n\
         --nodes     cluster size (default 5)\n\
         --ops       timed operations (default 20000)\n\
         --window    closed-loop outstanding window (default 256)\n\
         --warmup    untimed warm-up operations (default 2000)\n\
         --delta-ms  protocol delta in ms (default 20)\n\
         --out       JSON result path (default BENCH_loopback.json)\n\
         --floor     minimum acceptable ops/s; below it exit nonzero\n\
         --no-check  skip the trace checkers and bound monitors"
    );
    exit(2)
}

struct Args {
    nodes: u32,
    ops: u64,
    window: usize,
    warmup: u64,
    delta_ms: u64,
    out: String,
    floor: Option<f64>,
    check: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        nodes: 5,
        ops: 20_000,
        window: 256,
        warmup: 2_000,
        delta_ms: 20,
        out: "BENCH_loopback.json".to_string(),
        floor: None,
        check: true,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("gcs-loopback-bench: {what} needs a value");
                usage();
            }
        };
        match arg.as_str() {
            "--nodes" => a.nodes = take("--nodes").parse().unwrap_or_else(|_| usage()),
            "--ops" => a.ops = take("--ops").parse().unwrap_or_else(|_| usage()),
            "--window" => a.window = take("--window").parse().unwrap_or_else(|_| usage()),
            "--warmup" => a.warmup = take("--warmup").parse().unwrap_or_else(|_| usage()),
            "--delta-ms" => a.delta_ms = take("--delta-ms").parse().unwrap_or_else(|_| usage()),
            "--out" => a.out = take("--out"),
            "--floor" => a.floor = Some(take("--floor").parse().unwrap_or_else(|_| usage())),
            "--no-check" => a.check = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("gcs-loopback-bench: unknown argument {other:?}");
                usage();
            }
        }
    }
    if a.nodes == 0 || a.ops == 0 {
        usage();
    }
    a
}

fn wait_for(deadline: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn json_result(a: &Args, report: &LoadReport, ok: &[(&str, bool)]) -> String {
    let h = &report.latency_us;
    let checks: Vec<String> =
        ok.iter().map(|(name, passed)| format!("\"{name}\": {passed}")).collect();
    format!(
        "{{\n  \"schema\": \"gcs-loopback-bench/v1\",\n  \"nodes\": {},\n  \"mode\": \"closed\",\n  \"window\": {},\n  \"warmup_ops\": {},\n  \"ops\": {},\n  \"submitted\": {},\n  \"delivered\": {},\n  \"elapsed_ms\": {},\n  \"ops_per_sec\": {:.1},\n  \"latency_us\": {{ \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {} }},\n  \"checks\": {{ {} }}\n}}\n",
        a.nodes,
        a.window,
        a.warmup,
        a.ops,
        report.submitted,
        report.delivered,
        report.elapsed.as_millis(),
        report.throughput_ops(),
        h.mean(),
        h.percentile(50.0),
        h.percentile(95.0),
        h.percentile(99.0),
        h.max(),
        checks.join(", "),
    )
}

fn main() {
    let a = parse_args();
    // Trace capacity sized so a full run (Bcast + n×Brcv per op, plus
    // token traffic) fits without eviction — the monitors need the
    // complete stream.
    let obs = Obs::with_trace_capacity(1 << 22);
    let cluster = LoopbackCluster::start_with_obs(
        ClusterConfig { n: a.nodes, delta_ms: a.delta_ms, transport: Default::default() },
        obs.clone(),
    )
    .unwrap_or_else(|e| {
        eprintln!("gcs-loopback-bench: bind failed: {e}");
        exit(1);
    });

    let full_view = |c: &LoopbackCluster| {
        c.views().iter().all(|vs| vs.last().is_some_and(|v| v.size() == a.nodes as usize))
    };
    if !wait_for(Duration::from_secs(30), || full_view(&cluster)) {
        eprintln!("gcs-loopback-bench: initial view never formed");
        exit(1);
    }

    let cfg = LoadConfig {
        ops: a.ops,
        value_base: 1,
        mode: LoadMode::Closed { window: a.window },
        idle_timeout: Duration::from_secs(30),
        warmup: a.warmup,
    };
    let report = match run_load(cluster.addr(ProcId(0)), &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gcs-loopback-bench: load run failed: {e}");
            exit(1);
        }
    };

    let mut failed = false;
    if report.delivered < report.submitted {
        eprintln!(
            "gcs-loopback-bench: FAIL: {} of {} operations never delivered",
            report.submitted - report.delivered,
            report.submitted
        );
        failed = true;
    }

    // Let the last deliveries propagate to every node before snapshotting.
    let total = (a.warmup + a.ops) as usize;
    if !cluster.await_deliveries(total, Duration::from_secs(30)) {
        eprintln!("gcs-loopback-bench: FAIL: peers missed client traffic");
        failed = true;
    }

    let mut checks: Vec<(&str, bool)> = Vec::new();
    if a.check {
        let events = obs.trace.snapshot();
        let now_ms = obs.trace.now_ms();
        let params = BoundParams::standard(a.nodes, a.delta_ms);
        let mut stab = StabilizationMonitor::new(params);
        let mut round = TokenRoundMonitor::new(params);
        stab.feed_all(&events);
        round.feed_all(&events);
        let stab = stab.finish();
        let round = round.finish(now_ms);
        if obs.trace.evicted() > 0 {
            eprintln!(
                "gcs-loopback-bench: FAIL: trace ring evicted {} events; monitors are blind",
                obs.trace.evicted()
            );
            failed = true;
        }
        if !stab.ok() {
            eprintln!(
                "gcs-loopback-bench: FAIL: stabilization monitor (b = {} ms): {:?}",
                stab.bound_ms,
                stab.violations.first()
            );
        }
        if !round.ok() {
            eprintln!(
                "gcs-loopback-bench: FAIL: token-round monitor (d = {} ms): {:?}",
                round.bound_ms,
                round.violations.first()
            );
        }
        checks.push(("stabilization_monitor", stab.ok()));
        checks.push(("token_round_monitor", round.ok()));

        let trace = cluster.stop();
        let to = check_to_trace(&to_obs(&trace).untimed());
        if !to.ok() {
            eprintln!("gcs-loopback-bench: FAIL: TO checker: {:?}", to.violations.first());
        }
        let cause = check_trace(&vs_actions(&trace), &ProcId::range(a.nodes));
        if !cause.ok() {
            eprintln!("gcs-loopback-bench: FAIL: VS cause checker: {:?}", cause.violations.first());
        }
        checks.push(("to_checker", to.ok()));
        checks.push(("vs_cause_checker", cause.ok()));
        failed |= checks.iter().any(|(_, ok)| !ok);
    } else {
        cluster.stop();
    }

    let json = json_result(&a, &report, &checks);
    if let Err(e) = std::fs::write(&a.out, &json) {
        eprintln!("gcs-loopback-bench: cannot write {}: {e}", a.out);
        failed = true;
    }

    let frames = obs.registry.snapshot().counter_total("net_frames_sent_total");
    println!(
        "gcs-loopback-bench: {} peer frames sent cluster-wide ({:.1} per delivered op)",
        frames,
        frames as f64 / report.delivered.max(1) as f64
    );
    let h = &report.latency_us;
    println!(
        "gcs-loopback-bench: {} nodes, window {}, {} ops: {:.1} ops/s | p50 {} us | p95 {} us | p99 {} us",
        a.nodes,
        a.window,
        a.ops,
        report.throughput_ops(),
        h.percentile(50.0),
        h.percentile(95.0),
        h.percentile(99.0),
    );

    if let Some(floor) = a.floor {
        if report.throughput_ops() < floor {
            eprintln!(
                "gcs-loopback-bench: FAIL: {:.1} ops/s is below the floor of {floor} ops/s",
                report.throughput_ops()
            );
            failed = true;
        } else {
            println!(
                "gcs-loopback-bench: throughput gate passed ({:.1} >= {floor} ops/s)",
                report.throughput_ops()
            );
        }
    }
    if failed {
        exit(1);
    }
}
