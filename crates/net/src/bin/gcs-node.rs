//! `gcs-node`: one VS/TO node over TCP.
//!
//! ```text
//! gcs-node --id 0 --peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 \
//!          [--delta 20] [--metrics-addr 127.0.0.1:9100]
//! ```
//!
//! `--peers` lists every node's address in id order; the node binds the
//! address at position `--id` and connects outward to the rest. `--delta`
//! is the protocol δ in milliseconds (π = 2nδ, μ = 4nδ). The node runs
//! until killed, printing a status line every two seconds; clients
//! connect to the same port with the client protocol (see `gcs-client`).
//!
//! With `--metrics-addr`, the node serves its counters and latency
//! histograms as Prometheus-style text on that address (plain
//! `TcpListener`, any request path) and runs the paper's `b`/`d` bound
//! monitors online over its own event trace, reporting violations in the
//! status line as they appear.

use gcs_model::{ProcId, Time};
use gcs_net::runtime::{Clock, NetNode};
use gcs_net::transport::TransportConfig;
use gcs_obs::{BoundParams, Obs, StabilizationMonitor, TokenRoundMonitor};
use gcs_vsimpl::{DetectorPolicy, ProtoConfig};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::process::exit;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: gcs-node --id <i> --peers <addr0,addr1,...> [--delta <ms>] [--metrics-addr <addr>]\n\
         \n\
         --id                this node's index into the peer list\n\
         --peers             comma-separated listen addresses for every node, in id order\n\
         --delta             protocol delta in milliseconds (default 20)\n\
         --metrics-addr      serve Prometheus-style metrics text on this address\n\
         --adaptive-detector use the accrual failure detector (timeouts track measured\n\
         \u{20}                   token gaps; effective bounds exported as detector_*_hat_ms)"
    );
    exit(2)
}

fn main() {
    let mut id: Option<u32> = None;
    let mut peers: Vec<SocketAddr> = Vec::new();
    let mut delta: Time = 20;
    let mut metrics_addr: Option<SocketAddr> = None;
    let mut adaptive = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--id" => {
                id = args.next().and_then(|s| s.parse().ok());
                if id.is_none() {
                    usage();
                }
            }
            "--peers" => {
                let Some(list) = args.next() else { usage() };
                for part in list.split(',') {
                    match part.trim().parse() {
                        Ok(a) => peers.push(a),
                        Err(_) => {
                            eprintln!("gcs-node: bad address {part:?}");
                            usage();
                        }
                    }
                }
            }
            "--delta" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else { usage() };
                delta = v;
            }
            "--metrics-addr" => {
                metrics_addr = args.next().and_then(|s| s.parse().ok());
                if metrics_addr.is_none() {
                    usage();
                }
            }
            "--adaptive-detector" => {
                adaptive = true;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("gcs-node: unknown argument {other:?}");
                usage();
            }
        }
    }

    let Some(id) = id else { usage() };
    if peers.is_empty() || (id as usize) >= peers.len() {
        eprintln!("gcs-node: --id must index into --peers");
        usage();
    }

    let me = ProcId(id);
    let n = peers.len() as u32;
    let addrs: BTreeMap<ProcId, SocketAddr> =
        peers.iter().enumerate().map(|(i, &a)| (ProcId(i as u32), a)).collect();
    let listener = match TcpListener::bind(addrs[&me]) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("gcs-node: cannot bind {}: {e}", addrs[&me]);
            exit(1);
        }
    };

    let obs = Obs::new();
    let _metrics = metrics_addr.map(|addr| {
        let l = match TcpListener::bind(addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("gcs-node: cannot bind metrics address {addr}: {e}");
                exit(1);
            }
        };
        match gcs_obs::serve(l, obs.registry.clone()) {
            Ok(s) => {
                println!("gcs-node {me}: metrics on http://{}", s.addr());
                s
            }
            Err(e) => {
                eprintln!("gcs-node: metrics server failed: {e}");
                exit(1);
            }
        }
    });

    let mut proto = ProtoConfig::standard(n, delta);
    if adaptive {
        proto.detector = DetectorPolicy::adaptive();
    }
    let node = match NetNode::start_with_obs(
        me,
        proto,
        listener,
        &addrs,
        TransportConfig::default(),
        Clock::new(),
        obs.clone(),
    ) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("gcs-node: start failed: {e}");
            exit(1);
        }
    };

    // Online bound monitors over this node's own event stream. A
    // single-process view of a distributed run: view changes and
    // deliveries observed *here*, checked against the paper's b/d with
    // the configured parameters.
    let params = BoundParams::standard(n, delta as u64);
    let mut stab = StabilizationMonitor::new(params);
    let mut round = TokenRoundMonitor::new(params);
    let mut seen_seq = 0u64;
    let mut reported_stab = 0usize;
    let mut reported_round = 0usize;

    println!("gcs-node {me}: listening on {}, {} peers, delta {delta} ms", addrs[&me], n - 1);
    loop {
        std::thread::sleep(Duration::from_secs(2));
        let fresh = obs.trace.snapshot_since(seen_seq);
        if let Some(last) = fresh.last() {
            seen_seq = last.seq;
        }
        stab.feed_all(&fresh);
        round.feed_all(&fresh);
        for v in &stab.violations()[reported_stab..] {
            println!("gcs-node {me}: BOUND VIOLATION: {v}");
        }
        reported_stab = stab.violations().len();
        for v in &round.violations()[reported_round..] {
            println!("gcs-node {me}: BOUND VIOLATION: {v}");
        }
        reported_round = round.violations().len();

        let view = node.views().last().map(|v| v.to_string()).unwrap_or_else(|| "<none>".into());
        println!(
            "gcs-node {me}: delivered {} | view {view} | sent {} recv {} dropped {} rejected {} | \
             b-checked {} d-checked {} violations {}",
            node.delivered().len(),
            node.transport().frames_sent(),
            node.transport().frames_received(),
            node.transport().frames_dropped(),
            node.transport().frames_rejected(),
            stab.checked(),
            round.checked(),
            reported_stab + reported_round,
        );
    }
}
