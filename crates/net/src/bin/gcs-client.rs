//! `gcs-client`: a load-generating client for `gcs-node`.
//!
//! ```text
//! gcs-client --addr 127.0.0.1:7000 --ops 10000 [--window 32 | --rate 500] [--base 1]
//! ```
//!
//! Connects to one node, submits `--ops` values, watches the delivery
//! push stream, and prints throughput and a latency histogram. With
//! `--window` (default) the client is closed-loop; with `--rate` it is
//! open-loop at that many operations per second. Concurrent clients
//! against one cluster must use disjoint `--base` ranges.

use gcs_net::load::{run_load, LoadConfig, LoadMode};
use std::net::SocketAddr;
use std::process::exit;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: gcs-client --addr <host:port> [--ops <n>] [--window <w> | --rate <r>]\n\
         \n\
         --addr    node to connect to\n\
         --ops     operations to submit (default 1000)\n\
         --window  closed-loop outstanding window (default 32)\n\
         --rate    open-loop offered rate, ops/s (overrides --window)\n\
         --base    first value in this client's range (default 1)\n\
         --warmup  untimed warm-up operations before sampling (default 0)\n\
         --idle    idle timeout in seconds before giving up (default 30)"
    );
    exit(2)
}

fn main() {
    let mut addr: Option<SocketAddr> = None;
    let mut ops: u64 = 1000;
    let mut window: usize = 32;
    let mut rate: Option<u64> = None;
    let mut base: u64 = 1;
    let mut warmup: u64 = 0;
    let mut idle_secs: u64 = 30;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("gcs-client: {what} needs a value");
                usage();
            }
        };
        match arg.as_str() {
            "--addr" => match take("--addr").parse() {
                Ok(a) => addr = Some(a),
                Err(_) => usage(),
            },
            "--ops" => ops = take("--ops").parse().unwrap_or_else(|_| usage()),
            "--window" => window = take("--window").parse().unwrap_or_else(|_| usage()),
            "--rate" => rate = Some(take("--rate").parse().unwrap_or_else(|_| usage())),
            "--base" => base = take("--base").parse().unwrap_or_else(|_| usage()),
            "--warmup" => warmup = take("--warmup").parse().unwrap_or_else(|_| usage()),
            "--idle" => idle_secs = take("--idle").parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("gcs-client: unknown argument {other:?}");
                usage();
            }
        }
    }

    let Some(addr) = addr else { usage() };
    let mode = match rate {
        Some(r) => LoadMode::Open { rate: r },
        None => LoadMode::Closed { window },
    };
    let cfg = LoadConfig {
        ops,
        value_base: base,
        mode,
        idle_timeout: Duration::from_secs(idle_secs),
        warmup,
    };

    println!("gcs-client: {addr}, {ops} ops, {mode:?}");
    let report = match run_load(addr, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gcs-client: {e}");
            exit(1);
        }
    };

    let h = &report.latency_us;
    println!(
        "submitted {} | delivered {} | {:.1} ops/s over {:?}",
        report.submitted,
        report.delivered,
        report.throughput_ops(),
        report.elapsed,
    );
    println!(
        "latency us: mean {} | p50 {} | p95 {} | p99 {} | max {}",
        h.mean(),
        h.percentile(50.0),
        h.percentile(95.0),
        h.percentile(99.0),
        h.max(),
    );
    if report.delivered < report.submitted {
        eprintln!(
            "gcs-client: {} operations not seen delivered",
            report.submitted - report.delivered
        );
        exit(1);
    }
}
