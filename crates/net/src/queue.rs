//! The bounded per-peer send queue: a small MPSC channel with
//! `try_send` producers and a timed-wait consumer, built on the
//! [`gcs_mc::Shims`] sync surface so the exact structure the transport
//! ships is the one the gcs-mc model checker explores
//! (crates/net/tests/mc_queue.rs; see docs/CONCURRENCY.md).
//!
//! This replaces the `std::sync::mpsc::sync_channel` the transport
//! used before PR 10. Semantics are the subset the writer loop needs:
//!
//! - `try_send` never blocks: a full queue or a dead receiver is an
//!   error the caller counts as a drop (the paper's fire-and-forget
//!   send contract — the protocol recovers via its timers).
//! - `recv_timeout` blocks with a timeout so the writer loop can poll
//!   its shutdown flag; the timeout restarts on each wakeup, which is
//!   fine for a heartbeat and keeps the wait logic free of wall-clock
//!   branching (a requirement for deterministic model checking).
//! - Dropping the receiver (writer death) turns every later `try_send`
//!   into `Disconnected`; dropping the last sender wakes the receiver
//!   so it can observe `Disconnected` instead of sleeping forever.
//!
//! All state sits behind one mutex, locked with the poison-tolerant
//! `lock_clean` discipline: a sender that panicked elsewhere must not
//! cascade-kill the writer loop (a dead writer looks exactly like a
//! partition — the PR 5 lesson).

use gcs_mc::{CondvarApi, MutexApi, Shims, StdShims};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// `try_send` failure: the value comes back to the caller either way.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity.
    Full(T),
    /// The receiver is gone (writer death).
    Disconnected(T),
}

/// `recv_timeout` failure.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No value arrived within (roughly) the timeout.
    Timeout,
    /// Every sender is gone and the queue is drained.
    Disconnected,
}

/// `try_recv` failure.
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty.
    Empty,
    /// Every sender is gone and the queue is drained.
    Disconnected,
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T: Send + 'static, S: Shims> {
    inner: S::Mutex<Inner<T>>,
    recv_cv: S::Condvar,
    cap: usize,
}

/// The producer half. Clone freely; the receiver learns `Disconnected`
/// when the last clone drops.
pub struct QueueSender<T: Send + 'static, S: Shims = StdShims> {
    shared: Arc<Shared<T, S>>,
}

/// The consumer half (single consumer). Dropping it fails all later
/// sends with `Disconnected`.
pub struct QueueReceiver<T: Send + 'static, S: Shims = StdShims> {
    shared: Arc<Shared<T, S>>,
}

/// A bounded queue holding at most `cap` values (minimum 1).
pub fn bounded<T: Send + 'static, S: Shims>(
    cap: usize,
) -> (QueueSender<T, S>, QueueReceiver<T, S>) {
    let shared = Arc::new(Shared {
        inner: S::Mutex::new(Inner { queue: VecDeque::new(), senders: 1, receiver_alive: true }),
        recv_cv: S::Condvar::new(),
        cap: cap.max(1),
    });
    (QueueSender { shared: Arc::clone(&shared) }, QueueReceiver { shared })
}

impl<T: Send + 'static, S: Shims> QueueSender<T, S> {
    /// Enqueues without blocking. Full and dead-receiver queues return
    /// the value so the caller can count the drop.
    pub fn try_send(&self, t: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.inner.lock_clean();
        if !inner.receiver_alive {
            return Err(TrySendError::Disconnected(t));
        }
        if inner.queue.len() >= self.shared.cap {
            return Err(TrySendError::Full(t));
        }
        inner.queue.push_back(t);
        drop(inner);
        S::cv_notify_all(&self.shared.recv_cv);
        Ok(())
    }
}

impl<T: Send + 'static, S: Shims> Clone for QueueSender<T, S> {
    fn clone(&self) -> Self {
        self.shared.inner.lock_clean().senders += 1;
        QueueSender { shared: Arc::clone(&self.shared) }
    }
}

impl<T: Send + 'static, S: Shims> Drop for QueueSender<T, S> {
    fn drop(&mut self) {
        let last = {
            let mut inner = self.shared.inner.lock_clean();
            inner.senders -= 1;
            inner.senders == 0
        };
        if last {
            // Wake a receiver parked in recv_timeout so it observes
            // Disconnected instead of waiting out its timeout.
            S::cv_notify_all(&self.shared.recv_cv);
        }
    }
}

impl<T: Send + 'static, S: Shims> QueueReceiver<T, S> {
    /// Blocks for (roughly) `timeout` awaiting a value. The timeout
    /// restarts after a wakeup that finds the queue still empty, so a
    /// steady trickle of traffic never times out — the writer loop
    /// only needs the timeout as a shutdown-poll heartbeat.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let mut inner = self.shared.inner.lock_clean();
        loop {
            if let Some(t) = inner.queue.pop_front() {
                return Ok(t);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let (guard, timed_out) = S::cv_wait_timeout(&self.shared.recv_cv, inner, timeout);
            inner = guard;
            if timed_out {
                return match inner.queue.pop_front() {
                    Some(t) => Ok(t),
                    None if inner.senders == 0 => Err(RecvTimeoutError::Disconnected),
                    None => Err(RecvTimeoutError::Timeout),
                };
            }
        }
    }

    /// Dequeues without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock_clean();
        match inner.queue.pop_front() {
            Some(t) => Ok(t),
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.shared.inner.lock_clean().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Send + 'static, S: Shims> Drop for QueueReceiver<T, S> {
    fn drop(&mut self) {
        self.shared.inner.lock_clean().receiver_alive = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn chan(cap: usize) -> (QueueSender<u64>, QueueReceiver<u64>) {
        bounded::<u64, StdShims>(cap)
    }

    #[test]
    fn values_pass_in_order() {
        let (tx, rx) = chan(8);
        for v in 0..5 {
            tx.try_send(v).unwrap();
        }
        for v in 0..5 {
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(v));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let (tx, rx) = chan(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.len(), 2);
    }

    #[test]
    fn receiver_death_disconnects_senders() {
        let (tx, rx) = chan(4);
        drop(rx);
        assert_eq!(tx.try_send(7), Err(TrySendError::Disconnected(7)));
    }

    #[test]
    fn sender_death_wakes_and_disconnects_receiver() {
        let (tx, rx) = chan(4);
        tx.try_send(5).unwrap();
        let t = std::thread::spawn(move || drop(tx));
        // Queued value first, then Disconnected — never a long timeout.
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(5));
        let start = Instant::now();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Err(RecvTimeoutError::Disconnected));
        assert!(start.elapsed() < Duration::from_secs(5));
        t.join().unwrap();
    }

    #[test]
    fn empty_queue_times_out() {
        let (tx, rx) = chan(1);
        let r = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(r, Err(RecvTimeoutError::Timeout));
        drop(tx);
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = chan(64);
        let t = std::thread::spawn(move || {
            for v in 0..100 {
                while tx.try_send(v).is_err() {
                    std::thread::yield_now();
                }
            }
        });
        let mut got = Vec::new();
        while got.len() < 100 {
            if let Ok(v) = rx.recv_timeout(Duration::from_secs(5)) {
                got.push(v);
            }
        }
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<u64>>());
    }
}
