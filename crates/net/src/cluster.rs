//! A loopback cluster harness for integration tests: boots `n` nodes on
//! ephemeral localhost ports, drives client traffic, severs and
//! re-establishes TCP links to emulate partitions and merges, and hands
//! the merged recorded trace to the existing VS/TO safety checkers.

use crate::runtime::{merge_recordings, Clock, NetNode, Recorded};
use crate::transport::TransportConfig;
use gcs_ioa::TimedTrace;
use gcs_model::{ProcId, Time, Value, View};
use gcs_netsim::TraceEvent;
use gcs_obs::Obs;
use gcs_vsimpl::{ImplEvent, ProtoConfig};
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

/// Cluster parameters.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub n: u32,
    /// The protocol δ in milliseconds. Over loopback the physical delay is
    /// microseconds, so δ here sets the protocol's *patience* (timer
    /// periods π = 2nδ, μ = 4nδ), not an injected latency.
    pub delta_ms: Time,
    /// Transport knobs.
    pub transport: TransportConfig,
}

impl ClusterConfig {
    /// A patient configuration for CI machines: δ = 20 ms, so a 5-node
    /// ring has π = 200 ms and a token timeout well above scheduling
    /// jitter.
    pub fn patient(n: u32) -> Self {
        ClusterConfig { n, delta_ms: 20, transport: TransportConfig::default() }
    }
}

/// A running loopback cluster.
pub struct LoopbackCluster {
    nodes: Vec<NetNode>,
    addrs: BTreeMap<ProcId, SocketAddr>,
    clock: std::sync::Arc<Clock>,
    obs: Obs,
    config: ClusterConfig,
}

impl LoopbackCluster {
    /// Binds `n` ephemeral listeners, then boots every node with the full
    /// address map. All nodes share one fresh [`Obs`] sink.
    pub fn start(config: ClusterConfig) -> io::Result<LoopbackCluster> {
        LoopbackCluster::start_with_obs(config, Obs::new())
    }

    /// Like [`LoopbackCluster::start`] with a caller-provided [`Obs`] —
    /// e.g. one with a trace capacity large enough that a test can rely
    /// on the complete event record (`obs.trace.evicted() == 0`).
    pub fn start_with_obs(config: ClusterConfig, obs: Obs) -> io::Result<LoopbackCluster> {
        let n = config.n;
        let mut listeners = Vec::new();
        let mut addrs = BTreeMap::new();
        for i in 0..n {
            let l = TcpListener::bind("127.0.0.1:0")?;
            addrs.insert(ProcId(i), l.local_addr()?);
            listeners.push(l);
        }
        let clock = Clock::new();
        let proto = ProtoConfig::standard(n, config.delta_ms);
        let mut nodes = Vec::new();
        for (i, listener) in listeners.into_iter().enumerate() {
            nodes.push(NetNode::start_with_obs(
                ProcId(i as u32),
                proto.clone(),
                listener,
                &addrs,
                config.transport.clone(),
                clock.clone(),
                obs.clone(),
            )?);
        }
        Ok(LoopbackCluster { nodes, addrs, clock, obs, config })
    }

    /// The shared observability sink (one registry + one trace stream
    /// across all nodes).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The configuration this cluster was started with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of nodes.
    pub fn n(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// The bound address of node `p` (for external TCP clients).
    pub fn addr(&self, p: ProcId) -> SocketAddr {
        self.addrs[&p]
    }

    /// The node handle for `p`.
    pub fn node(&self, p: ProcId) -> &NetNode {
        &self.nodes[p.index()]
    }

    /// Milliseconds since the cluster clock's epoch.
    pub fn uptime_ms(&self) -> Time {
        self.clock.now_ms()
    }

    /// Submits a value at node `p` through its local event path.
    pub fn submit(&self, p: ProcId, a: Value) {
        self.nodes[p.index()].submit(a);
    }

    /// What each node has delivered so far, in its local order.
    pub fn delivered(&self) -> Vec<Vec<(ProcId, Value)>> {
        self.nodes.iter().map(|n| n.delivered()).collect()
    }

    /// The views each node has installed so far.
    pub fn views(&self) -> Vec<Vec<View>> {
        self.nodes.iter().map(|n| n.views()).collect()
    }

    /// Blocks until every node has delivered at least `count` values or
    /// the deadline passes; returns whether the goal was reached.
    pub fn await_deliveries(&self, count: usize, deadline: Duration) -> bool {
        let start = Instant::now();
        while start.elapsed() < deadline {
            if self.nodes.iter().all(|n| n.delivered().len() >= count) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        false
    }

    /// Emulates a full partition of `p` from the rest: every link to and
    /// from `p` is severed at both endpoints.
    pub fn isolate(&self, p: ProcId) {
        for q in 0..self.n() {
            let q = ProcId(q);
            if q == p {
                continue;
            }
            self.nodes[p.index()].transport().sever(q);
            self.nodes[q.index()].transport().sever(p);
        }
    }

    /// Ends the emulated partition of `p`.
    pub fn rejoin(&self, p: ProcId) {
        for q in 0..self.n() {
            let q = ProcId(q);
            if q == p {
                continue;
            }
            self.nodes[p.index()].transport().heal(q);
            self.nodes[q.index()].transport().heal(p);
        }
    }

    /// Severs the single link pair between `p` and `q` (both directions).
    pub fn sever_pair(&self, p: ProcId, q: ProcId) {
        self.nodes[p.index()].transport().sever(q);
        self.nodes[q.index()].transport().sever(p);
    }

    /// Heals the single link pair between `p` and `q`.
    pub fn heal_pair(&self, p: ProcId, q: ProcId) {
        self.nodes[p.index()].transport().heal(q);
        self.nodes[q.index()].transport().heal(p);
    }

    /// Kills the live TCP connections between `p` and `q` without
    /// blocking them: both sides lose in-flight frames and reconnect with
    /// backoff under fresh connection generations.
    pub fn kick_pair(&self, p: ProcId, q: ProcId) {
        self.nodes[p.index()].transport().kick(q);
        self.nodes[q.index()].transport().kick(p);
    }

    /// A snapshot of the merged cluster trace (global sequence order,
    /// times clamped nondecreasing).
    pub fn merged_trace(&self) -> TimedTrace<TraceEvent<ImplEvent>> {
        let per_node: Vec<Vec<Recorded>> = self.nodes.iter().map(|n| n.recorded()).collect();
        merge_recordings(&per_node)
    }

    /// Stops every node and returns the final merged trace.
    pub fn stop(self) -> TimedTrace<TraceEvent<ImplEvent>> {
        let per_node: Vec<Vec<Recorded>> = self.nodes.iter().map(|n| n.stop()).collect();
        merge_recordings(&per_node)
    }
}
