//! A loopback cluster harness for integration tests: boots `n` nodes on
//! ephemeral localhost ports, drives client traffic, severs and
//! re-establishes TCP links to emulate partitions and merges, crashes and
//! restarts whole nodes (stable-storage recovery), and hands the merged
//! recorded trace — across every incarnation — to the existing VS/TO
//! safety checkers.

use crate::runtime::{merge_recordings, Clock, NetNode, Recorded};
use crate::transport::{ShutdownReport, TransportConfig};
use gcs_ioa::TimedTrace;
use gcs_model::{ProcId, Time, Value, View};
use gcs_netsim::TraceEvent;
use gcs_obs::{EventKind, FaultKind, Obs};
use gcs_vsimpl::{ImplEvent, ProtoConfig, StableState, TimedVsToTo};
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

/// Cluster parameters.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub n: u32,
    /// The protocol δ in milliseconds. Over loopback the physical delay is
    /// microseconds, so δ here sets the protocol's *patience* (timer
    /// periods π = 2nδ, μ = 4nδ), not an injected latency.
    pub delta_ms: Time,
    /// Transport knobs.
    pub transport: TransportConfig,
}

impl ClusterConfig {
    /// A patient configuration for CI machines: δ = 20 ms, so a 5-node
    /// ring has π = 200 ms and a token timeout well above scheduling
    /// jitter.
    pub fn patient(n: u32) -> Self {
        ClusterConfig { n, delta_ms: 20, transport: TransportConfig::default() }
    }
}

/// One node slot: the live node (if not crashed), the listener clone kept
/// for restarts (the OS socket stays open across a crash, so the port
/// survives and no TIME_WAIT rebind race exists), and everything the
/// crashed incarnations left behind.
struct Slot {
    node: Option<NetNode>,
    listener: TcpListener,
    incarnation: u64,
    stable: Option<StableState<TimedVsToTo>>,
    past_recorded: Vec<Vec<Recorded>>,
    past_delivered: Vec<Vec<(ProcId, Value)>>,
    past_views: Vec<Vec<View>>,
}

impl Slot {
    /// Deliveries across every incarnation, in order: the `VStoTO` client
    /// layer survives a crash on stable storage, so the concatenation is
    /// the client-visible delivery sequence of this location.
    fn delivered(&self) -> Vec<(ProcId, Value)> {
        let mut all: Vec<(ProcId, Value)> = self.past_delivered.iter().flatten().cloned().collect();
        if let Some(node) = &self.node {
            all.extend(node.delivered());
        }
        all
    }

    fn views(&self) -> Vec<View> {
        let mut all: Vec<View> = self.past_views.iter().flatten().cloned().collect();
        if let Some(node) = &self.node {
            all.extend(node.views());
        }
        all
    }

    fn recorded(&self) -> Vec<Recorded> {
        let mut all: Vec<Recorded> = self.past_recorded.iter().flatten().cloned().collect();
        if let Some(node) = &self.node {
            all.extend(node.recorded());
        }
        all
    }
}

/// A running loopback cluster.
pub struct LoopbackCluster {
    slots: Vec<Slot>,
    addrs: BTreeMap<ProcId, SocketAddr>,
    clock: std::sync::Arc<Clock>,
    obs: Obs,
    config: ClusterConfig,
    proto: ProtoConfig,
}

impl LoopbackCluster {
    /// Binds `n` ephemeral listeners, then boots every node with the full
    /// address map. All nodes share one fresh [`Obs`] sink.
    pub fn start(config: ClusterConfig) -> io::Result<LoopbackCluster> {
        LoopbackCluster::start_with_obs(config, Obs::new())
    }

    /// Like [`LoopbackCluster::start`] with a caller-provided [`Obs`] —
    /// e.g. one with a trace capacity large enough that a test can rely
    /// on the complete event record (`obs.trace.evicted() == 0`).
    pub fn start_with_obs(config: ClusterConfig, obs: Obs) -> io::Result<LoopbackCluster> {
        let n = config.n;
        let mut listeners = Vec::new();
        let mut addrs = BTreeMap::new();
        for i in 0..n {
            let l = TcpListener::bind("127.0.0.1:0")?;
            addrs.insert(ProcId(i), l.local_addr()?);
            listeners.push(l);
        }
        let clock = Clock::new();
        let proto = ProtoConfig::standard(n, config.delta_ms);
        let mut slots = Vec::new();
        for (i, listener) in listeners.into_iter().enumerate() {
            let keep = listener.try_clone()?;
            let node = NetNode::start_with_obs(
                ProcId(i as u32),
                proto.clone(),
                listener,
                &addrs,
                config.transport.clone(),
                clock.clone(),
                obs.clone(),
            )?;
            slots.push(Slot {
                node: Some(node),
                listener: keep,
                incarnation: 0,
                stable: None,
                past_recorded: Vec::new(),
                past_delivered: Vec::new(),
                past_views: Vec::new(),
            });
        }
        Ok(LoopbackCluster { slots, addrs, clock, obs, config, proto })
    }

    /// The shared observability sink (one registry + one trace stream
    /// across all nodes).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The configuration this cluster was started with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of nodes.
    pub fn n(&self) -> u32 {
        self.slots.len() as u32
    }

    /// The bound address of node `p` (for external TCP clients).
    pub fn addr(&self, p: ProcId) -> SocketAddr {
        // gcs-lint: allow(panic_path, reason = "test-harness accessor; every ProcId a test holds comes from this cluster's own node set")
        self.addrs[&p]
    }

    /// The node handle for `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is currently crashed.
    pub fn node(&self, p: ProcId) -> &NetNode {
        // gcs-lint: allow(panic_path, reason = "documented `# Panics` harness contract: asking for a crashed node is a test bug that must fail loudly, not limp")
        self.slots[p.index()].node.as_ref().expect("node is crashed")
    }

    /// Whether `p` is currently running (not crashed).
    pub fn is_up(&self, p: ProcId) -> bool {
        // gcs-lint: allow(panic_path, reason = "test-harness accessor; p.index() is bounded by the cluster's own node count")
        self.slots[p.index()].node.is_some()
    }

    /// Milliseconds since the cluster clock's epoch.
    pub fn uptime_ms(&self) -> Time {
        self.clock.now_ms()
    }

    /// Submits a value at node `p` through its local event path.
    pub fn submit(&self, p: ProcId, a: Value) {
        self.node(p).submit(a);
    }

    /// What each node has delivered so far, in its local order, including
    /// deliveries made by crashed prior incarnations.
    pub fn delivered(&self) -> Vec<Vec<(ProcId, Value)>> {
        self.slots.iter().map(|s| s.delivered()).collect()
    }

    /// The views each node has installed so far (across incarnations).
    pub fn views(&self) -> Vec<Vec<View>> {
        self.slots.iter().map(|s| s.views()).collect()
    }

    /// Blocks until every *live* node has delivered at least `count`
    /// values or the deadline passes; returns whether the goal was
    /// reached.
    pub fn await_deliveries(&self, count: usize, deadline: Duration) -> bool {
        let start = Instant::now();
        while start.elapsed() < deadline {
            let ok = self
                .slots
                .iter()
                .filter(|s| s.node.is_some())
                .all(|s| s.delivered().len() >= count);
            if ok {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        false
    }

    /// Emulates a full partition of `p` from the rest: every link to and
    /// from `p` is severed at both endpoints.
    pub fn isolate(&self, p: ProcId) {
        for q in 0..self.n() {
            let q = ProcId(q);
            if q == p {
                continue;
            }
            self.node(p).transport().sever(q);
            self.node(q).transport().sever(p);
        }
    }

    /// Ends the emulated partition of `p`.
    pub fn rejoin(&self, p: ProcId) {
        for q in 0..self.n() {
            let q = ProcId(q);
            if q == p {
                continue;
            }
            self.node(p).transport().heal(q);
            self.node(q).transport().heal(p);
        }
    }

    /// Severs the single link pair between `p` and `q` (both directions).
    pub fn sever_pair(&self, p: ProcId, q: ProcId) {
        self.node(p).transport().sever(q);
        self.node(q).transport().sever(p);
    }

    /// Heals the single link pair between `p` and `q`.
    pub fn heal_pair(&self, p: ProcId, q: ProcId) {
        self.node(p).transport().heal(q);
        self.node(q).transport().heal(p);
    }

    /// Kills the live TCP connections between `p` and `q` without
    /// blocking them: both sides lose in-flight frames and reconnect with
    /// backoff under fresh connection generations.
    pub fn kick_pair(&self, p: ProcId, q: ProcId) {
        self.node(p).transport().kick(q);
        self.node(q).transport().kick(p);
    }

    /// Crashes node `p`: the incarnation stops abruptly (its installed
    /// view, token, and buffers are lost), its stable-storage snapshot is
    /// kept for [`LoopbackCluster::restart`], and the crash is recorded
    /// as a fault event for the bound monitors.
    ///
    /// # Panics
    ///
    /// Panics if `p` is already crashed.
    pub fn crash(&mut self, p: ProcId) {
        // gcs-lint: allow(panic_path, reason = "test-harness accessor; p.index() is bounded by the cluster's own node count")
        let slot = &mut self.slots[p.index()];
        // gcs-lint: allow(panic_path, reason = "documented `# Panics` harness contract: crashing a crashed node is a test bug that must fail loudly")
        let node = slot.node.take().expect("node already crashed");
        self.obs.trace.record(EventKind::Fault { node: p.0, peer: p.0, kind: FaultKind::Crash });
        let (stable, recorded) = node.crash();
        slot.past_recorded.push(recorded);
        slot.past_delivered.push(node.delivered());
        slot.past_views.push(node.views());
        slot.stable = Some(stable);
    }

    /// Restarts a crashed node `p` from its stable-storage snapshot. The
    /// fresh incarnation binds the *same* port (the cluster keeps the
    /// listener socket open across the crash) and uses an outbound
    /// connection-generation base of `incarnation << 32`, so peers accept
    /// its new connections instead of refusing them as stale.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not crashed.
    pub fn restart(&mut self, p: ProcId) -> io::Result<()> {
        // gcs-lint: allow(panic_path, reason = "test-harness accessor; p.index() is bounded by the cluster's own node count")
        let slot = &mut self.slots[p.index()];
        assert!(slot.node.is_none(), "node {p} is not crashed");
        // gcs-lint: allow(panic_path, reason = "documented `# Panics` harness contract: crash() always stores a snapshot before restart() can run; absence is a harness bug")
        let stable = slot.stable.take().expect("crash() stored stable state");
        slot.incarnation += 1;
        let transport_cfg = TransportConfig {
            generation_base: slot.incarnation << 32,
            ..self.config.transport.clone()
        };
        self.obs.trace.record(EventKind::Fault { node: p.0, peer: p.0, kind: FaultKind::Restart });
        let node = NetNode::start_recovered(
            p,
            self.proto.clone(),
            slot.listener.try_clone()?,
            &self.addrs,
            transport_cfg,
            self.clock.clone(),
            self.obs.clone(),
            stable,
        )?;
        slot.node = Some(node);
        Ok(())
    }

    /// A snapshot of the merged cluster trace (global sequence order,
    /// times clamped nondecreasing), spanning every incarnation of every
    /// node.
    pub fn merged_trace(&self) -> TimedTrace<TraceEvent<ImplEvent>> {
        let per_node: Vec<Vec<Recorded>> = self.slots.iter().map(|s| s.recorded()).collect();
        merge_recordings(&per_node)
    }

    /// Stops every node and returns the final merged trace.
    pub fn stop(self) -> TimedTrace<TraceEvent<ImplEvent>> {
        self.stop_report().0
    }

    /// Like [`LoopbackCluster::stop`], but also aggregates the transport
    /// shutdown reports: `report.clean()` asserts that not a single
    /// spawned thread outlived its bounded join deadline.
    pub fn stop_report(self) -> (TimedTrace<TraceEvent<ImplEvent>>, ShutdownReport) {
        let mut report = ShutdownReport::default();
        let mut per_node = Vec::new();
        for slot in &self.slots {
            let mut recordings: Vec<Recorded> =
                slot.past_recorded.iter().flatten().cloned().collect();
            if let Some(node) = &slot.node {
                let (rec, r) = node.stop_report();
                recordings.extend(rec);
                report.absorb(r);
            }
            per_node.push(recordings);
        }
        (merge_recordings(&per_node), report)
    }
}
