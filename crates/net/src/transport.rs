//! The TCP peer transport: one accept loop per node, one reconnecting
//! writer thread per peer, bounded send queues, and connection-generation
//! numbering so frames from a stale socket can never be delivered into a
//! newer incarnation of a link.
//!
//! The transport deliberately provides the *timed asynchronous* service
//! the paper assumes and nothing more: frames can be lost (bounded queues
//! drop on overflow, reconnects lose whatever was in flight) and the
//! protocol layer above recovers through its own timeouts. There are no
//! acknowledgements and no retransmissions here.
//!
//! Partitions are emulated at this layer: [`TcpTransport::sever`] closes
//! the live sockets to a peer and drops every subsequent frame in both
//! directions until [`TcpTransport::heal`]; [`TcpTransport::kick`] closes
//! the sockets *without* blocking the peer, which exercises the reconnect
//! path (capped exponential backoff) while the membership layer rides out
//! the loss.
//!
//! The node runtime itself only needs the tiny [`Transport`] trait —
//! enqueue a packet, push a client delivery — so the same
//! `NodeCore` runs unchanged over this TCP endpoint or over the
//! deterministic in-process transport of `gcs-sim`.

use crate::codec::{read_frame, write_frame, Frame, FrameWriter, HelloKind};
use crate::queue::{self, QueueReceiver, QueueSender, RecvTimeoutError, TrySendError};
use gcs_model::{ProcId, Value, View};
use gcs_obs::{Counter, DropReason, EventKind, FaultKind, Obs};
use gcs_vsimpl::Wire;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Mutex locking that survives a poisoned lock instead of panicking.
///
/// Every structure guarded by these mutexes is updated in single steps
/// that leave it consistent (push to a queue, take a socket, replace a
/// map entry), so a thread that panicked while holding the guard cannot
/// have left the data half-written — recovering the guard is safe. The
/// alternative, `.lock().expect(…)`, turns one panicking thread into a
/// cascade that silently kills the accept loop, every reader, and every
/// writer: a dead daemon thread looks exactly like a partition.
pub(crate) trait LockExt<T> {
    /// Locks, recovering the guard from a poisoned mutex.
    fn lock_clean(&self) -> MutexGuard<'_, T>;
}

impl<T> LockExt<T> for Mutex<T> {
    fn lock_clean(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// What the node runtime needs from a transport — the seam between the
/// protocol stack and the wire. [`TcpTransport`] is the deployable
/// implementation; the deterministic simulator (`gcs-sim`) provides an
/// in-process one, so the exact same node code runs under both.
///
/// The contract mirrors the timed asynchronous model: `send` is
/// fire-and-forget (frames may be dropped, the protocol recovers via its
/// timers), and per-link delivery is FIFO with no duplication — the
/// guarantees a TCP connection stream gives, which the stale-generation
/// filter extends across reconnects.
pub trait Transport {
    /// Enqueues a protocol packet for `to`. May silently drop (bounded
    /// queues, severed links, no route); never blocks the caller.
    fn send(&self, to: ProcId, wire: Wire);
    /// Pushes a delivery notification to connected clients, if any.
    fn push_delivery(&self, src: ProcId, a: &Value);
    /// Pushes a batch of delivery notifications. The default forwards one
    /// at a time; transports with a vectored framing fast path override
    /// it to coalesce the whole batch into one write per client.
    fn push_deliveries(&self, batch: &[(ProcId, Value)]) {
        for (src, a) in batch {
            self.push_delivery(*src, a);
        }
    }
    /// Announces a newly installed view to subscribed clients, so shard
    /// routers can refresh their cached group → member-set map without
    /// polling. Default: no-op (the simulator and tests don't carry
    /// client subscriptions).
    fn push_view(&self, _view: &View) {}
}

/// Most frames a writer thread coalesces into one vectored write; keeps
/// a single syscall's iovec bounded even when the queue is deep. Public
/// because it also bounds the writer's in-flight window — frames in the
/// current batch are neither counted sent nor dropped yet — which
/// conservation-accounting tests need to know.
pub const COALESCE_FRAMES: usize = 256;
/// Byte ceiling for one coalesced write; stops a batch of large tokens
/// from building an arbitrarily large buffer before flushing.
const COALESCE_BYTES: usize = 1 << 20;

/// What [`TcpTransport::stop`] observed while tearing the endpoint down:
/// every spawned thread (accept loop, per-peer writers, per-connection
/// readers) is joined with a bounded deadline, so a test that leaks a
/// wedged thread finds out *in that test* rather than as cross-test
/// flakiness.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShutdownReport {
    /// Threads joined within the deadline.
    pub joined: usize,
    /// Threads still running at the deadline (detached, leaked).
    pub leaked: usize,
}

impl ShutdownReport {
    /// Whether every thread was joined.
    pub fn clean(&self) -> bool {
        self.leaked == 0
    }

    /// Accumulates another report.
    pub fn absorb(&mut self, other: ShutdownReport) {
        self.joined += other.joined;
        self.leaked += other.leaked;
    }
}

/// Transport tuning knobs.
#[derive(Clone, Debug)]
pub struct TransportConfig {
    /// Per-peer outbound queue depth; frames beyond it are dropped (the
    /// protocol recovers via its token-loss and probe timers).
    pub send_queue: usize,
    /// First reconnect delay.
    pub backoff_min: Duration,
    /// Reconnect delay cap (exponential doubling stops here).
    pub backoff_max: Duration,
    /// Test-only fault injection: sleep this long before every outbound
    /// frame write. Unlike `sever`/`kick`, this violates the timing
    /// assumptions *covertly* — no fault event is recorded — which is
    /// exactly what the online bound monitors are supposed to catch.
    pub inject_send_delay: Option<Duration>,
    /// Added to every outbound connection generation. A restarted node
    /// passes `incarnation << 32` here: peers remember the highest
    /// generation they ever saw from us (`latest_gen`), so a fresh
    /// incarnation restarting its counter at 1 would be refused forever.
    /// The base keeps generations monotone across process lifetimes.
    pub generation_base: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            send_queue: 1024,
            backoff_min: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
            inject_send_delay: None,
            generation_base: 0,
        }
    }
}

/// What the transport hands up to the node runtime.
#[derive(Debug)]
pub enum Incoming {
    /// A protocol packet from a peer link.
    Wire {
        /// The sending node (from the connection's `Hello`).
        from: ProcId,
        /// The packet.
        wire: Wire,
    },
    /// A client submitted values over a client connection (or the local
    /// harness injected them). One event can carry a whole burst: the
    /// reader coalesces every `Submit` frame already sitting in its read
    /// buffer, so a load generator's batched write crosses the channel
    /// as one event and the node runs one flush for the lot.
    Submit {
        /// The values to broadcast, in submission order.
        batch: Vec<Value>,
    },
    /// Shut the node down.
    Stop,
}

/// Pre-resolved observability handles for one transport endpoint.
/// Counters are looked up in the registry once at startup; the frame
/// hot paths touch only the shared atomics and the trace ring.
pub(crate) struct NetObs {
    obs: Obs,
    node: u32,
    sent: Counter,
    recv: Counter,
    drop_blocked: Counter,
    drop_queue_full: Counter,
    drop_no_link: Counter,
    drop_write_error: Counter,
    rejected: Counter,
    reconnects: Counter,
    faults: Counter,
}

impl NetObs {
    pub(crate) fn new(obs: Obs, node: ProcId) -> Self {
        let id = node.0.to_string();
        let l = [("node", id.as_str())];
        let r = &obs.registry;
        let dropped = |reason: &str| {
            r.counter_labeled(
                "net_frames_dropped_total",
                &[("node", id.as_str()), ("reason", reason)],
            )
        };
        NetObs {
            node: node.0,
            sent: r.counter_labeled("net_frames_sent_total", &l),
            recv: r.counter_labeled("net_frames_recv_total", &l),
            drop_blocked: dropped("blocked"),
            drop_queue_full: dropped("queue_full"),
            drop_no_link: dropped("no_link"),
            drop_write_error: dropped("write_error"),
            rejected: r.counter_labeled("net_frames_rejected_total", &l),
            reconnects: r.counter_labeled("net_reconnects_total", &l),
            faults: r.counter_labeled("net_faults_injected_total", &l),
            obs,
        }
    }

    pub(crate) fn obs(&self) -> &Obs {
        &self.obs
    }

    fn on_send(&self, to: ProcId) {
        self.sent.inc();
        self.obs.trace.record(EventKind::Send { from: self.node, to: to.0 });
    }

    fn on_recv(&self, from: ProcId) {
        self.recv.inc();
        self.obs.trace.record(EventKind::Recv { node: self.node, from: from.0 });
    }

    fn on_drop(&self, to: ProcId, reason: DropReason) {
        match reason {
            DropReason::Blocked => self.drop_blocked.inc(),
            DropReason::QueueFull => self.drop_queue_full.inc(),
            DropReason::NoLink => self.drop_no_link.inc(),
            DropReason::WriteError => self.drop_write_error.inc(),
        }
        self.obs.trace.record(EventKind::Drop { node: self.node, to: to.0, reason });
    }

    fn on_reject(&self, from: ProcId) {
        self.rejected.inc();
        self.obs.trace.record(EventKind::Reject { node: self.node, from: from.0 });
    }

    fn on_link_up(&self, peer: ProcId, generation: u64) {
        self.reconnects.inc();
        self.obs.trace.record(EventKind::LinkUp { node: self.node, peer: peer.0, generation });
    }

    fn on_link_down(&self, peer: ProcId) {
        self.obs.trace.record(EventKind::LinkDown { node: self.node, peer: peer.0 });
    }

    fn on_fault(&self, peer: ProcId, kind: FaultKind) {
        self.faults.inc();
        self.obs.trace.record(EventKind::Fault { node: self.node, peer: peer.0, kind });
    }
}

/// Counters for one peer link.
#[derive(Default)]
struct LinkStats {
    /// Connection attempts (successful or not).
    attempts: AtomicU64,
    /// Current connection generation (bumped on every established
    /// connection).
    generation: AtomicU64,
    /// Whether the outbound side is currently connected.
    connected: AtomicBool,
}

struct PeerLink {
    /// Outbound queue entries carry the destination group; the writer
    /// tags non-zero groups with [`Frame::PeerGroup`] on the wire.
    tx: QueueSender<(u32, Wire)>,
    stats: Arc<LinkStats>,
    /// The live outbound socket, kept so `sever`/`kick` can close it out
    /// from under the writer thread.
    current: Arc<Mutex<Option<TcpStream>>>,
}

/// Shared state the reader/acceptor threads need.
struct Shared {
    me: ProcId,
    shutdown: AtomicBool,
    /// Peers whose traffic is dropped in both directions (emulated
    /// partition).
    blocked: Mutex<BTreeSet<ProcId>>,
    /// Highest hello generation seen per peer; readers on stale
    /// connections stop delivering as soon as a newer one appears.
    latest_gen: Mutex<BTreeMap<ProcId, u64>>,
    /// Live inbound peer sockets, for severing.
    inbound: Mutex<Vec<(ProcId, TcpStream)>>,
    /// Live client connections, for delivery push.
    subscribers: Mutex<Vec<TcpStream>>,
    /// Every accepted socket, append-only. A reader that never delivers
    /// its `Hello` is registered nowhere else, so `stop` closes these to
    /// guarantee every reader unblocks (deterministic shutdown).
    accepted: Mutex<Vec<TcpStream>>,
    /// Per-connection reader threads, joined (bounded) at `stop`.
    readers: Mutex<Vec<JoinHandle<()>>>,
    /// Inbound routing: group id → the event channel of the `NodeCore`
    /// hosting that group instance. Group 0 is the channel passed to
    /// `start_with_obs`, so a single-group node never touches this
    /// beyond startup. Readers refresh their cached copy on a miss.
    routes: Mutex<BTreeMap<u32, Sender<Incoming>>>,
    /// Observability sink: counters plus the structured event trace.
    netobs: NetObs,
}

impl Shared {
    fn is_blocked(&self, p: ProcId) -> bool {
        self.blocked.lock_clean().contains(&p)
    }
}

/// A node's TCP endpoint: an accept loop, per-peer reconnecting writers,
/// and an event channel consumed by the node runtime.
pub struct TcpTransport {
    shared: Arc<Shared>,
    links: BTreeMap<ProcId, PeerLink>,
    local_addr: SocketAddr,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl TcpTransport {
    /// Starts the endpoint for node `me` with its own private
    /// observability sink; see [`TcpTransport::start_with_obs`].
    pub fn start(
        me: ProcId,
        listener: TcpListener,
        peers: &BTreeMap<ProcId, SocketAddr>,
        config: TransportConfig,
        events: Sender<Incoming>,
    ) -> io::Result<Arc<TcpTransport>> {
        TcpTransport::start_with_obs(me, listener, peers, config, events, Obs::new())
    }

    /// Starts the endpoint for node `me`: `listener` accepts inbound
    /// connections, `peers` maps every *other* node to its address, and
    /// decoded traffic is delivered into `events`. Frame counters and
    /// trace events are recorded into `obs` under a `node` label; a
    /// cluster passes one shared `Obs` to every node so the merged event
    /// stream sits on a single clock.
    pub fn start_with_obs(
        me: ProcId,
        listener: TcpListener,
        peers: &BTreeMap<ProcId, SocketAddr>,
        config: TransportConfig,
        events: Sender<Incoming>,
        obs: Obs,
    ) -> io::Result<Arc<TcpTransport>> {
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            me,
            shutdown: AtomicBool::new(false),
            blocked: Mutex::new(BTreeSet::new()),
            latest_gen: Mutex::new(BTreeMap::new()),
            inbound: Mutex::new(Vec::new()),
            subscribers: Mutex::new(Vec::new()),
            accepted: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
            routes: Mutex::new(BTreeMap::from([(0, events.clone())])),
            netobs: NetObs::new(obs, me),
        });
        let mut handles = Vec::new();

        // Accept loop. Inbound traffic reaches the node runtimes via the
        // group route table, seeded above with `events` as group 0.
        {
            let shared = shared.clone();
            handles.push(std::thread::spawn(move || {
                accept_loop(listener, shared);
            }));
        }

        // One writer per peer.
        let mut links = BTreeMap::new();
        for (&p, &addr) in peers {
            if p == me {
                continue;
            }
            let (tx, rx) = queue::bounded::<(u32, Wire), _>(config.send_queue);
            let stats = Arc::new(LinkStats::default());
            let current = Arc::new(Mutex::new(None));
            {
                let shared = shared.clone();
                let stats = stats.clone();
                let current = current.clone();
                let config = config.clone();
                handles.push(std::thread::spawn(move || {
                    writer_loop(p, addr, rx, shared, stats, current, config);
                }));
            }
            links.insert(p, PeerLink { tx, stats, current });
        }

        Ok(Arc::new(TcpTransport { shared, links, local_addr, handles: Mutex::new(handles) }))
    }

    /// The address the listener actually bound (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Enqueues a packet for `to` on group 0. Frames to blocked peers,
    /// unknown peers, or over a full queue are silently dropped (and
    /// counted).
    pub fn send(&self, to: ProcId, wire: Wire) {
        self.send_group(0, to, wire);
    }

    /// Enqueues a packet for the given group instance on `to`. All
    /// groups share the peer's single connection and outbound queue;
    /// the group id only selects the frame tagging (group 0 rides the
    /// untagged [`Frame::Peer`] for wire compatibility) and the event
    /// channel on the receiving side.
    pub fn send_group(&self, group: u32, to: ProcId, wire: Wire) {
        if self.shared.is_blocked(to) {
            self.shared.netobs.on_drop(to, DropReason::Blocked);
            return;
        }
        match self.links.get(&to) {
            None => {
                self.shared.netobs.on_drop(to, DropReason::NoLink);
            }
            Some(link) => match link.tx.try_send((group, wire)) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    self.shared.netobs.on_drop(to, DropReason::QueueFull);
                }
            },
        }
    }

    /// Registers the event channel for a group instance hosted behind
    /// this endpoint. Inbound [`Frame::PeerGroup`]/[`Frame::SubmitGroup`]
    /// frames for `group` are dispatched into `tx`; frames for a group
    /// with no registered route are rejected (and counted). Group 0 is
    /// pre-registered with the channel passed at startup.
    pub fn register_group(&self, group: u32, tx: Sender<Incoming>) {
        self.shared.routes.lock_clean().insert(group, tx);
    }

    /// Pushes a delivery notification to every connected client.
    pub fn push_delivery(&self, src: ProcId, a: &Value) {
        let frame = Frame::Deliver { src, a: a.clone() };
        let mut subs = self.shared.subscribers.lock_clean();
        subs.retain_mut(|stream| write_frame(stream, &frame).is_ok());
    }

    /// Pushes a batch of deliveries: the whole batch travels as one
    /// `DeliverBatch` frame, encoded once, and lands on each client
    /// socket as a single write instead of one frame (and one decode
    /// dispatch at the client) per notification.
    pub fn push_deliveries(&self, batch: &[(ProcId, Value)]) {
        self.push_deliveries_group(0, batch);
    }

    /// Pushes a batch of deliveries from one group instance. Group 0
    /// uses the untagged [`Frame::DeliverBatch`] so existing clients
    /// keep working; other groups are tagged [`Frame::DeliverGroup`].
    pub fn push_deliveries_group(&self, group: u32, batch: &[(ProcId, Value)]) {
        if batch.is_empty() {
            return;
        }
        let mut subs = self.shared.subscribers.lock_clean();
        if subs.is_empty() {
            return;
        }
        let mut fw = FrameWriter::new();
        let frame = if group == 0 {
            Frame::DeliverBatch(batch.to_vec())
        } else {
            Frame::DeliverGroup { group, batch: batch.to_vec() }
        };
        fw.push(&frame);
        subs.retain_mut(|stream| fw.write_to(stream).is_ok());
    }

    /// Pushes a view-change notification for a group instance to every
    /// subscribed client — the shard-map refresh path for routers.
    pub fn push_view_group(&self, group: u32, view: &View) {
        let mut subs = self.shared.subscribers.lock_clean();
        if subs.is_empty() {
            return;
        }
        let frame = Frame::View { group, view: view.clone() };
        subs.retain_mut(|stream| write_frame(stream, &frame).is_ok());
    }

    /// Emulates a network partition from this node to `p`: closes the live
    /// sockets and drops all traffic in both directions until
    /// [`TcpTransport::heal`].
    pub fn sever(&self, p: ProcId) {
        self.shared.netobs.on_fault(p, FaultKind::Sever);
        self.shared.blocked.lock_clean().insert(p);
        self.close_sockets(p);
    }

    /// Ends an emulated partition; the writer thread reconnects on its
    /// next backoff tick.
    pub fn heal(&self, p: ProcId) {
        self.shared.netobs.on_fault(p, FaultKind::Heal);
        self.shared.blocked.lock_clean().remove(&p);
    }

    /// Kills the live TCP connections to `p` without blocking the peer:
    /// in-flight frames are lost and the writer reconnects with backoff
    /// under a fresh connection generation.
    pub fn kick(&self, p: ProcId) {
        self.shared.netobs.on_fault(p, FaultKind::Kick);
        self.close_sockets(p);
    }

    fn close_sockets(&self, p: ProcId) {
        if let Some(link) = self.links.get(&p) {
            if let Some(stream) = link.current.lock_clean().take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        let mut inbound = self.shared.inbound.lock_clean();
        inbound.retain(|(q, stream)| {
            if *q == p {
                let _ = stream.shutdown(Shutdown::Both);
                false
            } else {
                true
            }
        });
    }

    /// Whether the outbound link to `p` is currently established.
    pub fn connected(&self, p: ProcId) -> bool {
        // ordering: Relaxed — advisory status bit read by tests/metrics;
        // no data is synchronized through it (see the writer loop).
        self.links.get(&p).is_some_and(|l| l.stats.connected.load(Ordering::Relaxed))
    }

    /// Connection attempts made toward `p` (reconnect/backoff activity).
    pub fn connect_attempts(&self, p: ProcId) -> u64 {
        // ordering: Relaxed — monotone stat counter, observational only.
        self.links.get(&p).map_or(0, |l| l.stats.attempts.load(Ordering::Relaxed))
    }

    /// The current outbound connection generation toward `p`.
    pub fn generation(&self, p: ProcId) -> u64 {
        // ordering: Relaxed — observational read; the authoritative
        // generation travels in the Hello frame, not through this load.
        self.links.get(&p).map_or(0, |l| l.stats.generation.load(Ordering::Relaxed))
    }

    /// Outbound frames dropped (blocked peer, no link, full queue, or
    /// write error), summed across drop reasons.
    pub fn frames_dropped(&self) -> u64 {
        let o = &self.shared.netobs;
        o.drop_blocked.get()
            + o.drop_queue_full.get()
            + o.drop_no_link.get()
            + o.drop_write_error.get()
    }

    /// Inbound frames rejected (blocked peer or stale generation).
    pub fn frames_rejected(&self) -> u64 {
        self.shared.netobs.rejected.get()
    }

    /// Outbound frames dropped specifically to a full send queue. Clean
    /// tests assert this stays 0 so slow-consumer losses cannot leak
    /// silently from one test case into another's assertions.
    pub fn queue_full_drops(&self) -> u64 {
        self.shared.netobs.drop_queue_full.get()
    }

    /// Outbound frames actually written to a peer socket.
    pub fn frames_sent(&self) -> u64 {
        self.shared.netobs.sent.get()
    }

    /// Inbound frames decoded and handed to the node runtime.
    pub fn frames_received(&self) -> u64 {
        self.shared.netobs.recv.get()
    }

    /// The observability sink this transport records into.
    pub fn obs(&self) -> &Obs {
        self.shared.netobs.obs()
    }

    /// Stops every thread and closes every socket. Every spawned thread —
    /// the accept loop, the per-peer writers, and the per-connection
    /// readers — is joined with a bounded deadline; a thread that fails
    /// to exit in time is counted as leaked in the report rather than
    /// blocking shutdown forever.
    pub fn stop(&self) -> ShutdownReport {
        // ordering: SeqCst — the shutdown flag is a lone boolean with no
        // payload published under it; every daemon loop polls it with
        // SeqCst too, keeping the reasoning trivial, and none of these
        // sites are on the frame hot path.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for link in self.links.values() {
            if let Some(stream) = link.current.lock_clean().take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        for (_, stream) in self.shared.inbound.lock_clean().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for stream in self.shared.subscribers.lock_clean().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // Close *every* socket ever accepted: a reader still waiting for
        // its `Hello` holds a socket registered nowhere else, and it must
        // see EOF now or it would outlive this test.
        for stream in self.shared.accepted.lock_clean().drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let mut pending: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handles.lock_clean());
        pending.extend(std::mem::take(&mut *self.shared.readers.lock_clean()));
        // Worst legitimate exit latency: a writer inside connect_timeout
        // (500 ms) or a backoff sleep (≤ backoff_max); readers unblock at
        // socket close. 5 s is comfortably past all of it.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut report = ShutdownReport::default();
        for h in pending {
            loop {
                if h.is_finished() {
                    let _ = h.join();
                    report.joined += 1;
                    break;
                }
                if Instant::now() >= deadline {
                    report.leaked += 1;
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        report
    }
}

impl Transport for TcpTransport {
    fn send(&self, to: ProcId, wire: Wire) {
        TcpTransport::send(self, to, wire);
    }

    fn push_delivery(&self, src: ProcId, a: &Value) {
        TcpTransport::push_delivery(self, src, a);
    }

    fn push_deliveries(&self, batch: &[(ProcId, Value)]) {
        TcpTransport::push_deliveries(self, batch);
    }

    fn push_view(&self, view: &View) {
        TcpTransport::push_view_group(self, 0, view);
    }
}

/// A [`Transport`] view of one group instance behind a shared
/// [`TcpTransport`]: the seam that lets an unmodified `NodeCore` run as
/// group `g` of a multi-group node. Sends are tagged with the group id,
/// deliveries and view pushes go out under it, and the transport's
/// reader dispatches inbound frames for the group to the channel
/// registered via [`TcpTransport::register_group`].
pub struct GroupEndpoint {
    group: u32,
    inner: Arc<TcpTransport>,
}

impl GroupEndpoint {
    /// Wraps `inner` as the endpoint of `group`. The caller registers
    /// the group's event channel separately.
    pub fn new(group: u32, inner: Arc<TcpTransport>) -> Self {
        GroupEndpoint { group, inner }
    }

    /// The group this endpoint speaks for.
    pub fn group(&self) -> u32 {
        self.group
    }

    /// The shared transport underneath.
    pub fn transport(&self) -> &Arc<TcpTransport> {
        &self.inner
    }
}

impl Transport for GroupEndpoint {
    fn send(&self, to: ProcId, wire: Wire) {
        self.inner.send_group(self.group, to, wire);
    }

    fn push_delivery(&self, src: ProcId, a: &Value) {
        self.inner.push_deliveries_group(self.group, &[(src, a.clone())]);
    }

    fn push_deliveries(&self, batch: &[(ProcId, Value)]) {
        self.inner.push_deliveries_group(self.group, batch);
    }

    fn push_view(&self, view: &View) {
        self.inner.push_view_group(self.group, view);
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    // ordering: SeqCst — shutdown-flag poll; pairs with the SeqCst store
    // in stop(), no payload rides on it.
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                // Keep a closable clone of every accepted socket and the
                // reader's handle: `stop` closes the sockets (so readers
                // see EOF even before their `Hello`) and then joins the
                // threads with a bounded deadline.
                if let Ok(clone) = stream.try_clone() {
                    shared.accepted.lock_clean().push(clone);
                }
                let reader_shared = shared.clone();
                let handle = std::thread::spawn(move || reader_loop(stream, reader_shared));
                shared.readers.lock_clean().push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn reader_loop(stream: TcpStream, shared: Arc<Shared>) {
    // Buffer reads: coalesced writers put many frames into one segment,
    // and decoding them one read_exact at a time straight off the socket
    // would pay two syscalls per frame.
    let mut stream = io::BufReader::with_capacity(64 * 1024, stream);
    // The first frame must identify the connection.
    let hello = match read_frame(&mut stream) {
        Ok(Some(Frame::Hello { node, generation, kind })) => (node, generation, kind),
        _ => return,
    };
    let (node, generation, kind) = hello;
    match kind {
        HelloKind::Peer => {
            {
                let mut latest = shared.latest_gen.lock_clean();
                let e = latest.entry(node).or_insert(0);
                if generation < *e {
                    // A stale socket racing a newer incarnation: refuse it.
                    return;
                }
                *e = generation;
            }
            let Ok(clone) = stream.get_ref().try_clone() else { return };
            shared.inbound.lock_clean().push((node, clone));
            // Snapshot of the group route table; refreshed on a miss, so
            // the steady state pays no lock per frame.
            let mut routes = shared.routes.lock_clean().clone();
            loop {
                match read_frame(&mut stream) {
                    Ok(Some(frame @ (Frame::Peer(_) | Frame::PeerGroup { .. }))) => {
                        // ordering: SeqCst — shutdown-flag poll; pairs
                        // with the SeqCst store in stop().
                        if shared.shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        let (group, wire) = match frame {
                            Frame::Peer(wire) => (0, wire),
                            Frame::PeerGroup { group, wire } => (group, wire),
                            _ => return,
                        };
                        let stale = {
                            let latest = shared.latest_gen.lock_clean();
                            latest.get(&node).copied().unwrap_or(0) > generation
                        };
                        if stale || shared.is_blocked(node) {
                            shared.netobs.on_reject(node);
                            if stale {
                                return;
                            }
                            continue;
                        }
                        if !routes.contains_key(&group) {
                            routes = shared.routes.lock_clean().clone();
                        }
                        let Some(route) = routes.get(&group) else {
                            // No group instance registered here: drop the
                            // frame, keep the connection (other groups
                            // share it).
                            shared.netobs.on_reject(node);
                            continue;
                        };
                        shared.netobs.on_recv(node);
                        if route.send(Incoming::Wire { from: node, wire }).is_err() {
                            return;
                        }
                    }
                    Ok(Some(_)) | Ok(None) | Err(_) => return,
                }
            }
        }
        HelloKind::Client => {
            if let Ok(clone) = stream.get_ref().try_clone() {
                shared.subscribers.lock_clean().push(clone);
            }
            let mut routes = shared.routes.lock_clean().clone();
            loop {
                match read_frame(&mut stream) {
                    Ok(Some(
                        first @ (Frame::Submit(_)
                        | Frame::SubmitBatch(_)
                        | Frame::SubmitGroup { .. }),
                    )) => {
                        // ordering: SeqCst — shutdown-flag poll; pairs
                        // with the SeqCst store in stop().
                        if shared.shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        let (group, mut batch) = match first {
                            Frame::Submit(a) => (0, vec![a]),
                            Frame::SubmitBatch(b) => (0, b),
                            Frame::SubmitGroup { group, batch } => (group, batch),
                            _ => return,
                        };
                        // Coalesce the burst: whatever same-group submit
                        // frames the read buffer already holds ride in
                        // the same event. Only complete buffered frames
                        // are taken — a frame split across segments (or
                        // destined for another group) waits for the next
                        // loop pass rather than blocking the batch.
                        while batch.len() < 4096 {
                            match peek_buffered_submit(&mut stream, group) {
                                Some(mut more) => batch.append(&mut more),
                                None => break,
                            }
                        }
                        if !routes.contains_key(&group) {
                            routes = shared.routes.lock_clean().clone();
                        }
                        let Some(route) = routes.get(&group) else {
                            // Unroutable submission: drop it, keep the
                            // client connection alive.
                            continue;
                        };
                        if route.send(Incoming::Submit { batch }).is_err() {
                            return;
                        }
                    }
                    Ok(Some(_)) | Ok(None) | Err(_) => return,
                }
            }
        }
    }
}

/// Decodes one complete submit frame (`Submit`, `SubmitBatch`, or
/// `SubmitGroup`) addressed to `group` out of the reader's buffered
/// bytes without blocking. Returns `None` — leaving the buffer intact
/// for the caller's blocking `read_frame` — when the buffer holds no
/// complete frame, or when the next frame is not a submission for the
/// same group (batches must not merge across groups).
fn peek_buffered_submit(stream: &mut io::BufReader<TcpStream>, group: u32) -> Option<Vec<Value>> {
    use std::io::BufRead;
    let buf = stream.buffer();
    let hdr: [u8; 4] = buf.get(..4)?.try_into().ok()?;
    let len = u32::from_be_bytes(hdr) as usize;
    let payload = buf.get(4..4usize.checked_add(len)?)?;
    match crate::codec::decode_payload(payload) {
        Ok(Frame::Submit(a)) if group == 0 => {
            stream.consume(4 + len);
            Some(vec![a])
        }
        Ok(Frame::SubmitBatch(b)) if group == 0 => {
            stream.consume(4 + len);
            Some(b)
        }
        Ok(Frame::SubmitGroup { group: g, batch }) if g == group => {
            stream.consume(4 + len);
            Some(batch)
        }
        _ => None,
    }
}

/// The on-wire shape of an outbound queue entry: group 0 rides the
/// untagged `Peer` frame (wire-compatible with single-group peers),
/// every other group is tagged.
fn peer_frame(group: u32, wire: Wire) -> Frame {
    if group == 0 {
        Frame::Peer(wire)
    } else {
        Frame::PeerGroup { group, wire }
    }
}

fn writer_loop(
    peer: ProcId,
    addr: SocketAddr,
    rx: QueueReceiver<(u32, Wire)>,
    shared: Arc<Shared>,
    stats: Arc<LinkStats>,
    current: Arc<Mutex<Option<TcpStream>>>,
    config: TransportConfig,
) {
    let mut backoff = config.backoff_min;
    'reconnect: loop {
        // ordering: SeqCst — shutdown-flag poll; pairs with the SeqCst
        // store in stop().
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // While blocked, keep the queue draining so the sender never sees
        // ancient frames flushed after a heal.
        if shared.is_blocked(peer) {
            while rx.try_recv().is_ok() {
                shared.netobs.on_drop(peer, DropReason::Blocked);
            }
            std::thread::sleep(Duration::from_millis(5));
            continue;
        }
        // ordering: Relaxed — monotone stat counter; only the advisory
        // connect_attempts() accessor reads it.
        stats.attempts.fetch_add(1, Ordering::Relaxed);
        let stream = match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
            Ok(s) => s,
            Err(_) => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(config.backoff_max);
                continue;
            }
        };
        backoff = config.backoff_min;
        let _ = stream.set_nodelay(true);
        // ordering: SeqCst — generations must be strictly monotone per
        // link: the peer's stale-frame filter compares the Hello value
        // against the highest generation it ever saw, so this counter
        // must never appear to move backwards from any thread's view.
        let generation =
            config.generation_base + stats.generation.fetch_add(1, Ordering::SeqCst) + 1;
        let mut write_half = stream;
        if write_frame(
            &mut write_half,
            &Frame::Hello { node: shared.me, generation, kind: HelloKind::Peer },
        )
        .is_err()
        {
            std::thread::sleep(backoff);
            continue;
        }
        if let Ok(clone) = write_half.try_clone() {
            *current.lock_clean() = Some(clone);
        }
        // ordering: Relaxed — advisory status bit for connected(); link
        // correctness never depends on observing it promptly.
        stats.connected.store(true, Ordering::Relaxed);
        shared.netobs.on_link_up(peer, generation);
        let mut batch = FrameWriter::new();
        loop {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok((group, wire)) => {
                    if shared.is_blocked(peer) {
                        shared.netobs.on_drop(peer, DropReason::Blocked);
                        break;
                    }
                    if let Some(delay) = config.inject_send_delay {
                        // Fault injection is defined per frame — skip
                        // coalescing so every frame pays the delay.
                        std::thread::sleep(delay);
                        if write_frame(&mut write_half, &peer_frame(group, wire)).is_err() {
                            shared.netobs.on_drop(peer, DropReason::WriteError);
                            break;
                        }
                        shared.netobs.on_send(peer);
                        continue;
                    }
                    // Coalesce: drain whatever queued behind this frame
                    // (bounded) and flush the whole batch as one vectored
                    // write instead of one syscall per frame.
                    batch.clear();
                    batch.push(&peer_frame(group, wire));
                    while batch.len() < COALESCE_FRAMES && batch.payload_bytes() < COALESCE_BYTES {
                        match rx.try_recv() {
                            Ok((g, w)) => batch.push(&peer_frame(g, w)),
                            Err(_) => break,
                        }
                    }
                    if batch.write_to(&mut write_half).is_err() {
                        // The stream is torn mid-batch; count every frame
                        // of it lost (some bytes may have landed, but the
                        // peer's length-prefix framing discards the tail).
                        for _ in 0..batch.len() {
                            shared.netobs.on_drop(peer, DropReason::WriteError);
                        }
                        break;
                    }
                    for _ in 0..batch.len() {
                        shared.netobs.on_send(peer);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    // ordering: SeqCst shutdown poll (pairs with stop());
                    // Relaxed for the advisory connected() status bit.
                    if shared.shutdown.load(Ordering::SeqCst) {
                        stats.connected.store(false, Ordering::Relaxed);
                        return;
                    }
                    if shared.is_blocked(peer) || current.lock_clean().is_none() {
                        // Severed or kicked out from under us.
                        break;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // ordering: Relaxed — advisory connected() status bit.
                    stats.connected.store(false, Ordering::Relaxed);
                    return;
                }
            }
        }
        // ordering: Relaxed — advisory connected() status bit.
        stats.connected.store(false, Ordering::Relaxed);
        shared.netobs.on_link_down(peer);
        let _ = write_half.shutdown(Shutdown::Both);
        *current.lock_clean() = None;
        continue 'reconnect;
    }
}
