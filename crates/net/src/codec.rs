//! The binary wire codec: length-prefixed frames, LEB128 varints, and
//! explicit enum tags for every message the TCP transport carries.
//!
//! The encoding is hand-rolled and dependency-free so the crate builds in
//! the offline vendored-stub workspace. The layout is specified normatively
//! in `docs/PROTOCOL.md` (appendix "Wire encoding"); the summary:
//!
//! ```text
//! frame   := len:u32be payload              len = |payload|, ≤ MAX_FRAME
//! payload := version:u8 tag:u8 body         version = WIRE_VERSION
//! ```
//!
//! Integers are unsigned LEB128 varints; sequences are a varint count
//! followed by the elements; options are a presence byte (0/1) followed by
//! the value. Decoding is total: any truncated, oversized, or corrupted
//! input yields a [`CodecError`], never a panic, and every frame must
//! consume its payload exactly (trailing bytes are an error).

use bytes::Bytes;
use gcs_core::msg::AppMsg;
use gcs_model::{Label, ProcId, Summary, Value, View, ViewId};
use gcs_vsimpl::{Token, TokenMsg, Wire};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io::{self, Read, Write};

/// The wire format version carried in every frame's first payload byte.
/// Version 2 changed the token body to the batched/pipelined layout
/// (`seq_start`/`entries`/`collect`/`acked` instead of the cumulative
/// `msgs` history and `clean_rounds`).
pub const WIRE_VERSION: u8 = 2;

/// Maximum accepted frame payload (64 MiB): large enough for a token or
/// state-exchange summary carrying a long view history, small enough that
/// a corrupted length prefix cannot trigger an absurd allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// A decoding failure. Every variant is a clean error — the decoder never
/// panics on hostile input.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// The input ended before the value was complete.
    Truncated,
    /// The frame announced a payload longer than [`MAX_FRAME`].
    Oversized(usize),
    /// The version byte did not match [`WIRE_VERSION`].
    BadVersion(u8),
    /// An enum tag byte was not one of the defined values.
    BadTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A varint ran longer than ten bytes (it cannot fit in a `u64`).
    VarintOverflow,
    /// A structurally invalid value (e.g. a zero label seqno).
    Invalid(&'static str),
    /// The frame decoded successfully but left unconsumed bytes.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated input"),
            CodecError::Oversized(n) => write!(f, "frame of {n} bytes exceeds MAX_FRAME"),
            CodecError::BadVersion(v) => write!(f, "unknown wire version {v}"),
            CodecError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag:#04x}"),
            CodecError::VarintOverflow => write!(f, "varint does not fit in u64"),
            CodecError::Invalid(what) => write!(f, "invalid value: {what}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Result alias for decoding.
pub type DecodeResult<T> = Result<T, CodecError>;

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

/// Who a connection belongs to, announced in the first frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HelloKind {
    /// A node-to-node link; subsequent frames are [`Frame::Peer`].
    Peer,
    /// A client connection; it submits values and receives deliveries.
    Client,
}

/// A transport frame: everything that crosses a socket.
#[derive(Clone, PartialEq, Debug)]
pub enum Frame {
    /// Connection preamble: the sender's identity, its connection
    /// generation (monotonically increasing per reconnect, so receivers
    /// can discard frames from stale sockets), and the connection kind.
    Hello {
        /// The sending node (for peers) or a client-chosen id squeezed
        /// into a `ProcId`-shaped integer (for clients).
        node: ProcId,
        /// Connection generation number.
        generation: u64,
        /// Peer link or client session.
        kind: HelloKind,
    },
    /// A protocol packet from the peer named in the preceding `Hello`.
    Peer(Wire),
    /// A client submits a value for totally ordered broadcast.
    Submit(Value),
    /// A burst of submissions in one frame, in submission order — the
    /// closed-loop generator refills its whole window in one frame, so
    /// the per-frame constants are paid once per refill rather than once
    /// per operation.
    SubmitBatch(Vec<Value>),
    /// The node reports a delivery (`brcv`) to a subscribed client.
    Deliver {
        /// The originating node.
        src: ProcId,
        /// The delivered value.
        a: Value,
    },
    /// A burst of deliveries in one frame: everything one batched token
    /// round handed the client at once crosses the socket under a single
    /// header and is decoded in a single dispatch, instead of paying the
    /// per-frame constants once per operation.
    DeliverBatch(Vec<(ProcId, Value)>),
    /// A protocol packet addressed to one group instance on the peer.
    /// Nodes hosting several `NodeCore`s behind a single transport tag
    /// every inter-node frame with the group it belongs to; an untagged
    /// [`Frame::Peer`] is equivalent to group 0.
    PeerGroup {
        /// The destination group instance.
        group: u32,
        /// The protocol packet.
        wire: Wire,
    },
    /// A client submits a burst of values to one group instance. The
    /// untagged [`Frame::SubmitBatch`] is equivalent to group 0.
    SubmitGroup {
        /// The destination group instance.
        group: u32,
        /// The submitted values, in submission order.
        batch: Vec<Value>,
    },
    /// A burst of deliveries from one group instance to a subscribed
    /// client. The untagged [`Frame::DeliverBatch`] is equivalent to
    /// group 0.
    DeliverGroup {
        /// The originating group instance.
        group: u32,
        /// The delivered `(source, value)` pairs, in delivery order.
        batch: Vec<(ProcId, Value)>,
    },
    /// A view-change notification for one group instance, pushed to
    /// subscribed clients. Shard routers refresh their cached shard map
    /// (group → member set) from these instead of polling.
    View {
        /// The group whose view changed.
        group: u32,
        /// The newly installed view.
        view: View,
    },
}

const TAG_HELLO: u8 = 0;
const TAG_PEER: u8 = 1;
const TAG_SUBMIT: u8 = 2;
const TAG_DELIVER: u8 = 3;
const TAG_DELIVER_BATCH: u8 = 4;
const TAG_SUBMIT_BATCH: u8 = 5;
const TAG_PEER_GROUP: u8 = 6;
const TAG_SUBMIT_GROUP: u8 = 7;
const TAG_DELIVER_GROUP: u8 = 8;
const TAG_VIEW: u8 = 9;

const WIRE_PROBE: u8 = 0;
const WIRE_CALL: u8 = 1;
const WIRE_ACCEPT: u8 = 2;
const WIRE_JOIN: u8 = 3;
const WIRE_TOKEN: u8 = 4;

const APP_VAL: u8 = 0;
const APP_SUMMARY: u8 = 1;

// ---------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn put_proc(out: &mut Vec<u8>, p: ProcId) {
    put_varint(out, p.0 as u64);
}

fn put_viewid(out: &mut Vec<u8>, g: ViewId) {
    put_varint(out, g.epoch);
    put_proc(out, g.origin);
}

fn put_view(out: &mut Vec<u8>, v: &View) {
    put_viewid(out, v.id);
    put_varint(out, v.set.len() as u64);
    for &p in &v.set {
        put_proc(out, p);
    }
}

fn put_value(out: &mut Vec<u8>, a: &Value) {
    put_bytes(out, a.as_bytes());
}

fn put_label(out: &mut Vec<u8>, l: &Label) {
    put_viewid(out, l.view);
    put_varint(out, l.seqno);
    put_proc(out, l.origin);
}

fn put_summary(out: &mut Vec<u8>, x: &Summary) {
    put_varint(out, x.con.len() as u64);
    for (l, a) in &x.con {
        put_label(out, l);
        put_value(out, a);
    }
    put_varint(out, x.ord.len() as u64);
    for l in &x.ord {
        put_label(out, l);
    }
    put_varint(out, x.next);
    match x.high {
        None => out.push(0),
        Some(g) => {
            out.push(1);
            put_viewid(out, g);
        }
    }
}

fn put_appmsg(out: &mut Vec<u8>, m: &AppMsg) {
    match m {
        AppMsg::Val(l, a) => {
            out.push(APP_VAL);
            put_label(out, l);
            put_value(out, a);
        }
        AppMsg::Summary(x) => {
            out.push(APP_SUMMARY);
            put_summary(out, x);
        }
    }
}

fn put_token_msg(out: &mut Vec<u8>, tm: &TokenMsg) {
    put_proc(out, tm.src);
    put_varint(out, tm.mid);
    put_appmsg(out, &tm.msg);
}

fn put_token(out: &mut Vec<u8>, t: &Token) {
    put_viewid(out, t.view);
    put_varint(out, t.round);
    put_varint(out, t.seq_start);
    put_varint(out, t.entries.len() as u64);
    for tm in &t.entries {
        put_token_msg(out, tm);
    }
    put_varint(out, t.collect.len() as u64);
    for tm in &t.collect {
        put_token_msg(out, tm);
    }
    put_varint(out, t.acked);
    put_varint(out, t.delivered.len() as u64);
    for (&p, &c) in &t.delivered {
        put_proc(out, p);
        put_varint(out, c);
    }
}

fn put_wire(out: &mut Vec<u8>, w: &Wire) {
    match w {
        Wire::Probe => out.push(WIRE_PROBE),
        Wire::Call { viewid } => {
            out.push(WIRE_CALL);
            put_viewid(out, *viewid);
        }
        Wire::Accept { viewid } => {
            out.push(WIRE_ACCEPT);
            put_viewid(out, *viewid);
        }
        Wire::Join { view } => {
            out.push(WIRE_JOIN);
            put_view(out, view);
        }
        Wire::Token(t) => {
            out.push(WIRE_TOKEN);
            put_token(out, t);
        }
    }
}

// ---------------------------------------------------------------------
// Primitive readers
// ---------------------------------------------------------------------

/// A bounds-checked cursor over a frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    /// When the payload lives in a shared [`Bytes`] buffer, decoded
    /// values are O(1) sub-views of it instead of per-value copies.
    /// `backing.as_slice()` is always identical to `buf`.
    backing: Option<&'a Bytes>,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0, backing: None }
    }

    fn with_backing(backing: &'a Bytes) -> Self {
        Cursor { buf: backing.as_slice(), pos: 0, backing: Some(backing) }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn u8(&mut self) -> DecodeResult<u8> {
        let b = *self.buf.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> DecodeResult<u64> {
        let mut x = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            let chunk = (b & 0x7f) as u64;
            // The 10th byte may only contribute the single remaining bit.
            if shift == 63 && chunk > 1 {
                return Err(CodecError::VarintOverflow);
            }
            x |= chunk << shift;
            if b & 0x80 == 0 {
                return Ok(x);
            }
        }
        Err(CodecError::VarintOverflow)
    }

    fn len(&mut self, what: &'static str) -> DecodeResult<usize> {
        let n = self.varint()?;
        let n = usize::try_from(n).map_err(|_| CodecError::Oversized(usize::MAX))?;
        // A collection cannot have more elements than remaining bytes
        // (every element is at least one byte); checking up front keeps a
        // corrupted count from provoking a huge pre-allocation.
        if n > self.remaining() {
            return Err(CodecError::Invalid(what));
        }
        Ok(n)
    }

    fn proc(&mut self) -> DecodeResult<ProcId> {
        let x = self.varint()?;
        u32::try_from(x).map(ProcId).map_err(|_| CodecError::Invalid("processor id exceeds u32"))
    }

    fn group(&mut self) -> DecodeResult<u32> {
        let x = self.varint()?;
        u32::try_from(x).map_err(|_| CodecError::Invalid("group id exceeds u32"))
    }

    fn viewid(&mut self) -> DecodeResult<ViewId> {
        let epoch = self.varint()?;
        let origin = self.proc()?;
        Ok(ViewId { epoch, origin })
    }

    fn view(&mut self) -> DecodeResult<View> {
        let id = self.viewid()?;
        let n = self.len("view member count")?;
        let mut set = BTreeSet::new();
        for _ in 0..n {
            set.insert(self.proc()?);
        }
        if set.len() != n {
            return Err(CodecError::Invalid("duplicate view member"));
        }
        Ok(View { id, set })
    }

    fn value(&mut self) -> DecodeResult<Value> {
        let n = self.len("byte string length")?;
        let (start, end) = (self.pos, self.pos + n);
        self.pos = end;
        Ok(match self.backing {
            // Zero-copy: the value is a sub-view of the frame payload,
            // sharing its allocation for as long as the value lives.
            Some(b) => Value::new(b.slice(start..end)),
            None => Value::from(self.buf[start..end].to_vec()),
        })
    }

    fn label(&mut self) -> DecodeResult<Label> {
        let view = self.viewid()?;
        let seqno = self.varint()?;
        let origin = self.proc()?;
        if seqno == 0 {
            return Err(CodecError::Invalid("label seqno must be positive"));
        }
        Ok(Label { view, seqno, origin })
    }

    fn summary(&mut self) -> DecodeResult<Summary> {
        let ncon = self.len("summary con count")?;
        let mut con = BTreeMap::new();
        for _ in 0..ncon {
            let l = self.label()?;
            let a = self.value()?;
            con.insert(l, a);
        }
        if con.len() != ncon {
            return Err(CodecError::Invalid("duplicate summary con label"));
        }
        let nord = self.len("summary ord count")?;
        let mut ord = Vec::with_capacity(nord);
        for _ in 0..nord {
            ord.push(self.label()?);
        }
        let next = self.varint()?;
        if next == 0 {
            return Err(CodecError::Invalid("summary next must be positive"));
        }
        let high = match self.u8()? {
            0 => None,
            1 => Some(self.viewid()?),
            tag => return Err(CodecError::BadTag { what: "summary high option", tag }),
        };
        Ok(Summary { con, ord, next, high })
    }

    fn appmsg(&mut self) -> DecodeResult<AppMsg> {
        match self.u8()? {
            APP_VAL => {
                let l = self.label()?;
                let a = self.value()?;
                Ok(AppMsg::Val(l, a))
            }
            APP_SUMMARY => Ok(AppMsg::Summary(self.summary()?)),
            tag => Err(CodecError::BadTag { what: "app message", tag }),
        }
    }

    fn token_msg(&mut self) -> DecodeResult<TokenMsg> {
        let src = self.proc()?;
        let mid = self.varint()?;
        let msg = self.appmsg()?;
        Ok(TokenMsg { src, mid, msg })
    }

    fn token(&mut self) -> DecodeResult<Token> {
        let view = self.viewid()?;
        let round = self.varint()?;
        let seq_start = self.varint()?;
        let nentries = self.len("token entry count")?;
        let mut entries = Vec::with_capacity(nentries);
        for _ in 0..nentries {
            entries.push(self.token_msg()?);
        }
        let ncollect = self.len("token collect count")?;
        let mut collect = Vec::with_capacity(ncollect);
        for _ in 0..ncollect {
            collect.push(self.token_msg()?);
        }
        let acked = self.varint()?;
        let ndel = self.len("token delivered count")?;
        let mut delivered = BTreeMap::new();
        for _ in 0..ndel {
            let p = self.proc()?;
            let c = self.varint()?;
            delivered.insert(p, c);
        }
        if delivered.len() != ndel {
            return Err(CodecError::Invalid("duplicate token delivered entry"));
        }
        Ok(Token { view, round, seq_start, entries, collect, acked, delivered })
    }

    fn wire(&mut self) -> DecodeResult<Wire> {
        match self.u8()? {
            WIRE_PROBE => Ok(Wire::Probe),
            WIRE_CALL => Ok(Wire::Call { viewid: self.viewid()? }),
            WIRE_ACCEPT => Ok(Wire::Accept { viewid: self.viewid()? }),
            WIRE_JOIN => Ok(Wire::Join { view: self.view()? }),
            WIRE_TOKEN => Ok(Wire::Token(Box::new(self.token()?))),
            tag => Err(CodecError::BadTag { what: "wire packet", tag }),
        }
    }

    fn frame(&mut self) -> DecodeResult<Frame> {
        let version = self.u8()?;
        if version != WIRE_VERSION {
            return Err(CodecError::BadVersion(version));
        }
        match self.u8()? {
            TAG_HELLO => {
                let node = self.proc()?;
                let generation = self.varint()?;
                let kind = match self.u8()? {
                    0 => HelloKind::Peer,
                    1 => HelloKind::Client,
                    tag => return Err(CodecError::BadTag { what: "hello kind", tag }),
                };
                Ok(Frame::Hello { node, generation, kind })
            }
            TAG_PEER => Ok(Frame::Peer(self.wire()?)),
            TAG_SUBMIT => Ok(Frame::Submit(self.value()?)),
            TAG_DELIVER => {
                let src = self.proc()?;
                let a = self.value()?;
                Ok(Frame::Deliver { src, a })
            }
            TAG_SUBMIT_BATCH => {
                let n = self.len("submit batch count")?;
                let mut batch = Vec::with_capacity(n);
                for _ in 0..n {
                    batch.push(self.value()?);
                }
                Ok(Frame::SubmitBatch(batch))
            }
            TAG_DELIVER_BATCH => {
                let n = self.len("deliver batch count")?;
                let mut batch = Vec::with_capacity(n);
                for _ in 0..n {
                    let src = self.proc()?;
                    let a = self.value()?;
                    batch.push((src, a));
                }
                Ok(Frame::DeliverBatch(batch))
            }
            TAG_PEER_GROUP => {
                let group = self.group()?;
                let wire = self.wire()?;
                Ok(Frame::PeerGroup { group, wire })
            }
            TAG_SUBMIT_GROUP => {
                let group = self.group()?;
                let n = self.len("submit group count")?;
                let mut batch = Vec::with_capacity(n);
                for _ in 0..n {
                    batch.push(self.value()?);
                }
                Ok(Frame::SubmitGroup { group, batch })
            }
            TAG_DELIVER_GROUP => {
                let group = self.group()?;
                let n = self.len("deliver group count")?;
                let mut batch = Vec::with_capacity(n);
                for _ in 0..n {
                    let src = self.proc()?;
                    let a = self.value()?;
                    batch.push((src, a));
                }
                Ok(Frame::DeliverGroup { group, batch })
            }
            TAG_VIEW => {
                let group = self.group()?;
                let view = self.view()?;
                Ok(Frame::View { group, view })
            }
            tag => Err(CodecError::BadTag { what: "frame", tag }),
        }
    }
}

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

/// Encodes a frame payload (version byte + tag + body, without the length
/// prefix).
pub fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    encode_payload_into(&mut out, frame);
    out
}

/// Encodes a frame payload into a caller-supplied buffer, appending to
/// whatever it already holds. This is the allocation-free form for hot
/// send paths: the caller keeps one scratch buffer and reuses its
/// capacity across frames.
pub fn encode_payload_into(out: &mut Vec<u8>, frame: &Frame) {
    out.push(WIRE_VERSION);
    match frame {
        Frame::Hello { node, generation, kind } => {
            out.push(TAG_HELLO);
            put_proc(out, *node);
            put_varint(out, *generation);
            out.push(match kind {
                HelloKind::Peer => 0,
                HelloKind::Client => 1,
            });
        }
        Frame::Peer(w) => {
            out.push(TAG_PEER);
            put_wire(out, w);
        }
        Frame::Submit(a) => {
            out.push(TAG_SUBMIT);
            put_value(out, a);
        }
        Frame::SubmitBatch(batch) => {
            out.push(TAG_SUBMIT_BATCH);
            put_varint(out, batch.len() as u64);
            for a in batch {
                put_value(out, a);
            }
        }
        Frame::Deliver { src, a } => {
            out.push(TAG_DELIVER);
            put_proc(out, *src);
            put_value(out, a);
        }
        Frame::DeliverBatch(batch) => {
            out.push(TAG_DELIVER_BATCH);
            put_varint(out, batch.len() as u64);
            for (src, a) in batch {
                put_proc(out, *src);
                put_value(out, a);
            }
        }
        Frame::PeerGroup { group, wire } => {
            out.push(TAG_PEER_GROUP);
            put_varint(out, u64::from(*group));
            put_wire(out, wire);
        }
        Frame::SubmitGroup { group, batch } => {
            out.push(TAG_SUBMIT_GROUP);
            put_varint(out, u64::from(*group));
            put_varint(out, batch.len() as u64);
            for a in batch {
                put_value(out, a);
            }
        }
        Frame::DeliverGroup { group, batch } => {
            out.push(TAG_DELIVER_GROUP);
            put_varint(out, u64::from(*group));
            put_varint(out, batch.len() as u64);
            for (src, a) in batch {
                put_proc(out, *src);
                put_value(out, a);
            }
        }
        Frame::View { group, view } => {
            out.push(TAG_VIEW);
            put_varint(out, u64::from(*group));
            put_view(out, view);
        }
    }
}

/// Decodes a frame payload produced by [`encode_payload`]. The payload
/// must be consumed exactly.
pub fn decode_payload(buf: &[u8]) -> DecodeResult<Frame> {
    let mut c = Cursor::new(buf);
    let frame = c.frame()?;
    if c.remaining() != 0 {
        return Err(CodecError::TrailingBytes(c.remaining()));
    }
    Ok(frame)
}

/// Decodes a frame payload held in a shared [`Bytes`] buffer. Identical
/// to [`decode_payload`], except every decoded [`Value`] is an O(1)
/// sub-view of `payload` rather than a copy — one allocation per frame
/// instead of one per value, which is the read-path complement of the
/// gather-writing [`FrameWriter`].
pub fn decode_payload_shared(payload: &Bytes) -> DecodeResult<Frame> {
    let mut c = Cursor::with_backing(payload);
    let frame = c.frame()?;
    if c.remaining() != 0 {
        return Err(CodecError::TrailingBytes(c.remaining()));
    }
    Ok(frame)
}

/// Encodes a full frame: 4-byte big-endian length prefix plus payload.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = encode_payload(frame);
    let mut out = Vec::with_capacity(payload.len() + 4);
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Writes one frame to a stream.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(frame))
}

/// A reusable gather-writer for batches of frames.
///
/// Frames are encoded back-to-back into one retained payload buffer (no
/// per-frame allocation once the buffer is warm); [`FrameWriter::write_to`]
/// then emits the whole batch as interleaved 4-byte big-endian length
/// headers and borrowed payload slices through a single
/// [`Write::write_vectored`] gather syscall where the stream accepts it,
/// with explicit continuation on partial writes.
#[derive(Default)]
pub struct FrameWriter {
    payloads: Vec<u8>,
    headers: Vec<[u8; 4]>,
    bounds: Vec<(usize, usize)>,
}

impl FrameWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        FrameWriter::default()
    }

    /// Drops all batched frames, retaining buffer capacity.
    pub fn clear(&mut self) {
        self.payloads.clear();
        self.headers.clear();
        self.bounds.clear();
    }

    /// Number of batched frames.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Total batched payload bytes (excluding length headers).
    pub fn payload_bytes(&self) -> usize {
        self.payloads.len()
    }

    /// Encodes one frame onto the batch.
    pub fn push(&mut self, frame: &Frame) {
        let start = self.payloads.len();
        encode_payload_into(&mut self.payloads, frame);
        let end = self.payloads.len();
        self.headers.push(((end - start) as u32).to_be_bytes());
        self.bounds.push((start, end));
    }

    /// Writes the whole batch, preferring one gather syscall. The batch
    /// is left intact; call [`FrameWriter::clear`] afterwards to reuse
    /// the buffers.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut slices: Vec<io::IoSlice<'_>> = Vec::with_capacity(self.bounds.len() * 2);
        for (i, &(start, end)) in self.bounds.iter().enumerate() {
            slices.push(io::IoSlice::new(&self.headers[i]));
            slices.push(io::IoSlice::new(&self.payloads[start..end]));
        }
        let total: usize = slices.iter().map(|s| s.len()).sum();
        let mut written = 0usize;
        while written < total {
            // Skip fully written slices; a slice written partway is
            // finished with a plain write of its remainder (rare — the
            // common case completes in one gather call).
            let mut off = written;
            let mut idx = 0;
            while idx < slices.len() && off >= slices[idx].len() {
                off -= slices[idx].len();
                idx += 1;
            }
            let n = if off == 0 {
                w.write_vectored(&slices[idx..])?
            } else {
                w.write(&slices[idx][off..])?
            };
            if n == 0 {
                return Err(io::ErrorKind::WriteZero.into());
            }
            written += n;
        }
        Ok(())
    }
}

/// Reads one frame from a stream. Returns `Ok(None)` on a clean EOF at a
/// frame boundary; decoding failures and mid-frame EOFs are errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, CodecError::Oversized(len)));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    // Decode out of a shared buffer so the values inside the frame
    // borrow the payload allocation instead of copying out of it.
    let payload = Bytes::from(payload);
    decode_payload_shared(&payload)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: &Frame) {
        let bytes = encode_payload(f);
        assert_eq!(&decode_payload(&bytes).expect("decodes"), f);
    }

    #[test]
    fn varint_boundaries_roundtrip() {
        for x in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, x);
            let mut c = Cursor::new(&buf);
            assert_eq!(c.varint().unwrap(), x);
            assert_eq!(c.remaining(), 0);
        }
    }

    #[test]
    fn simple_frames_roundtrip() {
        roundtrip(&Frame::Hello { node: ProcId(3), generation: 9, kind: HelloKind::Peer });
        roundtrip(&Frame::Hello { node: ProcId(0), generation: 0, kind: HelloKind::Client });
        roundtrip(&Frame::Peer(Wire::Probe));
        roundtrip(&Frame::Peer(Wire::Call { viewid: ViewId::new(4, ProcId(2)) }));
        roundtrip(&Frame::Submit(Value::from_u64(17)));
        roundtrip(&Frame::Deliver { src: ProcId(1), a: Value::from("hello") });
    }

    #[test]
    fn token_frame_roundtrips() {
        let v = View::new(ViewId::new(2, ProcId(0)), ProcId::range(3));
        let mut t = Token::new(&v);
        t.round = 7;
        t.seq_start = 3;
        t.acked = 2;
        let l = Label::new(v.id, 1, ProcId(1));
        t.entries.push(TokenMsg {
            src: ProcId(1),
            mid: 42,
            msg: AppMsg::Val(l, Value::from_u64(5)),
        });
        t.collect.push(TokenMsg {
            src: ProcId(2),
            mid: 77,
            msg: AppMsg::Val(l, Value::from_u64(6)),
        });
        t.delivered.insert(ProcId(1), 1);
        roundtrip(&Frame::Peer(Wire::Token(Box::new(t))));
    }

    #[test]
    fn frame_writer_matches_sequential_write_frame() {
        let frames = vec![
            Frame::Peer(Wire::Probe),
            Frame::Submit(Value::from_u64(1)),
            Frame::Deliver { src: ProcId(2), a: Value::from("abc") },
        ];
        let mut expect = Vec::new();
        for f in &frames {
            write_frame(&mut expect, f).unwrap();
        }
        let mut fw = FrameWriter::new();
        for f in &frames {
            fw.push(f);
        }
        assert_eq!(fw.len(), 3);
        let mut got = Vec::new();
        fw.write_to(&mut got).unwrap();
        assert_eq!(got, expect);
        fw.clear();
        assert!(fw.is_empty());
        assert_eq!(fw.payload_bytes(), 0);
    }

    /// A writer that accepts at most `cap` bytes per call, to force the
    /// partial-write continuation path.
    struct Dribble {
        out: Vec<u8>,
        cap: usize,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frame_writer_survives_partial_writes() {
        let frames = vec![
            Frame::Submit(Value::from_u64(7)),
            Frame::Peer(Wire::Call { viewid: ViewId::new(3, ProcId(1)) }),
        ];
        let mut expect = Vec::new();
        let mut fw = FrameWriter::new();
        for f in &frames {
            write_frame(&mut expect, f).unwrap();
            fw.push(f);
        }
        for cap in 1..8 {
            let mut d = Dribble { out: Vec::new(), cap };
            fw.write_to(&mut d).unwrap();
            assert_eq!(d.out, expect, "cap {cap}");
        }
    }

    #[test]
    fn stream_roundtrip_and_clean_eof() {
        let frames = vec![
            Frame::Peer(Wire::Probe),
            Frame::Submit(Value::from_u64(1)),
            Frame::Peer(Wire::Join {
                view: View::new(ViewId::new(1, ProcId(0)), ProcId::range(2)),
            }),
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut r = &buf[..];
        for f in &frames {
            assert_eq!(&read_frame(&mut r).unwrap().unwrap(), f);
        }
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn bad_version_and_tags_error_cleanly() {
        assert_eq!(decode_payload(&[9, 0]), Err(CodecError::BadVersion(9)));
        assert_eq!(
            decode_payload(&[WIRE_VERSION, 200]),
            Err(CodecError::BadTag { what: "frame", tag: 200 })
        );
        assert!(decode_payload(&[]).is_err());
    }

    #[test]
    fn truncation_errors_never_panic() {
        let full = encode_payload(&Frame::Peer(Wire::Join {
            view: View::new(ViewId::new(3, ProcId(1)), ProcId::range(4)),
        }));
        for cut in 0..full.len() {
            assert!(decode_payload(&full[..cut]).is_err(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.extend_from_slice(&[0; 16]);
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupt_collection_count_rejected_without_allocation() {
        // A Submit frame whose value claims u64::MAX bytes.
        let mut buf = vec![WIRE_VERSION, TAG_SUBMIT];
        put_varint(&mut buf, u64::MAX);
        assert!(decode_payload(&buf).is_err());
    }

    #[test]
    fn group_tagged_frames_roundtrip() {
        roundtrip(&Frame::PeerGroup { group: 3, wire: Wire::Probe });
        roundtrip(&Frame::PeerGroup {
            group: u32::MAX,
            wire: Wire::Call { viewid: ViewId::new(7, ProcId(2)) },
        });
        roundtrip(&Frame::SubmitGroup {
            group: 0,
            batch: vec![Value::from_u64(1), Value::from("kv")],
        });
        roundtrip(&Frame::SubmitGroup { group: 2, batch: Vec::new() });
        roundtrip(&Frame::DeliverGroup {
            group: 1,
            batch: vec![(ProcId(4), Value::from_u64(9)), (ProcId(0), Value::default())],
        });
        roundtrip(&Frame::View {
            group: 5,
            view: View::new(ViewId::new(2, ProcId(1)), ProcId::range(3)),
        });
    }

    #[test]
    fn shared_decode_values_borrow_the_payload_buffer() {
        let big = Value::from(vec![0xabu8; 64]);
        let frame = Frame::SubmitGroup { group: 1, batch: vec![big.clone(), big.clone()] };
        let payload = Bytes::from(encode_payload(&frame));
        let decoded = decode_payload_shared(&payload).expect("decodes");
        assert_eq!(decoded, frame);
        let Frame::SubmitGroup { batch, .. } = decoded else { unreachable!() };
        let lo = payload.as_slice().as_ptr() as usize;
        let hi = lo + payload.len();
        for v in &batch {
            let p = v.as_bytes().as_ptr() as usize;
            assert!(p >= lo && p + v.len() <= hi, "value was copied, not borrowed");
        }
        // The plain slice-based decode still copies (no backing buffer
        // to borrow from) and agrees on the result.
        assert_eq!(decode_payload(payload.as_slice()).expect("decodes"), frame);
    }
}
