//! `gcs-net`: the Section 8 stack over a real TCP transport.
//!
//! The paper's implementation sketch assumes a timed asynchronous
//! network: messages may be lost or delayed, and good channels deliver
//! within δ. Elsewhere in this repository that network is the
//! deterministic simulator (`gcs-netsim`) or an in-process channel
//! runtime (`vsimpl::threaded`). This crate supplies the third — and
//! deployable — event source: `std::net` TCP sockets on a real host,
//! with nothing swapped but the transport, exactly the layering the
//! paper's Section 1 anticipates ("mapping of the abstract algorithm to
//! the target platform").
//!
//! The pieces:
//!
//! - [`codec`] — a hand-rolled, dependency-free binary encoding of the
//!   full [`gcs_vsimpl::Wire`] message set plus client frames:
//!   length-prefixed framing, a version byte, explicit enum tags, LEB128
//!   varints. Decoding is *total*: any byte string produces `Ok` or a
//!   [`codec::CodecError`], never a panic.
//! - [`transport`] — the [`transport::Transport`] trait (the seam the
//!   deterministic simulator plugs into) and its deployable
//!   implementation [`transport::TcpTransport`]: one accept loop,
//!   per-peer reconnecting writer threads with bounded queues and capped
//!   exponential backoff, connection-generation numbering so a stale
//!   socket can never deliver into a newer incarnation of a link, and
//!   link severing/healing to emulate partitions over real sockets.
//! - [`runtime`] — [`runtime::NodeCore`], the thread-free protocol half
//!   hosting the unchanged `VsNode<TimedVsToTo>` state machine over any
//!   transport (with stable-storage crash/recovery), and
//!   [`runtime::NetNode`], the threaded TCP wrapper recording emitted
//!   traces with cluster-mergeable (time, sequence) stamps.
//! - [`cluster`] — a loopback harness that boots n nodes on ephemeral
//!   localhost ports; integration tests drive traffic, cut links, crash
//!   and restart nodes, and feed the merged trace to the VS/TO safety
//!   checkers of `gcs-core`.
//! - [`load`] — an open/closed-loop load-generating client speaking the
//!   client protocol over TCP, with latency/throughput histograms.
//!
//! The `gcs-node` and `gcs-client` binaries wrap [`runtime`] and
//! [`load`] for running a cluster by hand across terminals (or hosts).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod codec;
pub mod load;
pub mod queue;
pub mod runtime;
pub mod transport;

pub use cluster::{ClusterConfig, LoopbackCluster};
pub use codec::{
    decode_payload, decode_payload_shared, encode_frame, encode_payload, read_frame, write_frame,
    CodecError, Frame, HelloKind, MAX_FRAME, WIRE_VERSION,
};
pub use load::{run_load, Histogram, LoadConfig, LoadMode, LoadReport};
pub use runtime::{merge_recordings, run_core_loop, Clock, NetNode, NodeCore, Recorded};
pub use transport::{
    GroupEndpoint, Incoming, ShutdownReport, TcpTransport, Transport, TransportConfig,
};
