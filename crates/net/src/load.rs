//! A load-generating TCP client: submits values over the client protocol
//! (`Hello{kind: Client}` + `Submit` frames), watches the `Deliver` push
//! stream, and reports latency/throughput histograms.
//!
//! Two driving disciplines:
//!
//! - **closed-loop**: keep a fixed window of operations outstanding;
//!   submit the next one only when one of ours is delivered back. This
//!   measures per-operation latency under a bounded offered load.
//! - **open-loop**: submit at a fixed rate regardless of deliveries.
//!   This measures how the ring behaves when the offered load is
//!   independent of its progress.

use crate::codec::{read_frame, write_frame, Frame, FrameWriter, HelloKind};
use gcs_model::{ProcId, Value};
use std::collections::BTreeMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// The shared log-scale latency histogram (samples are microseconds
/// here). This used to be a private sample-vector type duplicated
/// between the load generator and `gcs-client`; both now record into
/// the `gcs-obs` implementation, whose percentile estimate is clamped
/// to the observed min/max (so a top-bucket query can never report a
/// value above anything actually measured) and which can be registered
/// and exposed like any other metric.
pub use gcs_obs::Histogram;

/// Driving discipline for the load generator.
#[derive(Clone, Copy, Debug)]
pub enum LoadMode {
    /// Keep `window` operations outstanding.
    Closed {
        /// Outstanding-operation window.
        window: usize,
    },
    /// Submit at `rate` operations per second, regardless of deliveries.
    Open {
        /// Offered rate, operations per second.
        rate: u64,
    },
}

/// What one load run produced.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Operations submitted.
    pub submitted: u64,
    /// Of those, operations seen delivered back on the watched node.
    pub delivered: u64,
    /// Wall time from first submit to last delivery (or timeout).
    pub elapsed: Duration,
    /// Submit→deliver latency per completed operation.
    pub latency_us: Histogram,
}

impl LoadReport {
    /// Completed operations per second.
    pub fn throughput_ops(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.delivered as f64 / secs
    }
}

/// Load-generator parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Total operations to submit.
    pub ops: u64,
    /// Values are `value_base .. value_base + ops`; distinct generators
    /// against one cluster must use disjoint ranges.
    pub value_base: u64,
    /// Driving discipline.
    pub mode: LoadMode,
    /// Give up waiting for deliveries after this long with no progress.
    pub idle_timeout: Duration,
    /// Operations submitted and completed *before* the timed window
    /// opens. They warm the ring — view formation, the cold token's
    /// first rotations — and are excluded from the histogram and the
    /// elapsed time, so the ramp-up cannot masquerade as a genuine p99
    /// tail. Warm-up values occupy `value_base .. value_base + warmup`;
    /// the timed range follows them.
    pub warmup: u64,
}

/// Runs one load generation session against the node at `addr`.
///
/// The generator submits `Value::from_u64(value_base + i)` for each
/// operation and measures the time until the watched node pushes the
/// matching `Deliver` frame back — i.e. full submit→total-order→deliver
/// latency through the ring, as observed at that node.
pub fn run_load(addr: SocketAddr, cfg: &LoadConfig) -> io::Result<LoadReport> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    write_frame(
        &mut stream,
        &Frame::Hello { node: ProcId(u32::MAX), generation: 0, kind: HelloKind::Client },
    )?;

    // Reader thread: forward delivered u64 values with their arrival
    // instant; exits on EOF/error. Deliveries arrive in bursts (the node
    // writes one vectored batch per flush), so the reader drains every
    // frame already buffered and crosses the channel once per burst —
    // one timestamp, one send, one receiver wakeup — instead of once
    // per operation.
    let (tx, rx) = mpsc::channel::<(Vec<u64>, Instant)>();
    let read_half = stream.try_clone()?;
    let reader = std::thread::spawn(move || {
        let mut read_half = io::BufReader::with_capacity(256 * 1024, read_half);
        let mut burst: Vec<u64> = Vec::new();
        loop {
            match read_frame(&mut read_half) {
                Ok(Some(f)) => {
                    match f {
                        Frame::Deliver { a, .. } => {
                            if let Some(x) = a.as_u64() {
                                burst.push(x);
                            }
                        }
                        Frame::DeliverBatch(batch) => {
                            burst.extend(batch.iter().filter_map(|(_, a)| a.as_u64()));
                        }
                        // Skipped frames (e.g. pushed `View` notifications)
                        // must still flush a pending burst below, or
                        // completions collected just before one strand
                        // until the next delivery arrives.
                        _ => {}
                    }
                    if burst.is_empty() || buffer_has_frame(&read_half) {
                        continue;
                    }
                    if tx.send((std::mem::take(&mut burst), Instant::now())).is_err() {
                        return;
                    }
                }
                Ok(None) | Err(_) => return,
            }
        }
    });

    // Whether the reader's buffer already holds one complete frame (so
    // draining it cannot block on the socket).
    fn buffer_has_frame(r: &io::BufReader<TcpStream>) -> bool {
        let buf = r.buffer();
        let Some(hdr) = buf.get(..4) else { return false };
        let Ok(hdr) = <[u8; 4]>::try_from(hdr) else { return false };
        let len = u32::from_be_bytes(hdr) as usize;
        buf.len() >= 4usize.saturating_add(len)
    }

    // Submits `count` fresh operations as one coalesced batch: every
    // `Submit` frame is encoded into a reused buffer and the whole batch
    // lands on the socket in a single vectored write.
    fn submit_batch(
        stream: &mut TcpStream,
        fw: &mut FrameWriter,
        pending: &mut BTreeMap<u64, Instant>,
        next: &mut u64,
        submitted: &mut u64,
        count: u64,
    ) -> io::Result<()> {
        if count == 0 {
            return Ok(());
        }
        fw.clear();
        let now = Instant::now();
        let mut batch = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let x = *next;
            *next += 1;
            pending.insert(x, now);
            *submitted += 1;
            batch.push(Value::from_u64(x));
        }
        fw.push(&Frame::SubmitBatch(batch));
        fw.write_to(stream)
    }

    let mut fw = FrameWriter::new();
    let mut pending: BTreeMap<u64, Instant> = BTreeMap::new();
    let mut next = cfg.value_base;
    let mut submitted = 0u64;

    // Warm-up phase: drive the ring through its first rotations before
    // any sample is taken.
    if cfg.warmup > 0 {
        let warm_hi = cfg.value_base + cfg.warmup;
        let window = match cfg.mode {
            LoadMode::Closed { window } => window.max(1),
            LoadMode::Open { .. } => 32,
        } as u64;
        let count = window.min(warm_hi - next);
        submit_batch(&mut stream, &mut fw, &mut pending, &mut next, &mut submitted, count)?;
        let mut last_progress = Instant::now();
        let mut done = 0u64;
        while done < cfg.warmup {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok((xs, _)) => {
                    for x in xs {
                        if pending.remove(&x).is_some() {
                            done += 1;
                        }
                    }
                    while let Ok((ys, _)) = rx.try_recv() {
                        for y in ys {
                            if pending.remove(&y).is_some() {
                                done += 1;
                            }
                        }
                    }
                    last_progress = Instant::now();
                    let room = window.saturating_sub(pending.len() as u64);
                    let count = room.min(warm_hi.saturating_sub(next));
                    submit_batch(
                        &mut stream,
                        &mut fw,
                        &mut pending,
                        &mut next,
                        &mut submitted,
                        count,
                    )?;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if last_progress.elapsed() > cfg.idle_timeout {
                        break;
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        // Anything still outstanding belongs to the warm-up: forget it,
        // so a straggling delivery finds no pending entry and cannot
        // leak a cold-start latency into the timed histogram.
        pending.clear();
        submitted = 0;
    }

    let hi = cfg.value_base + cfg.warmup + cfg.ops;
    let latency: Histogram = Histogram::new();
    let started = Instant::now();
    let mut last_progress = Instant::now();
    let mut finished_at = started;

    match cfg.mode {
        LoadMode::Closed { window } => {
            let window = window.max(1) as u64;
            let count = window.min(hi.saturating_sub(next));
            submit_batch(&mut stream, &mut fw, &mut pending, &mut next, &mut submitted, count)?;
            while !pending.is_empty() {
                match rx.recv_timeout(Duration::from_millis(50)) {
                    Ok((xs, at)) => {
                        for x in xs {
                            if let Some(t0) = pending.remove(&x) {
                                latency.record(at.duration_since(t0).as_micros() as u64);
                                finished_at = at;
                            }
                        }
                        // Batched tokens complete operations in bursts:
                        // drain every completion already queued, then
                        // refill the window with one batched write.
                        while let Ok((ys, at2)) = rx.try_recv() {
                            for y in ys {
                                if let Some(t0) = pending.remove(&y) {
                                    latency.record(at2.duration_since(t0).as_micros() as u64);
                                    finished_at = at2;
                                }
                            }
                        }
                        last_progress = Instant::now();
                        let room = window.saturating_sub(pending.len() as u64);
                        let count = room.min(hi.saturating_sub(next));
                        submit_batch(
                            &mut stream,
                            &mut fw,
                            &mut pending,
                            &mut next,
                            &mut submitted,
                            count,
                        )?;
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if last_progress.elapsed() > cfg.idle_timeout {
                            break;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        LoadMode::Open { rate } => {
            let rate = rate.max(1);
            let gap = Duration::from_nanos(1_000_000_000 / rate);
            let mut due = Instant::now();
            while next < hi || !pending.is_empty() {
                // Everything that has come due since the last pass goes
                // out as one batch — at high offered rates this is the
                // difference between one syscall per op and one per tick.
                let mut burst = 0u64;
                while next + burst < hi && Instant::now() >= due {
                    burst += 1;
                    due += gap;
                }
                submit_batch(&mut stream, &mut fw, &mut pending, &mut next, &mut submitted, burst)?;
                match rx.recv_timeout(Duration::from_millis(1)) {
                    Ok((xs, at)) => {
                        for x in xs {
                            if let Some(t0) = pending.remove(&x) {
                                latency.record(at.duration_since(t0).as_micros() as u64);
                                finished_at = at;
                            }
                        }
                        while let Ok((ys, at2)) = rx.try_recv() {
                            for y in ys {
                                if let Some(t0) = pending.remove(&y) {
                                    latency.record(at2.duration_since(t0).as_micros() as u64);
                                    finished_at = at2;
                                }
                            }
                        }
                        last_progress = Instant::now();
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if next >= hi && last_progress.elapsed() > cfg.idle_timeout {
                            break;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        }
    }

    let delivered = latency.count();
    let elapsed =
        if delivered > 0 { finished_at.duration_since(started) } else { started.elapsed() };
    let _ = stream.shutdown(Shutdown::Both);
    let _ = reader.join();
    Ok(LoadReport { submitted, delivered, elapsed, latency_us: latency })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles() {
        let h: Histogram = Histogram::new();
        for i in 1..=100 {
            h.record(i);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.mean(), 50);
        // The shared histogram clamps percentile edges to the observed
        // extremes, so the ends are exact; interior percentiles are
        // bucketed (≤ 12.5% relative error at this resolution).
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(100.0), 100);
        assert_eq!(h.max(), 100);
        let p50 = h.percentile(50.0);
        assert!((44..=57).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h: Histogram = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.max(), 0);
    }
}
