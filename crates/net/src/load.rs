//! A load-generating TCP client: submits values over the client protocol
//! (`Hello{kind: Client}` + `Submit` frames), watches the `Deliver` push
//! stream, and reports latency/throughput histograms.
//!
//! Two driving disciplines:
//!
//! - **closed-loop**: keep a fixed window of operations outstanding;
//!   submit the next one only when one of ours is delivered back. This
//!   measures per-operation latency under a bounded offered load.
//! - **open-loop**: submit at a fixed rate regardless of deliveries.
//!   This measures how the ring behaves when the offered load is
//!   independent of its progress.

use crate::codec::{read_frame, write_frame, Frame, HelloKind};
use gcs_model::{ProcId, Value};
use std::collections::BTreeMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// The shared log-scale latency histogram (samples are microseconds
/// here). This used to be a private sample-vector type duplicated
/// between the load generator and `gcs-client`; both now record into
/// the `gcs-obs` implementation, whose percentile estimate is clamped
/// to the observed min/max (so a top-bucket query can never report a
/// value above anything actually measured) and which can be registered
/// and exposed like any other metric.
pub use gcs_obs::Histogram;

/// Driving discipline for the load generator.
#[derive(Clone, Copy, Debug)]
pub enum LoadMode {
    /// Keep `window` operations outstanding.
    Closed {
        /// Outstanding-operation window.
        window: usize,
    },
    /// Submit at `rate` operations per second, regardless of deliveries.
    Open {
        /// Offered rate, operations per second.
        rate: u64,
    },
}

/// What one load run produced.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Operations submitted.
    pub submitted: u64,
    /// Of those, operations seen delivered back on the watched node.
    pub delivered: u64,
    /// Wall time from first submit to last delivery (or timeout).
    pub elapsed: Duration,
    /// Submit→deliver latency per completed operation.
    pub latency_us: Histogram,
}

impl LoadReport {
    /// Completed operations per second.
    pub fn throughput_ops(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.delivered as f64 / secs
    }
}

/// Load-generator parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Total operations to submit.
    pub ops: u64,
    /// Values are `value_base .. value_base + ops`; distinct generators
    /// against one cluster must use disjoint ranges.
    pub value_base: u64,
    /// Driving discipline.
    pub mode: LoadMode,
    /// Give up waiting for deliveries after this long with no progress.
    pub idle_timeout: Duration,
}

/// Runs one load generation session against the node at `addr`.
///
/// The generator submits `Value::from_u64(value_base + i)` for each
/// operation and measures the time until the watched node pushes the
/// matching `Deliver` frame back — i.e. full submit→total-order→deliver
/// latency through the ring, as observed at that node.
pub fn run_load(addr: SocketAddr, cfg: &LoadConfig) -> io::Result<LoadReport> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    write_frame(
        &mut stream,
        &Frame::Hello { node: ProcId(u32::MAX), generation: 0, kind: HelloKind::Client },
    )?;

    // Reader thread: forward every delivered u64 value with its arrival
    // instant; exits on EOF/error.
    let (tx, rx) = mpsc::channel::<(u64, Instant)>();
    let mut read_half = stream.try_clone()?;
    let reader = std::thread::spawn(move || loop {
        match read_frame(&mut read_half) {
            Ok(Some(Frame::Deliver { a, .. })) => {
                if let Some(x) = a.as_u64() {
                    if tx.send((x, Instant::now())).is_err() {
                        return;
                    }
                }
            }
            Ok(Some(_)) => {}
            Ok(None) | Err(_) => return,
        }
    });

    let lo = cfg.value_base;
    let hi = cfg.value_base + cfg.ops;
    let mut pending: BTreeMap<u64, Instant> = BTreeMap::new();
    let mut next = lo;
    let latency = Histogram::new();
    let started = Instant::now();
    let mut last_progress = Instant::now();
    let mut submitted = 0u64;
    let mut finished_at = started;

    let submit_one = |stream: &mut TcpStream,
                      pending: &mut BTreeMap<u64, Instant>,
                      next: &mut u64,
                      submitted: &mut u64|
     -> io::Result<()> {
        let x = *next;
        *next += 1;
        pending.insert(x, Instant::now());
        *submitted += 1;
        write_frame(stream, &Frame::Submit(Value::from_u64(x)))
    };

    match cfg.mode {
        LoadMode::Closed { window } => {
            let window = window.max(1);
            while next < hi && pending.len() < window {
                submit_one(&mut stream, &mut pending, &mut next, &mut submitted)?;
            }
            while !pending.is_empty() {
                match rx.recv_timeout(Duration::from_millis(50)) {
                    Ok((x, at)) => {
                        if let Some(t0) = pending.remove(&x) {
                            latency.record(at.duration_since(t0).as_micros() as u64);
                            finished_at = at;
                            last_progress = Instant::now();
                            if next < hi {
                                submit_one(&mut stream, &mut pending, &mut next, &mut submitted)?;
                            }
                        } else if (lo..hi).contains(&x) {
                            // A duplicate push for a value we already
                            // counted — ignore.
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if last_progress.elapsed() > cfg.idle_timeout {
                            break;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        LoadMode::Open { rate } => {
            let rate = rate.max(1);
            let gap = Duration::from_nanos(1_000_000_000 / rate);
            let mut due = Instant::now();
            while next < hi || !pending.is_empty() {
                if next < hi && Instant::now() >= due {
                    submit_one(&mut stream, &mut pending, &mut next, &mut submitted)?;
                    due += gap;
                }
                match rx.recv_timeout(Duration::from_millis(1)) {
                    Ok((x, at)) => {
                        if let Some(t0) = pending.remove(&x) {
                            latency.record(at.duration_since(t0).as_micros() as u64);
                            finished_at = at;
                            last_progress = Instant::now();
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if next >= hi && last_progress.elapsed() > cfg.idle_timeout {
                            break;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        }
    }

    let delivered = latency.count();
    let elapsed =
        if delivered > 0 { finished_at.duration_since(started) } else { started.elapsed() };
    let _ = stream.shutdown(Shutdown::Both);
    let _ = reader.join();
    Ok(LoadReport { submitted, delivered, elapsed, latency_us: latency })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles() {
        let h = Histogram::new();
        for i in 1..=100 {
            h.record(i);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.mean(), 50);
        // The shared histogram clamps percentile edges to the observed
        // extremes, so the ends are exact; interior percentiles are
        // bucketed (≤ 12.5% relative error at this resolution).
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(100.0), 100);
        assert_eq!(h.max(), 100);
        let p50 = h.percentile(50.0);
        assert!((44..=57).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.max(), 0);
    }
}
